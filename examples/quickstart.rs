//! Quickstart: build a graph, enumerate its large maximal k-plexes, and
//! inspect the search statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use maximal_kplex::prelude::*;

fn main() {
    // A small social network: two tight friend groups bridged by one person.
    //
    //   group A = {0,1,2,3,4}   (near-clique, missing the edge 0-1)
    //   group B = {5,6,7,8,9}   (clique)
    //   vertex 4 also knows 5 and 6.
    let mut b = GraphBuilder::new(10);
    let group_a = [0u32, 1, 2, 3, 4];
    for (i, &u) in group_a.iter().enumerate() {
        for &v in &group_a[i + 1..] {
            if (u, v) != (0, 1) {
                b.add_edge(u, v).unwrap();
            }
        }
    }
    let group_b = [5u32, 6, 7, 8, 9];
    for (i, &u) in group_b.iter().enumerate() {
        for &v in &group_b[i + 1..] {
            b.add_edge(u, v).unwrap();
        }
    }
    b.add_edge(4, 5).unwrap();
    b.add_edge(4, 6).unwrap();
    let g = b.build();

    println!("graph: {}", GraphStats::compute(&g));

    // Enumerate all maximal 2-plexes with at least 4 vertices: every member
    // may miss at most 2 links (counting itself) within the group.
    let params = Params::new(2, 4).unwrap();
    let (plexes, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());

    println!("\nmaximal 2-plexes with >= 4 members:");
    for p in &plexes {
        println!("  {p:?}");
    }
    println!("\nsearch statistics: {stats}");

    // Group A is a 2-plex despite the missing 0-1 edge; group B (a clique)
    // is contained in some maximal 2-plex.
    assert!(plexes.contains(&vec![0, 1, 2, 3, 4]));
    assert!(plexes.iter().any(|p| group_b.iter().all(|v| p.contains(v))));

    // The same result, counted in parallel.
    let opts = EngineOptions::with_threads(2);
    let (count, _) = par_enumerate_count(&g, params, &AlgoConfig::ours(), &opts);
    assert_eq!(count as usize, plexes.len());
    println!("\nparallel recount agrees: {count} plexes");
}
