//! Prints a report over the built-in datasets: statistics, core structure
//! and a quick k-plex profile of each small dataset.
//!
//! Run with: `cargo run --release --example dataset_report`

use maximal_kplex::datasets::{all_datasets, DatasetClass};
use maximal_kplex::graph::core_decomposition;
use maximal_kplex::prelude::*;

fn main() {
    println!(
        "{:<14} {:>7} {:>8} {:>5} {:>4}  {:>10} {:>10}",
        "dataset", "n", "m", "Δ", "D", "2-plex@q9", "3-plex@q9"
    );
    for d in all_datasets() {
        let g = d.load();
        let stats = GraphStats::compute(&g);
        let decomp = core_decomposition(&g);
        assert_eq!(decomp.degeneracy, stats.degeneracy);
        // Profile only the small/medium datasets (the large ones are for the
        // parallel experiments).
        let profile = if d.class != DatasetClass::Large {
            let (c2, _) = enumerate_count(&g, Params::new(2, 9).unwrap(), &AlgoConfig::ours());
            let (c3, _) = enumerate_count(&g, Params::new(3, 9).unwrap(), &AlgoConfig::ours());
            (c2.to_string(), c3.to_string())
        } else {
            ("-".into(), "-".into())
        };
        println!(
            "{:<14} {:>7} {:>8} {:>5} {:>4}  {:>10} {:>10}",
            d.name, stats.n, stats.m, stats.max_degree, stats.degeneracy, profile.0, profile.1
        );
    }
}
