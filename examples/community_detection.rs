//! Community detection on a synthetic social network.
//!
//! The paper's motivating application: communities in social graphs rarely
//! form perfect cliques (noise, missing observations), but they do form
//! k-plexes. This example builds a power-law social network with planted
//! noisy communities, mines the large maximal 2-plexes, and checks how well
//! they recover the planted structure.
//!
//! Run with: `cargo run --release --example community_detection`

use maximal_kplex::graph::gen::{self, PlantedPlexConfig};
use maximal_kplex::prelude::*;

fn main() {
    // A scale-free background (preferential attachment) with 12 planted
    // noisy communities of 9-12 members, each missing at most one internal
    // link per member — i.e. each community is a 2-plex.
    let background = gen::barabasi_albert(3_000, 4, 7);
    let cfg = PlantedPlexConfig {
        count: 12,
        size_lo: 9,
        size_hi: 12,
        missing: 1,
        overlap: false,
    };
    let (g, report) = gen::planted_plexes(&background, &cfg, 99);
    println!("network: {}", GraphStats::compute(&g));
    println!("planted {} communities", report.plexes.len());

    // Mine all maximal 2-plexes with at least 9 members.
    let params = Params::new(2, 9).unwrap();
    let start = std::time::Instant::now();
    let (plexes, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());
    println!(
        "\nfound {} maximal 2-plexes (>= 9 members) in {:.3}s",
        plexes.len(),
        start.elapsed().as_secs_f64()
    );
    println!("stats: {stats}");

    // Recovery: every planted community must be covered by some mined plex
    // (possibly grown by background vertices that happen to fit).
    let mut recovered = 0;
    for community in &report.plexes {
        let hit = plexes
            .iter()
            .any(|p| community.iter().all(|v| p.contains(v)));
        if hit {
            recovered += 1;
        } else {
            println!("  !! community {community:?} not recovered");
        }
    }
    println!(
        "recovered {recovered}/{} planted communities",
        report.plexes.len()
    );
    assert_eq!(
        recovered,
        report.plexes.len(),
        "all planted communities must be found"
    );

    // Communities are statistically significant: none of them appears if we
    // demand a size beyond the planted range (background alone cannot
    // sustain a 2-plex of 16+ vertices at this density).
    let params_high = Params::new(2, 16).unwrap();
    let (none, _) = enumerate_collect(&g, params_high, &AlgoConfig::ours());
    println!("\n2-plexes with >= 16 members: {} (expected 0)", none.len());
    assert!(none.is_empty());
}
