//! Parallel mining of a large graph with the stage-based engine (Section 6).
//!
//! Demonstrates thread scaling and the straggler-timeout mechanism on one of
//! the large synthetic stand-ins.
//!
//! Run with: `cargo run --release --example parallel_mining`

use maximal_kplex::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let dataset = maximal_kplex::datasets::by_name("enwiki-2021").expect("registry dataset");
    let g = dataset.load();
    println!("dataset {}: {}", dataset.name, GraphStats::compute(&g));

    let params = Params::new(2, 12).unwrap();
    let cfg = AlgoConfig::ours();

    // Sequential reference.
    let t0 = Instant::now();
    let (count_seq, _) = enumerate_count(&g, params, &cfg);
    let secs_seq = t0.elapsed().as_secs_f64();
    println!("\nsequential: {count_seq} plexes in {secs_seq:.2}s");

    // Parallel runs with increasing thread counts.
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    for threads in [1, 2, 4, 8].into_iter().filter(|&t| t <= max_threads) {
        let opts = EngineOptions::with_threads(threads);
        let t0 = Instant::now();
        let (count, stats) = par_enumerate_count(&g, params, &cfg, &opts);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(count, count_seq, "parallel result must match sequential");
        println!(
            "{threads:>2} thread(s): {count} plexes in {secs:.2}s  (speedup {:.2}x, {} task splits)",
            secs_seq / secs,
            stats.timeout_splits
        );
    }

    // The straggler timeout: an over-aggressive value still returns the same
    // result, just with many more (smaller) tasks.
    let mut opts = EngineOptions::with_threads(max_threads);
    opts.timeout = Some(Duration::from_micros(1));
    let (count, stats) = par_enumerate_count(&g, params, &cfg, &opts);
    assert_eq!(count, count_seq);
    println!(
        "\nτ = 1µs: same {count} plexes, {} straggler splits (fine-grained tasks)",
        stats.timeout_splits
    );
}
