//! Protein-complex discovery in a noisy interaction network.
//!
//! Biological motivation from the paper's introduction: protein complexes
//! appear as dense modules in protein-protein interaction (PPI) networks,
//! but experimental noise removes edges, so complexes surface as k-plexes
//! rather than cliques. This example simulates a PPI network with known
//! complexes, drops a fraction of intra-complex edges ("false negatives"),
//! and shows that k-plex mining still recovers the complexes where clique
//! mining (k = 1) fails.
//!
//! Run with: `cargo run --release --example protein_complexes`

use maximal_kplex::graph::gen;
use maximal_kplex::graph::CsrGraph;
use maximal_kplex::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a synthetic PPI network: sparse random background + `complexes`
/// cliques of size `size`, then deletes intra-complex edges with probability
/// `dropout` while keeping every protein's loss below `max_missing`.
fn simulated_ppi(
    n: usize,
    complexes: usize,
    size: usize,
    dropout: f64,
    max_missing: usize,
    seed: u64,
) -> (CsrGraph, Vec<Vec<u32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let background = gen::gnm(n, n * 2, seed ^ 1);
    let mut edges: Vec<(u32, u32)> = background.edges().collect();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let mut truth = Vec::new();
    for c in 0..complexes {
        let members = &ids[c * size..(c + 1) * size];
        let mut missing = vec![0usize; size];
        for i in 0..size {
            for j in i + 1..size {
                let drop = rng.random_bool(dropout)
                    && missing[i] < max_missing
                    && missing[j] < max_missing;
                if drop {
                    missing[i] += 1;
                    missing[j] += 1;
                } else {
                    edges.push((members[i], members[j]));
                }
            }
        }
        let mut m = members.to_vec();
        m.sort_unstable();
        truth.push(m);
    }
    (CsrGraph::from_edges(n, edges).unwrap(), truth)
}

fn recovered(plexes: &[Vec<u32>], truth: &[Vec<u32>]) -> usize {
    truth
        .iter()
        .filter(|complex| plexes.iter().any(|p| complex.iter().all(|v| p.contains(v))))
        .count()
}

fn main() {
    let (g, truth) = simulated_ppi(2_000, 10, 10, 0.18, 2, 42);
    println!("PPI network: {}", GraphStats::compute(&g));
    println!("ground truth: {} complexes of 10 proteins", truth.len());

    // Clique mining (k = 1) misses complexes with any dropped edge.
    let (cliques, _) = enumerate_collect(&g, Params::new(1, 8).unwrap(), &AlgoConfig::ours());
    let r1 = recovered(&cliques, &truth);
    println!("\nclique mining  (k=1, q=8): {} complexes recovered", r1);

    // 3-plex mining tolerates two missing partners per protein.
    let (plexes, stats) = enumerate_collect(&g, Params::new(3, 8).unwrap(), &AlgoConfig::ours());
    let r3 = recovered(&plexes, &truth);
    println!("k-plex mining  (k=3, q=8): {} complexes recovered", r3);
    println!("stats: {stats}");

    assert_eq!(r3, truth.len(), "3-plex mining must recover every complex");
    assert!(
        r1 < truth.len(),
        "with 18% edge dropout, clique mining should miss some complexes"
    );
    println!(
        "\nk-plex relaxation recovered {} complexes that clique mining missed",
        r3 - r1
    );
}
