//! End-to-end pipeline tests: graph I/O → reduction → enumeration →
//! verification, plus dataset registry integration.

use kplex_baselines::Algorithm;
use kplex_core::plex::is_maximal_kplex;
use kplex_core::{enumerate_collect, AlgoConfig, Params};
use kplex_graph::{gen, io};

#[test]
fn edge_list_roundtrip_preserves_results() {
    let g = gen::powerlaw_cluster(120, 4, 0.7, 3);
    let params = Params::new(2, 6).unwrap();
    let (before, _) = enumerate_collect(&g, params, &AlgoConfig::ours());

    // Serialise to the text format and parse back.
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let (g2, labels) = io::parse_edge_list(buf.as_slice()).unwrap();
    let (after_raw, _) = enumerate_collect(&g2, params, &AlgoConfig::ours());
    // Map the re-parsed ids back through the label table.
    let mut after: Vec<Vec<u32>> = after_raw
        .into_iter()
        .map(|p| {
            let mut m: Vec<u32> = p.iter().map(|&v| labels[v as usize] as u32).collect();
            m.sort_unstable();
            m
        })
        .collect();
    after.sort();
    assert_eq!(before, after);
}

#[test]
fn binary_roundtrip_preserves_results() {
    let g = gen::caveman(150, 10, 6, 9, 80, 7);
    let params = Params::new(3, 6).unwrap();
    let (before, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
    let bytes = io::encode_binary(&g);
    let g2 = io::decode_binary(&bytes).unwrap();
    let (after, _) = enumerate_collect(&g2, params, &AlgoConfig::ours());
    assert_eq!(before, after);
}

#[test]
fn registry_datasets_yield_verified_plexes() {
    // The `jazz` stand-in end to end: results are maximal k-plexes.
    let g = kplex_datasets::by_name("jazz").unwrap().load();
    let params = Params::new(2, 9).unwrap();
    let (plexes, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
    assert!(
        !plexes.is_empty(),
        "jazz must contain 2-plexes of size >= 9"
    );
    for p in plexes.iter().take(50) {
        assert!(is_maximal_kplex(&g, p, 2));
        assert!(p.len() >= 9);
    }
}

#[test]
fn algorithms_agree_on_registry_dataset() {
    let g = kplex_datasets::by_name("lastfm").unwrap().load();
    let params = Params::new(3, 10).unwrap();
    let (reference, _) = Algorithm::Ours.run_collect(&g, params);
    for algo in [Algorithm::ListPlex, Algorithm::Fp, Algorithm::OursP] {
        let (got, _) = algo.run_collect(&g, params);
        assert_eq!(got, reference, "{}", algo.name());
    }
}

#[test]
fn larger_q_results_nest_into_smaller_q_results() {
    // Every maximal plex of size >= q2 (q2 > q1) is also reported at q1.
    let g = gen::powerlaw_cluster(200, 5, 0.7, 13);
    let k = 2usize;
    let (loose, _) = enumerate_collect(&g, Params::new(k, 5).unwrap(), &AlgoConfig::ours());
    let (strict, _) = enumerate_collect(&g, Params::new(k, 8).unwrap(), &AlgoConfig::ours());
    for p in &strict {
        assert!(p.len() >= 8);
        assert!(loose.contains(p), "{p:?} missing at q=5");
    }
    // And the q=5 run contains nothing >= 8 that the strict run missed.
    for p in loose.iter().filter(|p| p.len() >= 8) {
        assert!(strict.contains(p), "{p:?} missing at q=8");
    }
}

#[test]
fn growing_k_relaxes_the_model() {
    // Every maximal 1-plex (clique) of size >= q is contained in some
    // maximal 2-plex of size >= q.
    let g = gen::powerlaw_cluster(150, 5, 0.8, 17);
    let q = 6usize;
    let (cliques, _) = enumerate_collect(&g, Params::new(1, q).unwrap(), &AlgoConfig::ours());
    let (plexes2, _) = enumerate_collect(&g, Params::new(2, q).unwrap(), &AlgoConfig::ours());
    for c in &cliques {
        assert!(
            plexes2.iter().any(|p| c.iter().all(|v| p.contains(v))),
            "clique {c:?} not covered by any 2-plex"
        );
    }
}

#[test]
fn stats_counters_are_consistent() {
    let g = gen::powerlaw_cluster(180, 5, 0.7, 19);
    let params = Params::new(3, 8).unwrap();
    let (plexes, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());
    assert_eq!(stats.outputs as usize, plexes.len());
    assert!(stats.branch_calls >= stats.subtasks - stats.r1_pruned);
    assert!(stats.seed_graphs > 0);
}
