//! Differential cross-validation: `enumerate_collect` (ours) against the
//! naive Bron–Kerbosch oracle and the ListPlex / FP baselines, over the
//! (k, q) grid k ∈ {1, 2, 3} × q ∈ {3, …, 6} on a fixed battery of random
//! G(n, p) and planted-plex instances.
//!
//! This is the methodology ListPlex (Wang & Xiao 2022) and FP (Dai et al.
//! 2022) themselves use to validate their implementations: independent
//! enumerators must produce byte-identical sorted result sets. k = 1
//! degenerates to maximal clique listing, so that row doubles as a clique
//! sanity check against a well-understood problem.

use kplex_baselines::Algorithm;
use kplex_core::naive::naive_bron_kerbosch;
use kplex_core::plex::is_kplex;
use kplex_core::{enumerate_collect, AlgoConfig, Params};
use kplex_graph::{gen, CsrGraph};

/// The (k, q) grid of the differential suite. Combinations violating the
/// paper's q >= 2k - 1 precondition are skipped by `Params::new`.
const KQ_GRID: [(usize, usize); 12] = [
    (1, 3),
    (1, 4),
    (1, 5),
    (1, 6),
    (2, 3),
    (2, 4),
    (2, 5),
    (2, 6),
    (3, 3), // rejected: q < 2k - 1
    (3, 4), // rejected: q < 2k - 1
    (3, 5),
    (3, 6),
];

/// Runs the full differential comparison on one instance. Returns the
/// number of (k, q) cells exercised.
fn differential_check(g: &CsrGraph, label: &str) -> usize {
    let mut cells = 0;
    for (k, q) in KQ_GRID {
        let Ok(params) = Params::new(k, q) else {
            continue;
        };
        cells += 1;
        let oracle = naive_bron_kerbosch(g, k, q);
        let (ours, stats) = enumerate_collect(g, params, &AlgoConfig::ours());
        assert_eq!(
            ours, oracle,
            "ours diverged from naive on {label} (k={k}, q={q})"
        );
        assert_eq!(
            stats.outputs as usize,
            oracle.len(),
            "{label} stats.outputs"
        );
        for baseline in [Algorithm::ListPlex, Algorithm::Fp] {
            let (got, _) = baseline.run_collect(g, params);
            assert_eq!(
                got,
                oracle,
                "{} diverged from naive on {label} (k={k}, q={q})",
                baseline.name()
            );
        }
    }
    cells
}

/// The random-graph battery: G(n, p) across sizes, densities and seeds.
fn gnp_instances() -> Vec<(String, CsrGraph)> {
    let mut graphs = Vec::new();
    for &n in &[12usize, 14, 16] {
        for &(p, tag) in &[(0.3f64, "sparse"), (0.45, "medium"), (0.6, "dense")] {
            for seed in 0..2u64 {
                let label = format!("gnp(n={n}, p={tag}, seed={seed})");
                graphs.push((label, gen::gnp(n, p, 1000 + n as u64 * 10 + seed)));
            }
        }
    }
    graphs
}

/// The planted-plex battery: noisy k-plexes of known location embedded in
/// sparse G(n, m) background noise.
fn planted_instances() -> Vec<(String, CsrGraph, Vec<Vec<u32>>)> {
    let mut graphs = Vec::new();
    for seed in 0..6u64 {
        let bg = gen::gnm(36, 48, 2000 + seed);
        let cfg = gen::PlantedPlexConfig {
            count: 2,
            size_lo: 6,
            size_hi: 7,
            missing: 1,
            overlap: seed % 2 == 1,
        };
        let (g, report) = gen::planted_plexes(&bg, &cfg, 3000 + seed);
        graphs.push((format!("planted(seed={seed})"), g, report.plexes));
    }
    graphs
}

#[test]
fn differential_gnp_battery() {
    let graphs = gnp_instances();
    assert!(graphs.len() >= 14, "battery too small: {}", graphs.len());
    let mut cells = 0;
    for (label, g) in &graphs {
        cells += differential_check(g, label);
    }
    // 10 valid (k, q) cells per instance.
    assert_eq!(cells, graphs.len() * 10);
}

#[test]
fn differential_planted_battery() {
    let graphs = planted_instances();
    assert_eq!(graphs.len(), 6);
    for (label, g, planted) in &graphs {
        differential_check(g, label);
        // Every planted 2-plex of size >= 6 must appear inside some reported
        // maximal 2-plex (the planting may merge with background edges).
        let params = Params::new(2, 6).unwrap();
        let (ours, _) = enumerate_collect(g, params, &AlgoConfig::ours());
        for plex in planted {
            assert!(
                is_kplex(g, plex, 2),
                "{label}: planted set {plex:?} is not a 2-plex"
            );
            assert!(
                ours.iter().any(|p| plex.iter().all(|v| p.contains(v))),
                "{label}: planted plex {plex:?} not covered by any result"
            );
        }
    }
}

#[test]
fn differential_battery_is_at_least_twenty_instances() {
    // The acceptance criterion of the suite: >= 20 independently generated
    // instances flow through the full ours-vs-naive-vs-ListPlex-vs-FP
    // comparison.
    let total = gnp_instances().len() + planted_instances().len();
    assert!(total >= 20, "only {total} differential instances");
}

#[test]
fn k1_row_equals_maximal_clique_listing() {
    // For k = 1 a k-plex is exactly a clique: cross-check the k = 1 row of
    // the grid against easily verifiable clique structure.
    let g = gen::turan(12, 4); // complete 4-partite, parts of size 3
    let params = Params::new(1, 4).unwrap();
    let (cliques, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
    // Maximal cliques of Turán T(12, 4) pick one vertex per part: 3^4 = 81.
    assert_eq!(cliques.len(), 81);
    for c in &cliques {
        assert_eq!(c.len(), 4);
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                assert!(g.has_edge(u, v));
            }
        }
    }
    assert_eq!(cliques, naive_bron_kerbosch(&g, 1, 4));
}
