//! Cross-validation of every algorithm variant against the brute-force and
//! naive Bron–Kerbosch oracles, across graph families and (k, q) settings.
//!
//! This is the repository's ground-truth test: the paper's Table 3 property
//! that "all algorithms return the same result set" must hold all the way
//! down to an exhaustive subset scan.

use kplex_baselines::Algorithm;
use kplex_core::naive::{brute_force, naive_bron_kerbosch};
use kplex_core::Params;
use kplex_graph::{gen, CsrGraph};

fn check_all_algorithms(g: &CsrGraph, k: usize, q: usize, oracle: &[Vec<u32>], label: &str) {
    let params = Params::new(k, q).unwrap();
    for algo in Algorithm::ALL {
        let (got, _) = algo.run_collect(g, params);
        assert_eq!(
            got,
            oracle,
            "{} diverged from oracle on {label} (k={k}, q={q})",
            algo.name()
        );
    }
}

#[test]
fn every_algorithm_matches_brute_force_on_random_graphs() {
    for seed in 0..15 {
        let g = gen::gnp(13, 0.45, seed);
        for (k, q) in [(1usize, 3usize), (2, 3), (2, 4), (3, 5), (4, 7)] {
            let oracle = brute_force(&g, k, q);
            check_all_algorithms(&g, k, q, &oracle, &format!("gnp(13,0.45,{seed})"));
        }
    }
}

#[test]
fn every_algorithm_matches_brute_force_on_dense_graphs() {
    for seed in 0..8 {
        let g = gen::gnp(12, 0.7, 100 + seed);
        for (k, q) in [(2usize, 4usize), (3, 5), (4, 7)] {
            let oracle = brute_force(&g, k, q);
            check_all_algorithms(&g, k, q, &oracle, &format!("gnp(12,0.7,{seed})"));
        }
    }
}

#[test]
fn every_algorithm_matches_naive_bk_on_sparse_structures() {
    let graphs: Vec<(String, CsrGraph)> = vec![
        ("path".into(), gen::path(30)),
        ("cycle".into(), gen::cycle(30)),
        ("star".into(), gen::star(30)),
        ("turan(12,3)".into(), gen::turan(12, 3)),
        ("complete(10)".into(), gen::complete(10)),
        ("caveman".into(), gen::caveman(40, 4, 5, 7, 15, 3)),
        ("ws".into(), gen::watts_strogatz(40, 3, 0.2, 5)),
        ("ba".into(), gen::barabasi_albert(40, 3, 7)),
    ];
    for (name, g) in &graphs {
        for (k, q) in [(2usize, 3usize), (3, 5)] {
            let oracle = naive_bron_kerbosch(g, k, q);
            check_all_algorithms(g, k, q, &oracle, name);
        }
    }
}

#[test]
fn every_algorithm_matches_naive_bk_on_clustered_graphs() {
    for seed in 0..4 {
        let g = gen::powerlaw_cluster(60, 4, 0.8, seed);
        for (k, q) in [(2usize, 4usize), (3, 5), (4, 7)] {
            let oracle = naive_bron_kerbosch(&g, k, q);
            check_all_algorithms(&g, k, q, &oracle, &format!("plc({seed})"));
        }
    }
}

#[test]
fn planted_plexes_recovered_by_all_algorithms() {
    let bg = gen::gnm(80, 120, 11);
    let cfg = gen::PlantedPlexConfig {
        count: 3,
        size_lo: 8,
        size_hi: 10,
        missing: 1,
        overlap: false,
    };
    let (g, report) = gen::planted_plexes(&bg, &cfg, 5);
    let params = Params::new(2, 8).unwrap();
    for algo in Algorithm::ALL {
        let (res, _) = algo.run_collect(&g, params);
        for planted in &report.plexes {
            assert!(
                res.iter().any(|p| planted.iter().all(|v| p.contains(v))),
                "{} missed planted plex {planted:?}",
                algo.name()
            );
        }
    }
}

#[test]
fn turan_graph_plex_structure() {
    // Turán T(9,3): complete tripartite with parts of size 3. For k = 3 and
    // q = 6, unions of two parts are... every vertex misses its own part
    // (2 others + itself = 3 <= k): the whole graph is a 3-plex.
    let g = gen::turan(9, 3);
    let oracle = brute_force(&g, 3, 6);
    assert_eq!(oracle, vec![(0..9u32).collect::<Vec<_>>()]);
    check_all_algorithms(&g, 3, 6, &oracle, "turan(9,3)");
}

#[test]
fn disconnected_components_are_mined_independently() {
    // Two K5s with no connection: each is the unique maximal 2-plex >= 4 in
    // its component.
    let mut edges = Vec::new();
    for base in [0u32, 5] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((base + i, base + j));
            }
        }
    }
    let g = CsrGraph::from_edges(10, edges).unwrap();
    let oracle = brute_force(&g, 2, 4);
    assert_eq!(oracle.len(), 2);
    check_all_algorithms(&g, 2, 4, &oracle, "two K5s");
}

#[test]
fn high_q_returns_empty_like_paper_q100_rows() {
    // The paper's as-skitter q=100 rows return zero plexes; the algorithms
    // must agree on emptiness quickly.
    let g = gen::powerlaw_cluster(200, 5, 0.6, 9);
    let params = Params::new(2, 50).unwrap();
    for algo in Algorithm::ALL {
        let (count, _) = algo.run_count(&g, params);
        assert_eq!(count, 0, "{}", algo.name());
    }
}
