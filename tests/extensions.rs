//! End-to-end tests of the extension APIs: maximum k-plex solving, CTCP
//! reduction, the result verifier, and the pivot-rule ablation variants.

use kplex_baselines::Algorithm;
use kplex_core::{
    ctcp_reduce, enumerate_collect, maximum_kplex, verify_complete, verify_results, AlgoConfig,
    Params,
};
use kplex_graph::{gen, induced_diameter, GraphStore};

#[test]
fn maximum_agrees_with_enumeration_on_every_generator() {
    let graphs = [
        gen::gnp(40, 0.4, 1),
        gen::powerlaw_cluster(80, 5, 0.7, 2),
        gen::caveman(60, 5, 6, 9, 40, 3),
        gen::watts_strogatz(50, 4, 0.2, 4),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for k in [2usize, 3] {
            let q = 2 * k - 1;
            let params = Params::new(k, q).unwrap();
            let (all, _) = enumerate_collect(g, params, &AlgoConfig::ours());
            let expected = all.iter().map(Vec::len).max();
            let got = maximum_kplex(g, k, q, &AlgoConfig::ours());
            assert_eq!(got.plex.as_ref().map(Vec::len), expected, "graph {i} k {k}");
            // The reported maximum is among the enumerated maximal plexes.
            if let Some(p) = got.plex {
                assert!(all.contains(&p), "graph {i} k {k}: {p:?} not maximal");
            }
        }
    }
}

#[test]
fn ctcp_composes_with_every_algorithm() {
    let g = gen::powerlaw_cluster(150, 5, 0.7, 9);
    let params = Params::new(2, 7).unwrap();
    let red = ctcp_reduce(&g, params);
    assert!(red.graph.num_vertices() <= g.num_vertices());
    let (direct, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
    // A CSR input keeps its reduction resident as CSR, which is what the
    // baseline algorithms (still CSR-typed) consume.
    let reduced = red.graph.as_csr().expect("csr input stays csr");
    for algo in [
        Algorithm::Ours,
        Algorithm::ListPlex,
        Algorithm::Fp,
        Algorithm::D2k,
    ] {
        let (on_reduced, _) = algo.run_collect(reduced, params);
        let mut mapped: Vec<Vec<u32>> = on_reduced
            .into_iter()
            .map(|p| p.iter().map(|&v| red.map[v as usize]).collect())
            .collect();
        mapped.sort();
        assert_eq!(mapped, direct, "{} on CTCP-reduced graph", algo.name());
    }
}

#[test]
fn verifier_certifies_every_algorithm_end_to_end() {
    let g = gen::caveman(120, 9, 6, 9, 60, 17);
    let (k, q) = (2usize, 6usize);
    let params = Params::new(k, q).unwrap();
    for algo in Algorithm::ALL {
        let (res, _) = algo.run_collect(&g, params);
        let violations = verify_complete(&g, k, q, &res);
        assert!(
            violations.is_empty(),
            "{}: {} violation(s), first: {}",
            algo.name(),
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn verifier_rejects_perturbed_outputs() {
    let g = gen::powerlaw_cluster(100, 5, 0.8, 21);
    let params = Params::new(2, 6).unwrap();
    let (mut res, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
    if res.is_empty() {
        return;
    }
    // Drop a vertex from one plex: either no longer maximal or not a plex.
    res[0].pop();
    let violations = verify_results(&g, 2, 6, &res);
    assert!(!violations.is_empty());
}

#[test]
fn results_satisfy_theorem_3_3_diameter_bound() {
    // Independent check of Theorem 3.3 on real outputs: plexes of size
    // >= 2k-1 have induced diameter <= 2.
    let g = gen::powerlaw_cluster(200, 6, 0.6, 23);
    for k in [2usize, 3] {
        let params = Params::new(k, 2 * k - 1).unwrap();
        let (res, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        for p in res.iter().take(200) {
            let d = induced_diameter(&g, p);
            assert!(
                matches!(d, Some(d) if d <= 2),
                "plex {p:?} (k={k}) has induced diameter {d:?}"
            );
        }
    }
}

#[test]
fn pivot_ablation_variants_agree_and_order_by_work() {
    let g = gen::powerlaw_cluster(150, 6, 0.7, 27);
    let params = Params::new(3, 7).unwrap();
    let (reference, s_ours) = Algorithm::Ours.run_collect(&g, params);
    let (first, s_first) = Algorithm::OursFirstPivot.run_collect(&g, params);
    let (mindeg, s_mindeg) = Algorithm::OursMinDegPivot.run_collect(&g, params);
    assert_eq!(first, reference);
    assert_eq!(mindeg, reference);
    // Weaker pivots never branch less than the full rule.
    assert!(s_first.branch_calls >= s_ours.branch_calls);
    assert!(s_mindeg.branch_calls >= s_ours.branch_calls);
}

#[test]
fn lfr_communities_are_mined_as_plexes() {
    // Low-mixing LFR graphs have dense communities; the miner must find
    // large plexes inside them and the verifier must accept the output.
    let cfg = gen::LfrConfig {
        n: 300,
        avg_degree: 12,
        max_degree: 30,
        community_lo: 10,
        community_hi: 16,
        mu: 0.1,
        ..gen::LfrConfig::default()
    };
    let lfr = gen::lfr(&cfg, 31);
    let params = Params::new(3, 6).unwrap();
    let (res, _) = enumerate_collect(&lfr.graph, params, &AlgoConfig::ours());
    assert!(
        !res.is_empty(),
        "LFR communities should contain 3-plexes of size 6"
    );
    // Most results should be community-pure (all members share a community).
    let pure = res
        .iter()
        .filter(|p| {
            let c0 = lfr.community[p[0] as usize];
            p.iter().all(|&v| lfr.community[v as usize] == c0)
        })
        .count();
    assert!(
        pure * 2 >= res.len(),
        "only {pure}/{} plexes are community-pure",
        res.len()
    );
}
