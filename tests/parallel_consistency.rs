//! Consistency of the parallel engine (Section 6) against the sequential
//! driver across thread counts, timeouts and task layouts.

use kplex_baselines::{fp_config, listplex_config};
use kplex_core::{enumerate_collect, AlgoConfig, CollectSink, Params};
use kplex_graph::gen;
use kplex_parallel::{par_enumerate_collect, par_enumerate_count, EngineOptions};
use std::time::Duration;

#[test]
fn thread_counts_all_agree() {
    let g = gen::powerlaw_cluster(300, 6, 0.6, 21);
    let params = Params::new(2, 7).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    for threads in [1usize, 2, 3, 4, 7] {
        let opts = EngineOptions::with_threads(threads);
        let (got, _) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(got, reference, "diverged at {threads} threads");
    }
}

#[test]
fn timeout_values_all_agree() {
    let g = gen::powerlaw_cluster(250, 6, 0.6, 23);
    let params = Params::new(3, 8).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    for timeout in [
        None,
        Some(Duration::ZERO),
        Some(Duration::from_micros(1)),
        Some(Duration::from_micros(100)),
        Some(Duration::from_millis(10)),
    ] {
        let mut opts = EngineOptions::with_threads(2);
        opts.timeout = timeout;
        let (got, stats) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(got, reference, "diverged at timeout {timeout:?}");
        if timeout == Some(Duration::ZERO) {
            assert!(stats.timeout_splits > 0, "zero timeout must split tasks");
        }
        if timeout.is_none() {
            assert_eq!(stats.timeout_splits, 0);
        }
    }
}

#[test]
fn parallel_listplex_matches_serial_listplex() {
    let g = gen::caveman(200, 14, 6, 10, 120, 25);
    let params = Params::new(2, 6).unwrap();
    let cfg = listplex_config();
    let mut sink = CollectSink::default();
    kplex_baselines::enumerate_listplex(&g, params, &mut sink);
    let serial = sink.into_sorted();
    let mut opts = EngineOptions::with_threads(3);
    opts.timeout = None; // ListPlex has no straggler elimination
    let (par, _) = par_enumerate_collect(&g, params, &cfg, &opts);
    assert_eq!(par, serial);
}

#[test]
fn parallel_fp_matches_serial_fp() {
    let g = gen::powerlaw_cluster(200, 5, 0.6, 27);
    let params = Params::new(2, 6).unwrap();
    let mut sink = CollectSink::default();
    kplex_baselines::enumerate_fp(&g, params, &mut sink);
    let serial = sink.into_sorted();
    let opts = EngineOptions {
        timeout: None,
        serial_construction: true,
        single_task_per_seed: true,
        ..EngineOptions::with_threads(3)
    };
    let (par, _) = par_enumerate_collect(&g, params, &fp_config(), &opts);
    assert_eq!(par, serial);
}

#[test]
fn oversubscription_is_safe() {
    // More threads than seeds / cores: still exact.
    let g = gen::gnp(60, 0.3, 29);
    let params = Params::new(2, 5).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    let opts = EngineOptions::with_threads(16);
    let (got, _) = par_enumerate_collect(&g, params, &cfg, &opts);
    assert_eq!(got, reference);
}

#[test]
fn empty_and_tiny_inputs_parallel() {
    let cfg = AlgoConfig::ours();
    let opts = EngineOptions::with_threads(4);
    let params = Params::new(2, 4).unwrap();
    let (c0, _) = par_enumerate_count(&gen::empty(0), params, &cfg, &opts);
    assert_eq!(c0, 0);
    let (c1, _) = par_enumerate_count(&gen::empty(50), params, &cfg, &opts);
    assert_eq!(c1, 0);
    let (c2, _) = par_enumerate_count(&gen::complete(6), params, &cfg, &opts);
    assert_eq!(c2, 1);
}

#[test]
fn stats_outputs_match_counts() {
    let g = gen::powerlaw_cluster(200, 6, 0.5, 31);
    let params = Params::new(2, 7).unwrap();
    let cfg = AlgoConfig::ours();
    let opts = EngineOptions::with_threads(3);
    let (count, stats) = par_enumerate_count(&g, params, &cfg, &opts);
    assert_eq!(count, stats.outputs);
}

// ---------------------------------------------------------------------------
// Task conservation through the scheduler substrate.
//
// Random task trees (fan-out 0–8 per node, depth ≤ 12), pushed through the
// Injector/deque topology directly: every spawned task must run exactly
// once and `pending` must return to 0, at every thread count. This pins
// the counting half of the termination handshake independently of the
// enumeration workload — a task double-run, a drop, or a pending
// imbalance shows up as an exact count mismatch here.
// ---------------------------------------------------------------------------

mod task_conservation {
    use kplex_parallel::sched::{SchedConfig, Scheduler};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    const MAX_DEPTH: u32 = 12;

    /// One node of a synthetic task tree, identified by a path hash.
    #[derive(Clone, Copy)]
    struct Node {
        id: u64,
        depth: u32,
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Deterministic fan-out in 0..=8, biased subcritical (mean ≈ 0.9) so
    /// trees stay test-sized; 0 at the depth cap.
    fn fanout(n: Node, seed: u64) -> u64 {
        if n.depth >= MAX_DEPTH {
            return 0;
        }
        let h = splitmix(n.id ^ seed) % 40;
        if h <= 8 {
            h
        } else {
            0
        }
    }

    fn child(n: Node, i: u64) -> Node {
        Node {
            id: splitmix(n.id.wrapping_mul(9).wrapping_add(i + 1)),
            depth: n.depth + 1,
        }
    }

    fn roots(count: u64, seed: u64) -> impl Iterator<Item = Node> {
        (0..count).map(move |i| Node {
            id: splitmix(seed.wrapping_add(i)),
            depth: 0,
        })
    }

    /// Reference count: a serial walk of the same deterministic tree.
    fn count_serial(root_count: u64, seed: u64) -> u64 {
        let mut stack: Vec<Node> = roots(root_count, seed).collect();
        let mut total = 0u64;
        while let Some(n) = stack.pop() {
            total += 1;
            for i in 0..fanout(n, seed) {
                stack.push(child(n, i));
            }
        }
        total
    }

    /// Runs the same tree through the scheduler: roots via the injector,
    /// children via the worker push paths (alternating own-deque push and
    /// injector overflow, to cover both producer sides of the wakeup
    /// protocol). Returns (tasks executed, pending after the run).
    fn run_parallel_tree(root_count: u64, seed: u64, threads: usize) -> (u64, usize) {
        let (sched, ctxs) = Scheduler::<Node>::new(SchedConfig {
            workers: threads,
            pin: false,
            hook: None,
            metrics: None,
        });
        for r in roots(root_count, seed) {
            sched.inject(r);
        }
        let executed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let sched = &sched;
                let executed = &executed;
                scope.spawn(move || {
                    let h = ctx.attach(sched);
                    while let Some(n) = h.next() {
                        // ordering: test counter; read after the join.
                        executed.fetch_add(1, Ordering::Relaxed);
                        for i in 0..fanout(n, seed) {
                            if i % 2 == 0 {
                                h.push(child(n, i));
                            } else {
                                h.push_overflow(child(n, i));
                            }
                        }
                        h.count_out();
                    }
                });
            }
        });
        // ordering: workers joined; plain readback.
        (executed.load(Ordering::Relaxed), sched.pending())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn every_task_runs_exactly_once(seed in 0u64..u64::MAX, root_count in 1u64..6) {
            let expected = count_serial(root_count, seed);
            for threads in [1usize, 2, 4, 8] {
                let (executed, pending) = run_parallel_tree(root_count, seed, threads);
                prop_assert_eq!(
                    executed, expected,
                    "task conservation broke at {} threads: ran {} of {}",
                    threads, executed, expected
                );
                prop_assert_eq!(pending, 0usize, "pending nonzero at {} threads", threads);
            }
        }
    }
}
