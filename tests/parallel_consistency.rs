//! Consistency of the parallel engine (Section 6) against the sequential
//! driver across thread counts, timeouts and task layouts.

use kplex_baselines::{fp_config, listplex_config};
use kplex_core::{enumerate_collect, AlgoConfig, CollectSink, Params};
use kplex_graph::gen;
use kplex_parallel::{par_enumerate_collect, par_enumerate_count, EngineOptions};
use std::time::Duration;

#[test]
fn thread_counts_all_agree() {
    let g = gen::powerlaw_cluster(300, 6, 0.6, 21);
    let params = Params::new(2, 7).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    for threads in [1usize, 2, 3, 4, 7] {
        let opts = EngineOptions::with_threads(threads);
        let (got, _) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(got, reference, "diverged at {threads} threads");
    }
}

#[test]
fn timeout_values_all_agree() {
    let g = gen::powerlaw_cluster(250, 6, 0.6, 23);
    let params = Params::new(3, 8).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    for timeout in [
        None,
        Some(Duration::ZERO),
        Some(Duration::from_micros(1)),
        Some(Duration::from_micros(100)),
        Some(Duration::from_millis(10)),
    ] {
        let mut opts = EngineOptions::with_threads(2);
        opts.timeout = timeout;
        let (got, stats) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(got, reference, "diverged at timeout {timeout:?}");
        if timeout == Some(Duration::ZERO) {
            assert!(stats.timeout_splits > 0, "zero timeout must split tasks");
        }
        if timeout.is_none() {
            assert_eq!(stats.timeout_splits, 0);
        }
    }
}

#[test]
fn parallel_listplex_matches_serial_listplex() {
    let g = gen::caveman(200, 14, 6, 10, 120, 25);
    let params = Params::new(2, 6).unwrap();
    let cfg = listplex_config();
    let mut sink = CollectSink::default();
    kplex_baselines::enumerate_listplex(&g, params, &mut sink);
    let serial = sink.into_sorted();
    let mut opts = EngineOptions::with_threads(3);
    opts.timeout = None; // ListPlex has no straggler elimination
    let (par, _) = par_enumerate_collect(&g, params, &cfg, &opts);
    assert_eq!(par, serial);
}

#[test]
fn parallel_fp_matches_serial_fp() {
    let g = gen::powerlaw_cluster(200, 5, 0.6, 27);
    let params = Params::new(2, 6).unwrap();
    let mut sink = CollectSink::default();
    kplex_baselines::enumerate_fp(&g, params, &mut sink);
    let serial = sink.into_sorted();
    let opts = EngineOptions {
        threads: 3,
        timeout: None,
        serial_construction: true,
        single_task_per_seed: true,
        stop_flag: None,
    };
    let (par, _) = par_enumerate_collect(&g, params, &fp_config(), &opts);
    assert_eq!(par, serial);
}

#[test]
fn oversubscription_is_safe() {
    // More threads than seeds / cores: still exact.
    let g = gen::gnp(60, 0.3, 29);
    let params = Params::new(2, 5).unwrap();
    let cfg = AlgoConfig::ours();
    let (reference, _) = enumerate_collect(&g, params, &cfg);
    let opts = EngineOptions::with_threads(16);
    let (got, _) = par_enumerate_collect(&g, params, &cfg, &opts);
    assert_eq!(got, reference);
}

#[test]
fn empty_and_tiny_inputs_parallel() {
    let cfg = AlgoConfig::ours();
    let opts = EngineOptions::with_threads(4);
    let params = Params::new(2, 4).unwrap();
    let (c0, _) = par_enumerate_count(&gen::empty(0), params, &cfg, &opts);
    assert_eq!(c0, 0);
    let (c1, _) = par_enumerate_count(&gen::empty(50), params, &cfg, &opts);
    assert_eq!(c1, 0);
    let (c2, _) = par_enumerate_count(&gen::complete(6), params, &cfg, &opts);
    assert_eq!(c2, 1);
}

#[test]
fn stats_outputs_match_counts() {
    let g = gen::powerlaw_cluster(200, 6, 0.5, 31);
    let params = Params::new(2, 7).unwrap();
    let cfg = AlgoConfig::ours();
    let opts = EngineOptions::with_threads(3);
    let (count, stats) = par_enumerate_count(&g, params, &cfg, &opts);
    assert_eq!(count, stats.outputs);
}
