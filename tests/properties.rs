//! Property-based tests (proptest) over the enumeration invariants.
//!
//! For arbitrary random graphs and parameters:
//! * every reported set is a k-plex with at least q vertices,
//! * every reported set is maximal in the input graph,
//! * no set is reported twice,
//! * all algorithm variants and the parallel engine report the same sets,
//! * disabling pruning rules never changes the result set.

use kplex_baselines::Algorithm;
use kplex_core::plex::{is_kplex, is_maximal_kplex};
use kplex_core::{enumerate_collect, enumerate_count, AlgoConfig, Params};
use kplex_graph::{CsrGraph, VertexId};
use kplex_parallel::{par_enumerate_collect, par_enumerate_count, EngineOptions};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (4usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(160))
            .prop_map(move |pairs| CsrGraph::from_edges(n, pairs).expect("in range"))
    })
}

/// Strategy: valid (k, q) pairs in the paper's regime.
fn arb_params() -> impl Strategy<Value = Params> {
    (1usize..=4).prop_flat_map(|k| {
        let min_q = 2 * k - 1;
        (min_q..=min_q + 4).prop_map(move |q| Params::new(k, q).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn outputs_are_maximal_kplexes_of_size_q(g in arb_graph(18), params in arb_params()) {
        let (plexes, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());
        prop_assert_eq!(plexes.len() as u64, stats.outputs);
        for p in &plexes {
            prop_assert!(p.len() >= params.q, "too small: {:?}", p);
            prop_assert!(is_kplex(&g, p, params.k), "not a k-plex: {:?}", p);
            prop_assert!(is_maximal_kplex(&g, p, params.k), "not maximal: {:?}", p);
        }
        // No duplicates (plexes are sorted by enumerate_collect).
        let mut dedup = plexes.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), plexes.len());
    }

    #[test]
    fn all_variants_agree(g in arb_graph(16), params in arb_params()) {
        let (reference, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        for algo in Algorithm::ALL {
            let (got, _) = algo.run_collect(&g, params);
            prop_assert_eq!(&got, &reference, "{} diverged", algo.name());
        }
    }

    #[test]
    fn parallel_engine_agrees(g in arb_graph(20), params in arb_params()) {
        let (reference, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        let opts = EngineOptions::with_threads(3);
        let (par, _) = par_enumerate_collect(&g, params, &AlgoConfig::ours(), &opts);
        prop_assert_eq!(par, reference);
    }

    #[test]
    fn parallel_count_matches_serial_under_1_2_4_threads(g in arb_graph(20), params in arb_params()) {
        let (serial, _) = enumerate_count(&g, params, &AlgoConfig::ours());
        for threads in [1usize, 2, 4] {
            let opts = EngineOptions::with_threads(threads);
            let (par, _) = par_enumerate_count(&g, params, &AlgoConfig::ours(), &opts);
            prop_assert_eq!(par, serial, "count diverged at {} threads: {} != {}", threads, par, serial);
        }
    }

    #[test]
    fn pruning_flags_never_change_results(g in arb_graph(16), params in arb_params()) {
        let (reference, s_ours) = enumerate_collect(&g, params, &AlgoConfig::ours());
        let (basic, s_basic) = enumerate_collect(&g, params, &AlgoConfig::basic());
        prop_assert_eq!(&basic, &reference);
        // Pruning can only reduce explored branches.
        prop_assert!(s_ours.branch_calls <= s_basic.branch_calls);
        let (no_ub, s_no_ub) = enumerate_collect(&g, params, &AlgoConfig::ours_no_ub());
        prop_assert_eq!(&no_ub, &reference);
        prop_assert!(s_ours.ub_pruned >= s_no_ub.ub_pruned);
    }

    #[test]
    fn every_output_extends_no_further(g in arb_graph(14), params in arb_params()) {
        // Complementary check through the public verification API: adding
        // any outside vertex to a reported plex breaks the k-plex property.
        let (plexes, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        for p in plexes.iter().take(10) {
            for v in g.vertices() {
                if p.contains(&v) {
                    continue;
                }
                let mut bigger = p.clone();
                bigger.push(v);
                bigger.sort_unstable();
                prop_assert!(
                    !is_kplex(&g, &bigger, params.k),
                    "{:?} + {v} is still a k-plex",
                    p
                );
            }
        }
    }

    #[test]
    fn core_reduction_is_lossless(g in arb_graph(18), params in arb_params()) {
        // Theorem 3.5: mining the (q-k)-core finds exactly the same plexes
        // as mining the whole graph. The naive oracle mines the whole graph.
        if g.num_vertices() <= 14 {
            let oracle = kplex_core::naive::brute_force(&g, params.k, params.q);
            let (got, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
            prop_assert_eq!(got, oracle);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn timeout_splitting_preserves_results(g in arb_graph(24), k in 2usize..=3) {
        let params = Params::new(k, 2 * k - 1).expect("valid");
        let (reference, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        let mut opts = EngineOptions::with_threads(2);
        opts.timeout = Some(std::time::Duration::from_nanos(0));
        let (split, _) = par_enumerate_collect(&g, params, &AlgoConfig::ours(), &opts);
        prop_assert_eq!(split, reference);
    }
}
