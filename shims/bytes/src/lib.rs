//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] trait subset used by the workspace's
//! binary graph codec — cursored little-endian reads over `&[u8]` and
//! appends onto `Vec<u8>` — with the same names and semantics as the real
//! crate, so the path dependency can later be swapped for crates.io
//! `bytes = "1"` unchanged.

/// Read side: a cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = Vec::new();
        buf.put_slice(b"HDR");
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        buf.put_u32_le(42);
        buf.put_u8(7);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 3 + 8 + 4 + 1);
        r.advance(3);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut r: &[u8] = &[1, 2, 3];
        r.advance(4);
    }
}
