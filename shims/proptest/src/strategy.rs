//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it
    /// (dependent generation).
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate_value(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn generate_value(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate_value(rng)).generate_value(rng)
    }
}

/// Uniform choice among boxed strategies (what [`crate::prop_oneof!`]
/// expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate_value(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate_value(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate_value(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident => $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A => 0);
    (A => 0, B => 1);
    (A => 0, B => 1, C => 2);
    (A => 0, B => 1, C => 2, D => 3);
    (A => 0, B => 1, C => 2, D => 3, E => 4);
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
