//! Test execution plumbing used by the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving generation. Seeded deterministically per test name, so
/// every run (and every failure) is exactly reproducible.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    StdRng::seed_from_u64(seed)
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The inputs were unsuitable; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
