//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of proptest's API used by this workspace:
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`strategy::Just`], [`strategy::any`],
//! [`strategy::Union`] (behind [`prop_oneof!`]), [`collection`] strategies,
//! [`test_runner::Config`], and the [`proptest!`] / [`prop_assert!`] family
//! of macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case index; generation is deterministically seeded from the test
//! name, so every failure reproduces exactly) and no failure persistence.
//! Swap the path dependency for crates.io `proptest = "1"` to get both.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The imports a property test needs.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `Config::cases` generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate_value(&__strategies, &mut __rng);
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails the current property case instead of
/// panicking directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Like `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}
