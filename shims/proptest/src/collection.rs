//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with sizes drawn from `size`. As in real
/// proptest, the set may come out smaller than the drawn size when the
/// element strategy repeats values.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Give repeated values a bounded number of extra attempts.
        for _ in 0..want.saturating_mul(2) {
            if set.len() >= want {
                break;
            }
            set.insert(self.element.generate_value(rng));
        }
        set
    }
}
