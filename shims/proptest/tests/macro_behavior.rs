//! Behavioural tests of the shim's `proptest!` machinery itself: the macro
//! must actually iterate, draw fresh inputs, respect the configured case
//! count, and turn `prop_assert!` violations into test failures.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(37))]

    #[test]
    fn macro_runs_configured_number_of_cases(_x in 0usize..10) {
        CASES_RUN.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn case_count_is_respected() {
    macro_runs_configured_number_of_cases();
    // Every invocation (including the harness's own) runs exactly 37 cases.
    assert_eq!(CASES_RUN.load(Ordering::Relaxed) % 37, 0);
    assert!(CASES_RUN.load(Ordering::Relaxed) >= 37);
}

#[test]
#[allow(unnameable_test_items)]
fn failing_property_panics_with_case_message() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn always_fails(x in 0usize..100) {
            prop_assert!(x > 1000, "x was {}", x);
        }
    }
    let err = catch_unwind(AssertUnwindSafe(always_fails)).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("always_fails"), "message: {msg}");
    assert!(msg.contains("x was"), "message: {msg}");
}

#[test]
#[allow(unnameable_test_items)]
fn inputs_vary_across_cases() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn collect_inputs(x in 0u32..1_000_000) {
            // Threading state out through a thread_local keeps the closure Fn.
            INPUTS.with(|v| v.borrow_mut().push(x));
        }
    }
    thread_local! {
        static INPUTS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    collect_inputs();
    INPUTS.with(|v| {
        let inputs = v.borrow();
        assert_eq!(inputs.len(), 64);
        let mut dedup = inputs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() > 32, "only {} distinct inputs", dedup.len());
    });
}

proptest! {
    // No config block: the default (256 cases) applies.
    #[test]
    fn default_config_form_compiles(a in 0usize..5, b in 0usize..5) {
        prop_assert!(a < 5 && b < 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn early_ok_return_skips_rest(n in 0usize..10) {
        if n < 10 {
            return Ok(());
        }
        prop_assert!(false, "unreachable");
    }

    #[test]
    fn oneof_just_and_collections_compose(
        v in proptest::collection::vec(prop_oneof![Just(1usize), 3usize..6], 0..20),
        s in proptest::collection::btree_set(0usize..50, 0..10),
    ) {
        prop_assert!(v.iter().all(|&x| x == 1 || (3..6).contains(&x)));
        prop_assert!(s.len() < 10);
        prop_assert!(s.iter().all(|&x| x < 50));
    }
}
