//! Offline stand-in for `crossbeam` (deque + utils + sync subsets).
//!
//! The parallel engine needs a per-worker deque with owner-side LIFO pop
//! and thief-side FIFO steal — the crossbeam-deque `Worker`/`Stealer` API —
//! plus a global [`deque::Injector`] for initial injection and overflow,
//! the [`utils::Backoff`] helper for idle spinning, and the token-based
//! [`sync::Parker`]/[`sync::Unparker`] pair for blocking idle workers. This
//! shim reproduces those APIs; the queues keep crossbeam's ordering
//! semantics over a `Mutex<VecDeque>`, correct under arbitrary
//! interleavings and fast enough for test-scale workloads. Swap the
//! workspace path dependency for crates.io `crossbeam = "0.8"` to get the
//! lock-free versions unchanged.

pub mod utils {
    //! Subset of `crossbeam-utils`: the [`Backoff`] spin helper.

    use std::cell::Cell;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    ///
    /// Early steps issue a growing number of `spin_loop` hints (cheap,
    /// keeps the core), later steps [`std::thread::yield_now`] (gives the
    /// core away). Once [`Backoff::is_completed`] turns true the caller is
    /// expected to stop spinning and block/sleep — busy waiting past that
    /// point is what burned a full core per idle engine worker before the
    /// backoff was introduced.
    pub struct Backoff {
        step: Cell<u32>,
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        /// A fresh backoff at step 0.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Resets to step 0 (call after useful work was found).
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backs off in a lock-free-retry loop: spin hints only, capped at
        /// `2^SPIN_LIMIT` per call.
        pub fn spin(&self) {
            let step = self.step.get().min(SPIN_LIMIT);
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Backs off in a wait loop: spin hints first, then yields the
        /// thread to the OS scheduler.
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// True once backing off any further is pointless and the caller
        /// should park, sleep, or otherwise block.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn escalates_to_completion() {
            let b = Backoff::new();
            assert!(!b.is_completed());
            for _ in 0..=YIELD_LIMIT {
                b.snooze();
            }
            assert!(b.is_completed());
            b.reset();
            assert!(!b.is_completed());
        }

        #[test]
        fn spin_saturates_below_completion() {
            let b = Backoff::new();
            for _ in 0..100 {
                b.spin();
            }
            // spin() alone never reaches the completed state.
            assert!(!b.is_completed());
        }
    }
}

pub mod sync {
    //! Subset of `crossbeam-utils::sync`: the token-based thread parker.

    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner {
        /// The wakeup token: set by [`Unparker::unpark`], consumed by one
        /// [`Parker::park`]. Saturates at one — an unpark delivered while
        /// the owner is awake makes exactly the next park return
        /// immediately, which is what closes the push-vs-park race.
        token: Mutex<bool>,
        cvar: Condvar,
    }

    /// Blocks the owning thread until its [`Unparker`] delivers a token.
    ///
    /// Unlike `std::thread::park`, the pair has no spurious wakeups: `park`
    /// returns only after an `unpark` (current or already banked). One
    /// `Parker` belongs to one thread; hand out [`Unparker`] clones.
    pub struct Parker {
        inner: Arc<Inner>,
        unparker: Unparker,
    }

    /// Wakes the paired [`Parker`]'s thread. Cloneable, `Send + Sync`.
    pub struct Unparker {
        inner: Arc<Inner>,
    }

    impl Parker {
        /// A fresh parker with no banked token.
        pub fn new() -> Self {
            let inner = Arc::new(Inner {
                token: Mutex::new(false),
                cvar: Condvar::new(),
            });
            Parker {
                unparker: Unparker {
                    inner: Arc::clone(&inner),
                },
                inner,
            }
        }

        /// Blocks until a token is available, then consumes it.
        pub fn park(&self) {
            let mut token = self.inner.token.lock().expect("parker poisoned");
            while !*token {
                token = self.inner.cvar.wait(token).expect("parker poisoned");
            }
            *token = false;
        }

        /// Blocks until a token is available or `timeout` elapses; a token
        /// found in time is consumed.
        pub fn park_timeout(&self, timeout: Duration) {
            let deadline = std::time::Instant::now() + timeout;
            let mut token = self.inner.token.lock().expect("parker poisoned");
            while !*token {
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now) else {
                    return;
                };
                let (guard, res) = self
                    .inner
                    .cvar
                    .wait_timeout(token, left)
                    .expect("parker poisoned");
                token = guard;
                if res.timed_out() && !*token {
                    return;
                }
            }
            *token = false;
        }

        /// The handle other threads use to wake this parker.
        pub fn unparker(&self) -> &Unparker {
            &self.unparker
        }
    }

    impl Default for Parker {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Unparker {
        /// Banks a wakeup token and wakes the parked owner, if any.
        pub fn unpark(&self) {
            let mut token = self.inner.token.lock().expect("parker poisoned");
            *token = true;
            self.inner.cvar.notify_one();
        }
    }

    impl Clone for Unparker {
        fn clone(&self) -> Self {
            Unparker {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unpark_before_park_is_banked() {
            let p = Parker::new();
            p.unparker().unpark();
            p.park(); // returns immediately on the banked token
        }

        #[test]
        fn token_saturates_at_one() {
            let p = Parker::new();
            p.unparker().unpark();
            p.unparker().unpark();
            p.park();
            // Second park would block: only a timeout gets us out.
            p.park_timeout(Duration::from_millis(10));
        }

        #[test]
        fn cross_thread_unpark_wakes() {
            let p = Parker::new();
            let u = p.unparker().clone();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    u.unpark();
                });
                p.park();
            });
        }

        #[test]
        fn park_timeout_returns_without_token() {
            let p = Parker::new();
            let t0 = std::time::Instant::now();
            p.park_timeout(Duration::from_millis(10));
            assert!(t0.elapsed() >= Duration::from_millis(5));
        }
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Owner side of a work-stealing deque.
    ///
    /// LIFO flavour: the owner pushes and pops at the back (depth-first,
    /// cache-warm), thieves steal from the front (breadth-first, coarse
    /// tasks). FIFO flavour: the owner also pops from the front.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    /// Thief side; clone one per sibling worker.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; retrying may succeed.
        Retry,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops most-recently-pushed first.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// New deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().expect("deque poisoned");
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a thief handle to this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task. The locked implementation
        /// never races, so [`Steal::Retry`] is never returned; callers
        /// written against crossbeam's lock-free deque handle it anyway.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A global FIFO task queue every worker can push to and steal from —
    /// crossbeam-deque's `Injector`. Used for injecting the initial task
    /// set and as an overflow target when a worker wants to publish work
    /// to parked peers instead of hoarding it on its own deque.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    /// Most tasks one `steal_batch_and_pop` moves (crossbeam's cap).
    const MAX_BATCH: usize = 32;

    impl<T> Injector<T> {
        /// A new, empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back of the global queue.
        pub fn push(&self, task: T) {
            self.inner
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals the oldest task, if any.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals up to half the queue (capped at an internal batch limit),
        /// moving all but the first stolen task onto `dest` and returning
        /// the first — the crossbeam `steal_batch_and_pop` contract.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.inner.lock().expect("injector poisoned");
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let extra = (q.len() / 2).min(MAX_BATCH - 1);
            for _ in 0..extra {
                let t = q.pop_front().expect("len checked");
                dest.push(t);
            }
            Steal::Success(first)
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks (racy by nature; a load-balancing hint).
        pub fn len(&self) -> usize {
            self.inner.lock().expect("injector poisoned").len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_owner_fifo_thief() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_batch_steal_splits_work() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            // First stolen task pops out; roughly half the rest lands on w.
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            let mut moved = Vec::new();
            while let Some(v) = w.pop() {
                moved.push(v);
            }
            moved.sort_unstable();
            assert_eq!(moved, vec![1, 2, 3, 4]);
            assert_eq!(inj.len(), 5);
            assert_eq!(inj.steal(), Steal::Success(5));
        }

        #[test]
        fn injector_drains_to_empty() {
            let inj: Injector<u32> = Injector::new();
            assert!(inj.is_empty());
            assert_eq!(inj.steal(), Steal::Empty);
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Empty);
        }

        #[test]
        fn cross_thread_stealing_loses_nothing() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: i32 = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for s in &stealers {
                    handles.push(scope.spawn(move || {
                        let mut sum = 0;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        sum
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..1000).sum::<i32>());
        }
    }
}
