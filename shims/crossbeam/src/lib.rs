//! Offline stand-in for `crossbeam` (deque subset).
//!
//! The parallel engine needs a per-worker deque with owner-side LIFO pop
//! and thief-side FIFO steal — the crossbeam-deque `Worker`/`Stealer` API.
//! This shim reproduces that API and its ordering semantics over a
//! `Mutex<VecDeque>`; it is correct under arbitrary interleavings and fast
//! enough for test-scale workloads. Swap the workspace path dependency for
//! crates.io `crossbeam = "0.8"` to get the lock-free version unchanged.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Owner side of a work-stealing deque.
    ///
    /// LIFO flavour: the owner pushes and pops at the back (depth-first,
    /// cache-warm), thieves steal from the front (breadth-first, coarse
    /// tasks). FIFO flavour: the owner also pops from the front.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    /// Thief side; clone one per sibling worker.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; retrying may succeed.
        Retry,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops most-recently-pushed first.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// New deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().expect("deque poisoned");
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a thief handle to this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task. The locked implementation
        /// never races, so [`Steal::Retry`] is never returned; callers
        /// written against crossbeam's lock-free deque handle it anyway.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_owner_fifo_thief() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn cross_thread_stealing_loses_nothing() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: i32 = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for s in &stealers {
                    handles.push(scope.spawn(move || {
                        let mut sum = 0;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        sum
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..1000).sum::<i32>());
        }
    }
}
