//! Offline stand-in for `crossbeam` (deque + utils subsets).
//!
//! The parallel engine needs a per-worker deque with owner-side LIFO pop
//! and thief-side FIFO steal — the crossbeam-deque `Worker`/`Stealer` API —
//! plus the [`utils::Backoff`] helper for idle spinning. This shim
//! reproduces those APIs; the deque keeps crossbeam's ordering semantics
//! over a `Mutex<VecDeque>`, correct under arbitrary interleavings and fast
//! enough for test-scale workloads. Swap the workspace path dependency for
//! crates.io `crossbeam = "0.8"` to get the lock-free versions unchanged.

pub mod utils {
    //! Subset of `crossbeam-utils`: the [`Backoff`] spin helper.

    use std::cell::Cell;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    ///
    /// Early steps issue a growing number of `spin_loop` hints (cheap,
    /// keeps the core), later steps [`std::thread::yield_now`] (gives the
    /// core away). Once [`Backoff::is_completed`] turns true the caller is
    /// expected to stop spinning and block/sleep — busy waiting past that
    /// point is what burned a full core per idle engine worker before the
    /// backoff was introduced.
    pub struct Backoff {
        step: Cell<u32>,
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        /// A fresh backoff at step 0.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Resets to step 0 (call after useful work was found).
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backs off in a lock-free-retry loop: spin hints only, capped at
        /// `2^SPIN_LIMIT` per call.
        pub fn spin(&self) {
            let step = self.step.get().min(SPIN_LIMIT);
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Backs off in a wait loop: spin hints first, then yields the
        /// thread to the OS scheduler.
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// True once backing off any further is pointless and the caller
        /// should park, sleep, or otherwise block.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn escalates_to_completion() {
            let b = Backoff::new();
            assert!(!b.is_completed());
            for _ in 0..=YIELD_LIMIT {
                b.snooze();
            }
            assert!(b.is_completed());
            b.reset();
            assert!(!b.is_completed());
        }

        #[test]
        fn spin_saturates_below_completion() {
            let b = Backoff::new();
            for _ in 0..100 {
                b.spin();
            }
            // spin() alone never reaches the completed state.
            assert!(!b.is_completed());
        }
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Owner side of a work-stealing deque.
    ///
    /// LIFO flavour: the owner pushes and pops at the back (depth-first,
    /// cache-warm), thieves steal from the front (breadth-first, coarse
    /// tasks). FIFO flavour: the owner also pops from the front.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    /// Thief side; clone one per sibling worker.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; retrying may succeed.
        Retry,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops most-recently-pushed first.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// New deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().expect("deque poisoned");
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a thief handle to this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task. The locked implementation
        /// never races, so [`Steal::Retry`] is never returned; callers
        /// written against crossbeam's lock-free deque handle it anyway.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_owner_fifo_thief() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn cross_thread_stealing_loses_nothing() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: i32 = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for s in &stealers {
                    handles.push(scope.spawn(move || {
                        let mut sum = 0;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        sum
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..1000).sum::<i32>());
        }
    }
}
