//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — groups, per-group
//! sample/timing knobs, `bench_function` / `bench_with_input`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros — reporting
//! min/mean/max wall-clock per iteration as plain text. No statistics, plots
//! or baselines; swap the path dependency for crates.io `criterion = "0.5"`
//! to get those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        loop {
            black_box(routine());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        self.times = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(routine());
                t.elapsed()
            })
            .collect();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Shared knobs and reporting for a set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    warm_up: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// samples rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up budget before sampling begins.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            warm_up: self.warm_up,
            times: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b.times);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            warm_up: self.warm_up,
            times: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b.times);
        self
    }

    /// Ends the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, times: &[Duration]) {
        if times.is_empty() {
            println!(
                "{}/{}: no samples (routine never called iter)",
                self.name, id.id
            );
            return;
        }
        let min = *times.iter().min().expect("non-empty");
        let max = *times.iter().max().expect("non-empty");
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{}: [{} {} {}] ({} samples)",
            self.name,
            id.id,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            times.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            warm_up: Duration::from_millis(100),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        self
    }

    /// Prints the final summary (reporting is incremental; no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.warm_up_time(Duration::from_millis(0));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            ran += 1;
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
