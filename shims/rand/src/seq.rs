//! Sequence helpers (`SliceRandom`).

use crate::distr::u64_below;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[u64_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
