//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The workspace builds in an environment without registry access, so the
//! real `rand` cannot be fetched. This shim implements exactly the surface
//! the workspace uses — a deterministic [`rngs::StdRng`] (xoshiro256**
//! seeded by SplitMix64), the [`Rng`] extension methods `random`,
//! `random_range` and `random_bool`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] — with the same signatures, so replacing the path
//! dependency with the crates.io `rand = "0.9"` is a no-op for callers.
//!
//! The streams differ from the real crate's, which is fine: every consumer
//! in this workspace treats the seed as an opaque determinism handle, never
//! as a cross-library reproducibility contract.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        distr::f64_unit(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution plumbing behind [`Rng`]'s convenience methods.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    pub(crate) fn f64_unit<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types with a canonical "standard" distribution.
    pub trait StandardUniform: Sized {
        /// Draws one standard-distributed value.
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            f64_unit(rng)
        }
    }

    impl StandardUniform for f32 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardUniform for u64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardUniform for u32 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    /// Ranges that can be sampled from uniformly.
    pub trait SampleRange<T> {
        /// Draws one value; panics if the range is empty.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by rejection from the top, avoiding
    /// modulo bias (Lemire-style threshold rejection).
    pub(crate) fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // zone = largest multiple of span that fits in u64.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    // Two's-complement subtraction yields the span for signed
                    // and unsigned ranges alike (e.g. -5..5 spans 10).
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                    self.start.wrapping_add(u64_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(u64_below(rng, span as u64) as $t)
                }
            }
        )*};
    }

    int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + f64_unit(rng) * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(3i32..=5);
            assert!((3..=5).contains(&y));
            let z = r.random_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let w = r.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full-range draw must not panic
            let v = r.random_range(-3i64..=-1);
            assert!((-3..=-1).contains(&v));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
