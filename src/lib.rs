//! # maximal-kplex
//!
//! A production-quality Rust implementation of *"Efficient Enumeration of
//! Large Maximal k-Plexes"* (EDBT 2025): a branch-and-bound enumerator for
//! all maximal k-plexes with at least `q` vertices, its task-based parallel
//! runtime, the ListPlex and FP baselines it is evaluated against, and the
//! synthetic datasets + harness that regenerate the paper's experiments.
//!
//! This crate is a facade re-exporting the workspace's public API. The
//! crate map, the enumeration dataflow (load → reduce → seed fixpoint →
//! arena branch kernel → sinks) and the service topology (client →
//! `kplexr` → `kplexd` → engine) are described in `ARCHITECTURE.md` at
//! the repository root.
//!
//! ## Quick start
//!
//! ```
//! use maximal_kplex::prelude::*;
//!
//! // A graph with a planted near-clique: {0,1,2,3,4} minus the edge (0,1).
//! let g = CsrGraph::from_edges(6, [
//!     (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4),
//!     (2, 3), (2, 4), (3, 4), (4, 5),
//! ]).unwrap();
//!
//! // Every vertex of {0..4} misses at most 2 links (itself + one other):
//! // it is a maximal 2-plex with 5 vertices.
//! let params = Params::new(2, 5).unwrap();
//! let (plexes, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());
//! assert_eq!(plexes, vec![vec![0, 1, 2, 3, 4]]);
//! assert_eq!(stats.outputs, 1);
//! ```

pub use kplex_baselines as baselines;
pub use kplex_core as core;
pub use kplex_datasets as datasets;
pub use kplex_graph as graph;
pub use kplex_parallel as parallel;
pub use kplex_service as service;

/// The most common imports for library users.
pub mod prelude {
    pub use kplex_baselines::Algorithm;
    pub use kplex_core::{
        enumerate, enumerate_collect, enumerate_count, AlgoConfig, CollectSink, CountSink, Params,
        PlexSink, SearchStats, SinkFlow,
    };
    pub use kplex_graph::{CsrGraph, GraphBuilder, GraphStats, VertexId};
    pub use kplex_parallel::{par_enumerate_collect, par_enumerate_count, EngineOptions};
}
