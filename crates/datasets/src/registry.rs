//! The dataset registry: one entry per Table 2 graph.

use kplex_graph::gen::{self, PlantedPlexConfig, RmatConfig};
use kplex_graph::{io, CsrGraph, GraphStats};
use std::path::PathBuf;

/// Revision of the stand-in generator configurations. Bump whenever any
/// `build` closure below changes, so every cache keyed by
/// [`Dataset::cache_key`] (the service's in-memory graph cache, external
/// materialisations) is invalidated together with the graphs themselves.
pub const REGISTRY_REV: u32 = 1;

/// Size class used by the paper (Section 7): small < 10^4 vertices,
/// medium < 5·10^6, large beyond. Our stand-ins keep the same relative
/// ordering at reduced absolute scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetClass {
    /// Small graphs (sequential experiments).
    Small,
    /// Medium graphs (sequential experiments).
    Medium,
    /// Large graphs (parallel experiments, Table 4 / Figure 8).
    Large,
}

/// The original dataset's statistics as printed in Table 2 of the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Vertices of the original graph.
    pub n: u64,
    /// Edges of the original graph.
    pub m: u64,
    /// Maximum degree Δ of the original graph.
    pub max_degree: u64,
    /// Degeneracy D of the original graph.
    pub degeneracy: u64,
}

/// One evaluation dataset: the paper's original plus our stand-in generator.
#[derive(Clone)]
pub struct Dataset {
    /// The paper's dataset name (e.g. `wiki-vote`).
    pub name: &'static str,
    /// Size class (drives which experiments use it).
    pub class: DatasetClass,
    /// Structural family of the original, documented for the report.
    pub family: &'static str,
    /// The original's Table 2 statistics.
    pub paper: PaperStats,
    build: fn() -> CsrGraph,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish()
    }
}

impl Dataset {
    /// Generates the stand-in graph (no cache).
    pub fn generate(&self) -> CsrGraph {
        (self.build)()
    }

    /// Loads the stand-in graph through the on-disk binary cache. The cache
    /// directory is `$KPLEX_DATA_DIR` or `data/cache` under the current
    /// directory. The filename carries [`REGISTRY_REV`] (like
    /// [`cache_key`]), so bumping the revision orphans stale files instead
    /// of silently serving the old graph.
    ///
    /// [`cache_key`]: Dataset::cache_key
    pub fn load(&self) -> CsrGraph {
        let dir = cache_dir();
        let path = dir.join(format!("{}-r{}.kplx", self.name, REGISTRY_REV));
        if let Ok(g) = io::read_binary(&path) {
            return g;
        }
        let g = self.generate();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = io::write_binary(&g, &path);
        }
        g
    }

    /// Computes the stand-in's own statistics (the "ours" column of the
    /// Table 2 reproduction).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.load())
    }

    /// Path of this dataset's `.kpx` out-of-core store inside the cache
    /// directory (the file [`ensure_kpx`] writes). Like [`load`]'s binary
    /// cache, the filename carries [`REGISTRY_REV`] so a revision bump
    /// forces reconversion rather than mmap jobs reading a stale graph
    /// under a fresh [`cache_key`].
    ///
    /// [`ensure_kpx`]: Dataset::ensure_kpx
    /// [`load`]: Dataset::load
    /// [`cache_key`]: Dataset::cache_key
    pub fn kpx_path(&self) -> PathBuf {
        cache_dir().join(format!("{}-r{}.kpx", self.name, REGISTRY_REV))
    }

    /// Converts the stand-in graph to the chunked `.kpx` on-disk format (if
    /// not already cached) and returns its path, ready for
    /// `StoreBackend::open_mmap`. The conversion goes through [`load`], so
    /// the binary cache and the `.kpx` file describe the same graph.
    ///
    /// [`load`]: Dataset::load
    pub fn ensure_kpx(&self) -> Result<PathBuf, kplex_graph::GraphError> {
        let path = self.kpx_path();
        if !path.is_file() {
            let g = self.load();
            let _ = std::fs::create_dir_all(cache_dir());
            kplex_graph::write_kpx(&g, &path)?;
        }
        Ok(path)
    }

    /// Stable identity of this dataset's *content*: the name plus the
    /// generator-registry revision. Two `load()` calls return equal graphs
    /// iff their cache keys are equal, which is what keyed caches (e.g. the
    /// service's LRU of prepared graphs) need to stay correct across
    /// generator changes.
    pub fn cache_key(&self) -> String {
        format!("{}@r{}", self.name, REGISTRY_REV)
    }
}

fn cache_dir() -> PathBuf {
    std::env::var_os("KPLEX_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("data/cache"))
}

/// Plants `count` noisy communities sized `[lo, hi]` (each a `(miss+1)`-plex)
/// on top of `bg`.
fn plant(bg: CsrGraph, count: usize, lo: usize, hi: usize, miss: usize, seed: u64) -> CsrGraph {
    let cfg = PlantedPlexConfig {
        count,
        size_lo: lo,
        size_hi: hi,
        missing: miss,
        overlap: false,
    };
    gen::planted_plexes(&bg, &cfg, seed).0
}

/// Plants a density mix: near-cliques (`missing = 1`, valid for every
/// k >= 2), 3-plex communities and 4-plex communities, so all of the paper's
/// k = 2, 3, 4 settings return non-trivial result sets.
fn plant_mixed(
    bg: CsrGraph,
    count: usize,
    lo: usize,
    hi: usize,
    miss_hi: usize,
    seed: u64,
) -> CsrGraph {
    let tight = count.div_ceil(2);
    let g = plant(bg, tight, lo, hi, 1, seed);
    let g = plant(g, count - tight, lo, hi, miss_hi.clamp(2, 3), seed ^ 0x5EED);
    // Organic overlapping communities: dense random blobs, slightly larger
    // than the planted plexes. These drive the combinatorial result counts
    // of the paper's Table 3 regime (search-dominated workloads).
    gen::dense_blobs(&g, count, hi, hi + 5, 0.82, seed ^ 0xB10B)
}

macro_rules! dataset {
    ($name:literal, $class:ident, $family:literal, ($n:expr, $m:expr, $d:expr, $deg:expr), $build:expr) => {
        Dataset {
            name: $name,
            class: DatasetClass::$class,
            family: $family,
            paper: PaperStats {
                n: $n,
                m: $m,
                max_degree: $d,
                degeneracy: $deg,
            },
            build: $build,
        }
    };
}

/// All 16 Table 2 datasets, in the paper's order.
pub fn all_datasets() -> Vec<Dataset> {
    vec![
        dataset!(
            "jazz",
            Small,
            "musician collaboration (small, dense)",
            (198, 2742, 100, 29),
            || plant_mixed(gen::gnp(200, 0.10, 0xA001), 8, 9, 13, 2, 0xB001)
        ),
        dataset!(
            "wiki-vote",
            Small,
            "who-votes-on-whom social graph",
            (7115, 100_762, 1065, 53),
            || plant_mixed(
                gen::powerlaw_cluster(2400, 7, 0.55, 0xA002),
                14,
                9,
                13,
                2,
                0xB002
            )
        ),
        dataset!(
            "lastfm",
            Small,
            "social network of music listeners",
            (7624, 27_806, 216, 20),
            || plant_mixed(
                gen::powerlaw_cluster(2600, 4, 0.50, 0xA003),
                10,
                9,
                12,
                2,
                0xB003
            )
        ),
        dataset!(
            "as-caida",
            Medium,
            "internet autonomous-system topology",
            (26_475, 53_381, 2628, 22),
            || plant_mixed(gen::barabasi_albert(6000, 2, 0xA004), 10, 9, 12, 2, 0xB004)
        ),
        dataset!(
            "soc-epinions",
            Medium,
            "trust network of a review site",
            (75_879, 405_740, 3044, 67),
            || plant_mixed(
                gen::powerlaw_cluster(7000, 6, 0.45, 0xA005),
                18,
                9,
                13,
                3,
                0xB005
            )
        ),
        dataset!(
            "soc-slashdot",
            Medium,
            "technology news social network",
            (82_168, 504_230, 2552, 55),
            || plant_mixed(
                gen::powerlaw_cluster(7500, 6, 0.45, 0xA006),
                18,
                9,
                13,
                3,
                0xB006
            )
        ),
        dataset!(
            "email-euall",
            Medium,
            "EU research institution e-mail graph",
            (265_009, 364_481, 7636, 37),
            || plant_mixed(gen::barabasi_albert(9000, 3, 0xA007), 20, 9, 13, 3, 0xB007)
        ),
        dataset!(
            "com-dblp",
            Medium,
            "co-authorship with overlapping communities",
            (317_080, 1_049_866, 343, 113),
            || plant_mixed(
                gen::caveman(9000, 900, 5, 10, 4000, 0xA008),
                10,
                10,
                13,
                2,
                0xB008
            )
        ),
        dataset!(
            "amazon0505",
            Medium,
            "co-purchase graph (low degeneracy)",
            (410_236, 2_439_437, 2760, 10),
            || plant_mixed(
                gen::watts_strogatz(12_000, 3, 0.05, 0xA009),
                8,
                9,
                11,
                2,
                0xB009
            )
        ),
        dataset!(
            "soc-pokec",
            Medium,
            "large online social network",
            (1_632_803, 22_301_964, 14_854, 47),
            || plant_mixed(
                gen::powerlaw_cluster(12_000, 8, 0.40, 0xA00A),
                24,
                9,
                14,
                3,
                0xB00A
            )
        ),
        dataset!(
            "as-skitter",
            Medium,
            "traceroute internet topology",
            (1_696_415, 11_095_298, 35_455, 111),
            || plant_mixed(
                gen::rmat(
                    RmatConfig {
                        scale: 13,
                        edge_factor: 6,
                        ..RmatConfig::default()
                    },
                    0xA00B
                ),
                16,
                10,
                14,
                3,
                0xB00B
            )
        ),
        dataset!(
            "enwiki-2021",
            Large,
            "Wikipedia link graph",
            (6_253_897, 136_494_843, 232_410, 178),
            || plant_mixed(
                gen::powerlaw_cluster(24_000, 9, 0.45, 0xA00C),
                40,
                10,
                15,
                3,
                0xB00C
            )
        ),
        dataset!(
            "arabic-2005",
            Large,
            "web crawl of Arabic-language pages",
            (22_743_881, 553_903_073, 575_628, 3247),
            || plant_mixed(
                gen::rmat(
                    RmatConfig {
                        scale: 15,
                        edge_factor: 7,
                        ..RmatConfig::default()
                    },
                    0xA00D
                ),
                48,
                11,
                16,
                3,
                0xB00D
            )
        ),
        dataset!(
            "uk-2005",
            Large,
            "web crawl of the .uk domain",
            (39_454_463, 783_027_125, 1_776_858, 588),
            || plant_mixed(
                gen::rmat(
                    RmatConfig {
                        scale: 15,
                        edge_factor: 8,
                        ..RmatConfig::default()
                    },
                    0xA00E
                ),
                48,
                11,
                16,
                3,
                0xB00E
            )
        ),
        dataset!(
            "it-2004",
            Large,
            "web crawl of the .it domain",
            (41_290_648, 1_027_474_947, 1_326_744, 3224),
            || plant_mixed(
                gen::powerlaw_cluster(28_000, 10, 0.50, 0xA00F),
                56,
                11,
                16,
                3,
                0xB00F
            )
        ),
        dataset!(
            "webbase-2001",
            Large,
            "2001 WebBase crawl",
            (115_554_441, 854_809_761, 816_127, 1506),
            || plant_mixed(
                gen::rmat(
                    RmatConfig {
                        scale: 16,
                        edge_factor: 5,
                        ..RmatConfig::default()
                    },
                    0xA010
                ),
                64,
                10,
                15,
                3,
                0xB010
            )
        ),
    ]
}

/// Looks a dataset up by its paper name.
pub fn by_name(name: &str) -> Option<Dataset> {
    all_datasets().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_16_table2_rows() {
        let ds = all_datasets();
        assert_eq!(ds.len(), 16);
        let mut names: Vec<&str> = ds.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "duplicate dataset names");
    }

    #[test]
    fn class_split_matches_paper_usage() {
        let ds = all_datasets();
        let large: Vec<&str> = ds
            .iter()
            .filter(|d| d.class == DatasetClass::Large)
            .map(|d| d.name)
            .collect();
        assert_eq!(
            large,
            vec![
                "enwiki-2021",
                "arabic-2005",
                "uk-2005",
                "it-2004",
                "webbase-2001"
            ]
        );
    }

    #[test]
    fn cache_keys_are_unique_and_versioned() {
        let ds = all_datasets();
        let mut keys: Vec<String> = ds.iter().map(|d| d.cache_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), ds.len(), "duplicate cache keys");
        assert!(keys[0].contains(&format!("@r{REGISTRY_REV}")));
    }

    #[test]
    fn on_disk_artifacts_are_revision_keyed() {
        // A REGISTRY_REV bump must orphan stale .kpx files, not serve them.
        let d = by_name("jazz").unwrap();
        let name = d
            .kpx_path()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_owned();
        assert_eq!(name, format!("jazz-r{REGISTRY_REV}.kpx"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("jazz").is_some());
        assert!(by_name("wiki-vote").is_some());
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn small_datasets_generate_deterministically() {
        let d = by_name("jazz").unwrap();
        let a = d.generate();
        let b = d.generate();
        assert_eq!(a, b);
        assert!(a.num_vertices() >= 190);
    }

    /// `KPLEX_DATA_DIR` is process-global; tests that set it must not
    /// overlap (the harness runs tests on parallel threads).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn cache_roundtrip() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("kplex-ds-{}", std::process::id()));
        std::env::set_var("KPLEX_DATA_DIR", &dir);
        let d = by_name("jazz").unwrap();
        let a = d.load(); // generates + writes
        let b = d.load(); // reads from cache
        assert_eq!(a, b);
        std::env::remove_var("KPLEX_DATA_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_kpx_converts_once_and_roundtrips() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("kplex-kpx-{}", std::process::id()));
        std::env::set_var("KPLEX_DATA_DIR", &dir);
        let d = by_name("jazz").unwrap();
        let expect = d.load();
        let path = d.ensure_kpx().expect("convert");
        assert_eq!(path, d.kpx_path());
        let mapped = kplex_graph::StoreBackend::open_mmap(&path).expect("open");
        use kplex_graph::GraphStore;
        assert_eq!(mapped.num_vertices(), expect.num_vertices());
        assert_eq!(mapped.num_edges(), expect.num_edges());
        let mut scratch = Vec::new();
        for v in 0..expect.num_vertices() as u32 {
            assert_eq!(mapped.row(v, &mut scratch), expect.neighbors(v));
        }
        // Second call is a cache hit on the same path.
        assert_eq!(d.ensure_kpx().expect("hit"), path);
        std::env::remove_var("KPLEX_DATA_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stand_ins_have_community_structure() {
        // Planted communities must survive generation: degeneracy of every
        // small dataset should be at least the plexes' internal degree.
        for d in all_datasets() {
            if d.class == DatasetClass::Small {
                let g = d.generate();
                let stats = GraphStats::compute(&g);
                assert!(
                    stats.degeneracy >= 6,
                    "{}: degeneracy {} too small for planted plexes",
                    d.name,
                    stats.degeneracy
                );
            }
        }
    }
}
