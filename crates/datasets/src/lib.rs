//! # kplex-datasets
//!
//! Deterministic synthetic stand-ins for the 16 SNAP/LAW datasets of the
//! paper's Table 2.
//!
//! The original graphs (up to 10^9 edges) are not redistributable and far
//! exceed a laptop-scale reproduction, so each dataset is replaced by a
//! generator configuration matched to the original's *structural class* —
//! power-law social graphs, overlapping-community collaboration graphs,
//! internet topologies, locally dense web crawls — at 100–1000× reduced
//! scale, with noisy k-plex communities planted so the paper's (k, q)
//! parameter regimes return non-trivial result sets. Every graph is a pure
//! function of a fixed seed; a binary cache (`data/cache/*.kplx`) makes
//! repeated benchmark runs instant.
//!
//! ```
//! use kplex_datasets::{all_datasets, by_name};
//!
//! assert!(all_datasets().len() >= 10);
//! assert!(by_name("no-such-dataset").is_none());
//! ```

#![deny(missing_docs)]

pub mod registry;

pub use registry::{all_datasets, by_name, Dataset, DatasetClass, PaperStats, REGISTRY_REV};
