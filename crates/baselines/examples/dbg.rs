fn main() {
    use kplex_baselines::*;
    use kplex_core::*;
    use kplex_graph::gen;
    let g = gen::gnp(40, 0.25, 9);
    let params = Params::new(3, 5).unwrap();
    let naive = kplex_core::naive::naive_bron_kerbosch(&g, 3, 5);
    let (lp, _) = Algorithm::ListPlex.run_collect(&g, params);
    let mut dup = lp.clone();
    dup.dedup();
    println!("lp {} dedup {} naive {}", lp.len(), dup.len(), naive.len());
    for e in dup.iter() {
        if !naive.contains(e) {
            println!(
                "LP EXTRA {:?} maximal={} kplex={}",
                e,
                kplex_core::plex::is_maximal_kplex(&g, e, 3),
                kplex_core::plex::is_kplex(&g, e, 3)
            );
        }
    }
    for e in naive.iter() {
        if !dup.contains(e) {
            println!("LP MISSING {:?}", e);
        }
    }
}
