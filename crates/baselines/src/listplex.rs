//! ListPlex baseline [\[39\]](https://arxiv.org/abs/2202.08737) (Wang et
//! al., WWW 2022), reimplemented from its published description.
//!
//! ListPlex introduced the sub-task partitioning scheme that the paper
//! builds on (seed subgraphs over the degeneracy ordering, split by subsets
//! `S` of the seed's two-hop vertices), but pairs it with FaPlexen's pivoting
//! and multi-way branching (Eq (4)–(6) of the paper), and uses **no**
//! upper-bound pruning and **no** vertex-pair rules. In this repository all
//! of those mechanisms live in one engine (`kplex-core`), so ListPlex is the
//! exact engine configuration below — which is also what makes the paper's
//! Table 3 comparison an apples-to-apples measurement of the mechanisms.

use kplex_core::{
    enumerate, AlgoConfig, BranchingKind, Params, PivotKind, PlexSink, SearchStats, UpperBoundKind,
};
use kplex_graph::CsrGraph;

/// The engine configuration that realises ListPlex.
pub fn listplex_config() -> AlgoConfig {
    AlgoConfig {
        pivot: PivotKind::MinDegree,
        upper_bound: UpperBoundKind::None,
        use_r1: false,
        use_r2: false,
        branching: BranchingKind::MultiWay,
        // ListPlex reduces seed subgraphs with the same second-order
        // (common-neighbour) rules; that machinery predates this paper.
        seed_prune_rounds: usize::MAX,
        prune_xout: true,
    }
}

/// Enumerates all maximal k-plexes with `|P| >= q` using ListPlex.
pub fn enumerate_listplex(g: &CsrGraph, params: Params, sink: &mut dyn PlexSink) -> SearchStats {
    enumerate(g, params, &listplex_config(), sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::{naive, CollectSink};
    use kplex_graph::gen;

    #[test]
    fn listplex_matches_oracle() {
        for seed in 0..10 {
            let g = gen::gnp(14, 0.4, seed);
            for (k, q) in [(2, 3), (3, 5)] {
                let params = Params::new(k, q).unwrap();
                let mut sink = CollectSink::default();
                enumerate_listplex(&g, params, &mut sink);
                assert_eq!(
                    sink.into_sorted(),
                    naive::brute_force(&g, k, q),
                    "seed {seed} k {k} q {q}"
                );
            }
        }
    }

    #[test]
    fn listplex_visits_more_branches_than_ours() {
        // Without upper bounds and pair rules ListPlex must do at least as
        // much branching as the optimised algorithm.
        let g = gen::powerlaw_cluster(200, 5, 0.7, 11);
        let params = Params::new(3, 6).unwrap();
        let (ours, s_ours) = kplex_core::enumerate_collect(&g, params, &AlgoConfig::ours());
        let mut sink = CollectSink::default();
        let s_lp = enumerate_listplex(&g, params, &mut sink);
        assert_eq!(sink.into_sorted(), ours);
        assert!(s_lp.branch_calls >= s_ours.branch_calls);
        assert_eq!(s_lp.ub_pruned, 0);
        assert_eq!(s_lp.pair_pruned, 0);
        assert_eq!(s_lp.r1_pruned, 0);
    }
}
