//! D2K baseline \[15] (Conte et al., KDD 2018), reimplemented from its
//! published description.
//!
//! D2K introduced the decomposition this whole line of work builds on:
//! seed vertices in degeneracy order, each mined over its diameter-2
//! subgraph. Its branching uses only a *simple* pivoting technique (the
//! paper credits FaPlexen with the first effective pivot rule), no
//! upper-bound pruning, and no vertex-pair rules. Like FP — and unlike
//! ListPlex — it does not split seeds into `S`-sub-tasks.

use crate::fp::enumerate_whole_seed;
use kplex_core::{
    AlgoConfig, BranchingKind, Params, PivotKind, PlexSink, SearchStats, UpperBoundKind,
};
use kplex_graph::CsrGraph;

/// The engine configuration that realises D2K.
pub fn d2k_config() -> AlgoConfig {
    AlgoConfig {
        pivot: PivotKind::FirstCandidate,
        upper_bound: UpperBoundKind::None,
        use_r1: false,
        use_r2: false,
        branching: BranchingKind::RepickPivot, // unreachable with First pivots
        // D2K prunes candidates by the common-neighbour rule once.
        seed_prune_rounds: 1,
        prune_xout: true,
    }
}

/// Enumerates all maximal k-plexes with `|P| >= q` using D2K.
pub fn enumerate_d2k(g: &CsrGraph, params: Params, sink: &mut dyn PlexSink) -> SearchStats {
    enumerate_whole_seed(g, params, &d2k_config(), sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::{naive, CollectSink};
    use kplex_graph::gen;

    #[test]
    fn d2k_matches_oracle() {
        for seed in 0..10 {
            let g = gen::gnp(14, 0.4, 300 + seed);
            for (k, q) in [(2, 3), (3, 5)] {
                let params = Params::new(k, q).unwrap();
                let mut sink = CollectSink::default();
                enumerate_d2k(&g, params, &mut sink);
                assert_eq!(
                    sink.into_sorted(),
                    naive::brute_force(&g, k, q),
                    "seed {seed} k {k} q {q}"
                );
            }
        }
    }

    #[test]
    fn d2k_is_slower_than_ours() {
        // Simple pivoting explores at least as many branches.
        let g = gen::powerlaw_cluster(120, 5, 0.7, 9);
        let params = Params::new(2, 5).unwrap();
        let (ours, s_ours) = kplex_core::enumerate_collect(&g, params, &AlgoConfig::ours());
        let mut sink = CollectSink::default();
        let s_d2k = enumerate_d2k(&g, params, &mut sink);
        assert_eq!(sink.into_sorted(), ours);
        assert!(s_d2k.branch_calls >= s_ours.branch_calls);
    }
}
