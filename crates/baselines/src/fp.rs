//! FP baseline [\[16\]](https://arxiv.org/abs/2203.10760) (Dai et al.,
//! CIKM 2022), reimplemented from its published description.
//!
//! FP enumerates over seed subgraphs like the other algorithms but does
//! **not** partition them into `S`-sub-tasks: each seed spawns a single
//! branch-and-bound task whose candidate set contains the full later
//! two-hop ball. Pruning relies on an upper bound computed with a sorting
//! pass per recursion ([\[16\], Lemma 5](https://arxiv.org/abs/2203.10760);
//! `UpperBoundKind::FpSorting` in the engine). FP performs weaker subgraph reduction, which is also why its
//! memory footprint is larger (Table 7 of the paper).

use kplex_core::enumerate::{prepare, MapSink};
use kplex_core::{
    AlgoConfig, BranchingKind, Params, PivotKind, PlexSink, SearchStats, Searcher, SeedBuilder,
    SinkFlow, UpperBoundKind, XOUT_FLAG,
};
use kplex_graph::{CsrGraph, GraphStore};

/// The engine configuration that realises FP's per-branch behaviour.
pub fn fp_config() -> AlgoConfig {
    AlgoConfig {
        pivot: PivotKind::MinDegree,
        upper_bound: UpperBoundKind::FpSorting,
        use_r1: false,
        use_r2: false,
        branching: BranchingKind::RepickPivot,
        // FP applies one pass of second-order reduction when building
        // subgraphs (weaker than the iterated CTCP-style reduction of
        // kPlexS/ListPlex) and keeps full exclusive sets, which is also why
        // its memory footprint is larger (Table 7).
        seed_prune_rounds: 1,
        prune_xout: false,
    }
}

/// Enumerates all maximal k-plexes with `|P| >= q` using FP: one task per
/// seed vertex, candidates = the entire later two-hop ball.
pub fn enumerate_fp(g: &CsrGraph, params: Params, sink: &mut dyn PlexSink) -> SearchStats {
    enumerate_whole_seed(g, params, &fp_config(), sink)
}

/// Shared "one task per seed" driver used by the FP and D2K baselines
/// (candidate set = the full later two-hop ball, no S-sub-tasks).
pub fn enumerate_whole_seed(
    g: &CsrGraph,
    params: Params,
    cfg: &AlgoConfig,
    sink: &mut dyn PlexSink,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let prep = prepare(g, params);
    let n = prep.graph.num_vertices();
    if n < params.q {
        return stats;
    }
    let mut builder = SeedBuilder::new(n);
    let mut msink = MapSink::new(sink, &prep.map);
    for &sv in &prep.decomp.order {
        let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) else {
            continue;
        };
        stats.seed_graphs += 1;
        stats.subtasks += 1;
        let mut searcher = Searcher::new(&seed, params, cfg, None);
        // Single task: P = {seed}, C = every other local vertex, X = the
        // outside witnesses.
        let c: Vec<u32> = (1..seed.len() as u32).collect();
        let x: Vec<u32> = (0..seed.xout.len() as u32).map(|i| i | XOUT_FLAG).collect();
        let flow = searcher.run_task(&[0], &c, &x, &mut msink);
        stats.merge(&searcher.stats);
        if flow == SinkFlow::Stop {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::{naive, CollectSink};
    use kplex_graph::gen;

    #[test]
    fn fp_matches_oracle() {
        for seed in 0..10 {
            let g = gen::gnp(14, 0.4, 100 + seed);
            for (k, q) in [(2, 3), (2, 4), (3, 5)] {
                let params = Params::new(k, q).unwrap();
                let mut sink = CollectSink::default();
                enumerate_fp(&g, params, &mut sink);
                assert_eq!(
                    sink.into_sorted(),
                    naive::brute_force(&g, k, q),
                    "seed {seed} k {k} q {q}"
                );
            }
        }
    }

    #[test]
    fn fp_matches_ours_on_larger_graphs() {
        let g = gen::powerlaw_cluster(150, 5, 0.7, 4);
        let params = Params::new(2, 5).unwrap();
        let (ours, _) = kplex_core::enumerate_collect(&g, params, &AlgoConfig::ours());
        let mut sink = CollectSink::default();
        let stats = enumerate_fp(&g, params, &mut sink);
        assert_eq!(sink.into_sorted(), ours);
        // One task per seed graph, never more.
        assert_eq!(stats.subtasks, stats.seed_graphs);
    }

    #[test]
    fn fp_single_task_covers_two_hop_candidates() {
        // A graph with significant two-hop structure: FP has no S-subtasks,
        // so its subtask count equals its seed count, unlike ListPlex.
        let g = gen::gnp(40, 0.25, 9);
        let params = Params::new(3, 5).unwrap();
        let mut sink = CollectSink::default();
        let fp_stats = enumerate_fp(&g, params, &mut sink);
        let mut sink2 = CollectSink::default();
        let lp_stats = crate::listplex::enumerate_listplex(&g, params, &mut sink2);
        assert_eq!(sink.into_sorted(), sink2.into_sorted());
        assert!(fp_stats.subtasks <= lp_stats.subtasks);
    }
}
