//! # kplex-baselines
//!
//! From-scratch reimplementations of the two state-of-the-art baselines the
//! paper compares against — ListPlex [39] and FP [16] — plus a uniform
//! [`Algorithm`] handle over every variant used by the evaluation harness.

#![warn(missing_docs)]

pub mod algorithms;
pub mod d2k;
pub mod fp;
pub mod listplex;

pub use algorithms::Algorithm;
pub use d2k::{d2k_config, enumerate_d2k};
pub use fp::{enumerate_fp, enumerate_whole_seed, fp_config};
pub use listplex::{enumerate_listplex, listplex_config};
