//! # kplex-baselines
//!
//! From-scratch reimplementations of the two state-of-the-art baselines the
//! paper compares against — ListPlex [\[39\]](https://arxiv.org/abs/2202.08737)
//! and FP [\[16\]](https://arxiv.org/abs/2203.10760) — plus a uniform
//! [`Algorithm`] handle over every variant used by the evaluation harness.
//!
//! ```
//! use kplex_baselines::Algorithm;
//! use kplex_core::Params;
//! use kplex_graph::gen;
//!
//! // Independent implementations must return identical sorted result sets.
//! let g = gen::gnp(30, 0.3, 7);
//! let params = Params::new(2, 4).unwrap();
//! let (reference, _) = Algorithm::Ours.run_collect(&g, params);
//! for baseline in [Algorithm::ListPlex, Algorithm::Fp] {
//!     assert_eq!(baseline.run_collect(&g, params).0, reference);
//! }
//! ```

#![deny(missing_docs)]

pub mod algorithms;
pub mod d2k;
pub mod fp;
pub mod listplex;

pub use algorithms::Algorithm;
pub use d2k::{d2k_config, enumerate_d2k};
pub use fp::{enumerate_fp, enumerate_whole_seed, fp_config};
pub use listplex::{enumerate_listplex, listplex_config};
