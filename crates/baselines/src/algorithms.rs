//! A uniform handle over every algorithm in the paper's evaluation, used by
//! the CLI and the benchmark harness.

use crate::{
    d2k_config, enumerate_d2k, enumerate_fp, enumerate_listplex, fp_config, listplex_config,
};
use kplex_core::{enumerate, AlgoConfig, CollectSink, CountSink, Params, PlexSink, SearchStats};
use kplex_graph::{CsrGraph, VertexId};

/// Every named algorithm of Section 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's default algorithm.
    Ours,
    /// The Eq (4)–(6) branching variant.
    OursP,
    /// `Ours` without upper-bound pruning (Table 5).
    OursNoUb,
    /// `Ours` with FP's sorting upper bound (Table 5).
    OursFpUb,
    /// `Ours` without R1/R2 (Table 6).
    Basic,
    /// `Basic` plus Theorem 5.7 (Table 6).
    BasicR1,
    /// `Basic` plus Theorems 5.13–5.15 (Table 6).
    BasicR2,
    /// The ListPlex baseline [\[39\]](https://arxiv.org/abs/2202.08737).
    ListPlex,
    /// The FP baseline [\[16\]](https://arxiv.org/abs/2203.10760).
    Fp,
    /// The D2K baseline \[15].
    D2k,
    /// Pivot ablation: minimum-degree pivot without the saturation
    /// tie-break (extension; not a paper table).
    OursMinDegPivot,
    /// Pivot ablation: no pivot intelligence (extension).
    OursFirstPivot,
}

impl Algorithm {
    /// All algorithms, in the order the paper's tables list them.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::Fp,
        Algorithm::ListPlex,
        Algorithm::D2k,
        Algorithm::OursP,
        Algorithm::Ours,
        Algorithm::OursNoUb,
        Algorithm::OursFpUb,
        Algorithm::Basic,
        Algorithm::BasicR1,
        Algorithm::BasicR2,
        Algorithm::OursMinDegPivot,
        Algorithm::OursFirstPivot,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ours => "Ours",
            Algorithm::OursP => "Ours_P",
            Algorithm::OursNoUb => "Ours\\ub",
            Algorithm::OursFpUb => "Ours\\ub+fp",
            Algorithm::Basic => "Basic",
            Algorithm::BasicR1 => "Basic+R1",
            Algorithm::BasicR2 => "Basic+R2",
            Algorithm::ListPlex => "ListPlex",
            Algorithm::Fp => "FP",
            Algorithm::D2k => "D2K",
            Algorithm::OursMinDegPivot => "Ours\\satpivot",
            Algorithm::OursFirstPivot => "Ours\\pivot",
        }
    }

    /// Parses the CLI spelling (case-insensitive; `\` and `-` both accepted).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().replace('\\', "-").as_str() {
            "ours" => Some(Algorithm::Ours),
            "ours_p" | "ours-p" => Some(Algorithm::OursP),
            "ours-ub" => Some(Algorithm::OursNoUb),
            "ours-ub+fp" => Some(Algorithm::OursFpUb),
            "basic" => Some(Algorithm::Basic),
            "basic+r1" => Some(Algorithm::BasicR1),
            "basic+r2" => Some(Algorithm::BasicR2),
            "listplex" => Some(Algorithm::ListPlex),
            "fp" => Some(Algorithm::Fp),
            "d2k" => Some(Algorithm::D2k),
            "ours-satpivot" => Some(Algorithm::OursMinDegPivot),
            "ours-pivot" => Some(Algorithm::OursFirstPivot),
            _ => None,
        }
    }

    /// The engine configuration (FP also changes the task layout, handled by
    /// [`Algorithm::run`]).
    pub fn config(self) -> AlgoConfig {
        match self {
            Algorithm::Ours => AlgoConfig::ours(),
            Algorithm::OursP => AlgoConfig::ours_p(),
            Algorithm::OursNoUb => AlgoConfig::ours_no_ub(),
            Algorithm::OursFpUb => AlgoConfig::ours_fp_ub(),
            Algorithm::Basic => AlgoConfig::basic(),
            Algorithm::BasicR1 => AlgoConfig::basic_r1(),
            Algorithm::BasicR2 => AlgoConfig::basic_r2(),
            Algorithm::ListPlex => listplex_config(),
            Algorithm::Fp => fp_config(),
            Algorithm::D2k => d2k_config(),
            Algorithm::OursMinDegPivot => AlgoConfig::ours_min_degree_pivot(),
            Algorithm::OursFirstPivot => AlgoConfig::ours_first_pivot(),
        }
    }

    /// Runs the algorithm, streaming results into `sink`.
    pub fn run(self, g: &CsrGraph, params: Params, sink: &mut dyn PlexSink) -> SearchStats {
        match self {
            Algorithm::Fp => enumerate_fp(g, params, sink),
            Algorithm::D2k => enumerate_d2k(g, params, sink),
            Algorithm::ListPlex => enumerate_listplex(g, params, sink),
            other => enumerate(g, params, &other.config(), sink),
        }
    }

    /// Runs and counts results.
    pub fn run_count(self, g: &CsrGraph, params: Params) -> (u64, SearchStats) {
        let mut sink = CountSink::default();
        let stats = self.run(g, params, &mut sink);
        (sink.count, stats)
    }

    /// Runs and collects results in canonical order.
    pub fn run_collect(self, g: &CsrGraph, params: Params) -> (Vec<Vec<VertexId>>, SearchStats) {
        let mut sink = CollectSink::default();
        let stats = self.run(g, params, &mut sink);
        (sink.into_sorted(), stats)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_graph::gen;

    #[test]
    fn parse_roundtrips_names() {
        for a in Algorithm::ALL {
            let spelled = a.name();
            assert_eq!(Algorithm::parse(spelled), Some(a), "{spelled}");
        }
        assert_eq!(Algorithm::parse("fp"), Some(Algorithm::Fp));
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn every_algorithm_agrees_on_counts() {
        let g = gen::gnp(22, 0.45, 7);
        let params = Params::new(2, 4).unwrap();
        let (reference, _) = Algorithm::Ours.run_collect(&g, params);
        for a in Algorithm::ALL {
            let (got, _) = a.run_collect(&g, params);
            assert_eq!(got, reference, "{a} diverged");
        }
    }
}
