//! Criterion bench for Table 4: parallel FP vs ListPlex vs Ours on one
//! large stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplex_baselines::Algorithm;
use kplex_bench::load;
use kplex_core::Params;
use kplex_parallel::{par_enumerate_count, EngineOptions};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = load("enwiki-2021");
    let params = Params::new(2, 13).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut group = c.benchmark_group(format!("table4/enwiki-2021-k2-q13-{threads}thr"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for algo in [Algorithm::Fp, Algorithm::ListPlex, Algorithm::Ours] {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            let mut opts = EngineOptions::with_threads(threads);
            match a {
                Algorithm::Fp => {
                    opts.serial_construction = true;
                    opts.single_task_per_seed = true;
                    opts.timeout = None;
                }
                Algorithm::ListPlex => opts.timeout = None,
                _ => opts.timeout = Some(Duration::from_micros(100)),
            }
            b.iter(|| par_enumerate_count(&g, params, &a.config(), &opts).0)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
