//! Criterion bench for Table 3: sequential FP vs ListPlex vs Ours_P vs Ours.
//! Uses two representative cells so `cargo bench` stays bounded; the full
//! grid is produced by `repro table3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplex_baselines::Algorithm;
use kplex_bench::load;
use kplex_core::{CountSink, Params};

fn bench(c: &mut Criterion) {
    let cells = [("lastfm", 4usize, 9usize), ("wiki-vote", 3, 9)];
    for (ds, k, q) in cells {
        let g = load(ds);
        let params = Params::new(k, q).unwrap();
        let mut group = c.benchmark_group(format!("table3/{ds}-k{k}-q{q}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));
        for algo in [
            Algorithm::Fp,
            Algorithm::ListPlex,
            Algorithm::OursP,
            Algorithm::Ours,
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
                b.iter(|| {
                    let mut sink = CountSink::default();
                    a.run(&g, params, &mut sink);
                    sink.count
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
