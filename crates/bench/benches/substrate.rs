//! Micro-benchmarks of the graph substrate: core decomposition, bitset
//! intersection counting, and seed-subgraph construction — the per-seed
//! costs that Section 5's complexity analysis bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use kplex_core::{AlgoConfig, Params, SeedBuilder};
use kplex_graph::{core_decomposition, gen, BitSet};

fn bench(c: &mut Criterion) {
    let g = gen::powerlaw_cluster(20_000, 8, 0.4, 99);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("core_decomposition_20k", |b| {
        b.iter(|| core_decomposition(&g).degeneracy)
    });

    group.bench_function("bitset_intersection_4096", |b| {
        let mut x = BitSet::new(4096);
        let mut y = BitSet::new(4096);
        for i in (0..4096).step_by(3) {
            x.insert(i);
        }
        for i in (0..4096).step_by(7) {
            y.insert(i);
        }
        b.iter(|| x.intersection_count(&y))
    });

    group.bench_function("seed_graphs_20k", |b| {
        let params = Params::new(3, 10).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        b.iter(|| {
            let mut builder = SeedBuilder::new(g.num_vertices());
            let mut built = 0usize;
            for &sv in decomp.order.iter() {
                if builder.build(&g, &decomp, sv, params, &cfg).is_some() {
                    built += 1;
                }
            }
            built
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
