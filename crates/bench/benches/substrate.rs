//! Micro-benchmarks of the graph substrate: core decomposition, bitset
//! intersection counting, seed-subgraph construction — the per-seed costs
//! that Section 5's complexity analysis bounds — plus the branch-kernel
//! head-to-head (arena kernel vs the legacy clone-based kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use kplex_core::enumerate::prepare;
use kplex_core::{
    collect_subtasks, AlgoConfig, CountSink, PairMatrix, Params, RefSearcher, SearchStats,
    Searcher, SeedBuilder,
};
use kplex_graph::{core_decomposition, gen, BitSet, GraphStore};

fn bench(c: &mut Criterion) {
    let g = gen::powerlaw_cluster(20_000, 8, 0.4, 99);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("core_decomposition_20k", |b| {
        b.iter(|| core_decomposition(&g).degeneracy)
    });

    group.bench_function("bitset_intersection_4096", |b| {
        let mut x = BitSet::new(4096);
        let mut y = BitSet::new(4096);
        for i in (0..4096).step_by(3) {
            x.insert(i);
        }
        for i in (0..4096).step_by(7) {
            y.insert(i);
        }
        b.iter(|| x.intersection_count(&y))
    });

    group.bench_function("seed_graphs_20k", |b| {
        let params = Params::new(3, 10).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        b.iter(|| {
            let mut builder = SeedBuilder::new(g.num_vertices());
            let mut built = 0usize;
            for &sv in decomp.order.iter() {
                if builder.build(&g, &decomp, sv, params, &cfg).is_some() {
                    built += 1;
                }
            }
            built
        })
    });

    // Branch-kernel head-to-head on one branchy seed graph: the arena
    // kernel (production) vs the legacy clone-based kernel. Both walk a
    // byte-identical tree (asserted by tests/kernel_equivalence.rs), so the
    // delta is pure per-branch overhead: Vec clones + per-vertex tighten
    // vs arena segments + word-parallel tighten.
    {
        let gb = gen::powerlaw_cluster(400, 8, 0.6, 42);
        let params = Params::new(3, 6).unwrap();
        let cfg = AlgoConfig::ours();
        let prep = prepare(&gb, params);
        let mut builder = SeedBuilder::new(prep.graph.num_vertices());
        let seed = prep
            .decomp
            .order
            .iter()
            .filter_map(|&sv| builder.build(&prep.graph, &prep.decomp, sv, params, &cfg))
            .max_by_key(|s| s.len())
            .expect("instance builds");
        let pairs = PairMatrix::build(&seed, params);
        let mut stats = SearchStats::default();
        let tasks = collect_subtasks(&seed, params, &cfg, Some(&pairs), &mut stats);
        group.bench_function("branch_kernel_arena", |b| {
            let mut searcher = Searcher::new(&seed, params, &cfg, Some(&pairs));
            b.iter(|| {
                let mut sink = CountSink::default();
                for t in &tasks {
                    searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
                }
                sink.count
            })
        });
        group.bench_function("branch_kernel_legacy", |b| {
            let mut searcher = RefSearcher::new(&seed, params, &cfg, Some(&pairs));
            b.iter(|| {
                let mut sink = CountSink::default();
                for t in &tasks {
                    searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
                }
                sink.count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
