//! Criterion bench for Table 5: upper-bound ablation (Ours\ub, Ours\ub+fp,
//! Ours) on a hard cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplex_baselines::Algorithm;
use kplex_bench::load;
use kplex_core::{CountSink, Params};

fn bench(c: &mut Criterion) {
    let g = load("wiki-vote");
    let params = Params::new(4, 11).unwrap();
    let mut group = c.benchmark_group("table5/wiki-vote-k4-q11");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for algo in [Algorithm::OursNoUb, Algorithm::OursFpUb, Algorithm::Ours] {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            b.iter(|| {
                let mut sink = CountSink::default();
                a.run(&g, params, &mut sink);
                sink.count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
