//! Criterion bench for Figure 7: running time vs q for the three algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplex_baselines::Algorithm;
use kplex_bench::load;
use kplex_core::{CountSink, Params};

fn bench(c: &mut Criterion) {
    let g = load("wiki-vote");
    for algo in [Algorithm::Fp, Algorithm::ListPlex, Algorithm::Ours] {
        let mut group = c.benchmark_group(format!("fig7/wiki-vote-k3/{}", algo.name()));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));
        for q in [9usize, 11, 13] {
            let params = Params::new(3, q).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
                b.iter(|| {
                    let mut sink = CountSink::default();
                    algo.run(&g, params, &mut sink);
                    sink.count
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
