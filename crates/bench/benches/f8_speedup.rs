//! Criterion bench for Figure 8: parallel Ours across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplex_baselines::Algorithm;
use kplex_bench::load;
use kplex_core::Params;
use kplex_parallel::{par_enumerate_count, EngineOptions};

fn bench(c: &mut Criterion) {
    let g = load("enwiki-2021");
    let params = Params::new(2, 13).unwrap();
    let mut group = c.benchmark_group("fig8/enwiki-2021-k2-q13");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for t in kplex_bench::experiments::thread_counts() {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let opts = EngineOptions::with_threads(t);
            b.iter(|| par_enumerate_count(&g, params, &Algorithm::Ours.config(), &opts).0)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
