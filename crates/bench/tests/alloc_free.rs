//! Proof that the arena branch kernel's steady-state include/exclude loop is
//! allocation-free: with [`PeakAlloc`] installed as the global allocator,
//! re-running a warmed searcher over the same task performs **zero**
//! allocation events, while the legacy clone-based kernel allocates on every
//! branch.

use kplex_bench::peak_alloc::PeakAlloc;
use kplex_core::enumerate::prepare;
use kplex_core::{
    collect_subtasks, AlgoConfig, CountSink, PairMatrix, Params, RefSearcher, SavedTask,
    SearchStats, Searcher, SeedBuilder, SeedGraph,
};
use kplex_graph::{gen, GraphStore};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Builds a branchy seed graph plus its sub-tasks.
fn branchy_instance(params: Params, cfg: &AlgoConfig) -> Option<(SeedGraph, Vec<SavedTask>)> {
    let g = gen::powerlaw_cluster(400, 8, 0.6, 42);
    let prep = prepare(&g, params);
    let mut builder = SeedBuilder::new(prep.graph.num_vertices());
    let mut best: Option<SeedGraph> = None;
    for &sv in &prep.decomp.order {
        if let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) {
            if best.as_ref().is_none_or(|b| seed.len() > b.len()) {
                best = Some(seed);
            }
        }
    }
    let seed = best?;
    let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
    let mut stats = SearchStats::default();
    let tasks = collect_subtasks(&seed, params, cfg, pairs.as_ref(), &mut stats);
    Some((seed, tasks))
}

#[test]
fn steady_state_branching_allocates_nothing() {
    let params = Params::new(3, 6).unwrap();
    let cfg = AlgoConfig::ours();
    let (seed, tasks) = branchy_instance(params, &cfg).expect("instance builds");
    let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
    let mut searcher = Searcher::new(&seed, params, &cfg, pairs.as_ref());
    let mut sink = CountSink::default();

    // Warm-up run: the arenas grow to the task's high-water mark here.
    for t in &tasks {
        searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
    }
    let branches_per_run = searcher.stats.branch_calls;
    assert!(
        branches_per_run > 100,
        "instance too shallow to prove anything: {branches_per_run} branches"
    );

    // Measured run: identical work, arenas already sized — the include /
    // exclude / multiway recursion must not touch the heap at all.
    let before = PeakAlloc::alloc_calls();
    for t in &tasks {
        searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
    }
    let allocs = PeakAlloc::alloc_calls() - before;
    assert_eq!(
        allocs, 0,
        "steady-state branch loop allocated {allocs} times over {branches_per_run} branches"
    );
}

#[test]
fn legacy_kernel_allocates_per_branch() {
    // The contrast cell: same instance, clone-based reference kernel. This
    // is the churn the arena rewrite removed, so it must stay visible here.
    let params = Params::new(3, 6).unwrap();
    let cfg = AlgoConfig::ours();
    let (seed, tasks) = branchy_instance(params, &cfg).expect("instance builds");
    let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
    let mut legacy = RefSearcher::new(&seed, params, &cfg, pairs.as_ref());
    let mut sink = CountSink::default();
    for t in &tasks {
        legacy.run_task(t.p(), t.c(), t.x(), &mut sink);
    }
    let before = PeakAlloc::alloc_calls();
    for t in &tasks {
        legacy.run_task(t.p(), t.c(), t.x(), &mut sink);
    }
    let allocs = PeakAlloc::alloc_calls() - before;
    assert!(
        allocs as u64 >= legacy.stats.branch_calls / 4,
        "expected the clone-based kernel to allocate roughly per branch \
         ({allocs} allocations, {} branches total)",
        legacy.stats.branch_calls
    );
}

#[test]
fn saves_allocate_once_per_task() {
    // With a 0ns budget every recursion defers: each deferred branch must
    // cost exactly one allocation (the packed SavedTask buffer), plus the
    // amortised growth of the `saved` vector itself.
    let params = Params::new(3, 6).unwrap();
    let cfg = AlgoConfig::ours();
    let (seed, tasks) = branchy_instance(params, &cfg).expect("instance builds");
    let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
    let mut searcher = Searcher::new(&seed, params, &cfg, pairs.as_ref());
    let mut sink = CountSink::default();
    // Warm up without a budget, then arm 0ns and re-run.
    for t in &tasks {
        searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
    }
    searcher.set_time_budget(Some(std::time::Duration::from_nanos(0)));
    let mut saves = 0usize;
    let before = PeakAlloc::alloc_calls();
    for t in &tasks {
        searcher.run_task(t.p(), t.c(), t.x(), &mut sink);
        saves += searcher.take_saved().len();
    }
    let allocs = PeakAlloc::alloc_calls() - before;
    assert!(saves > 0, "0ns budget must defer branches");
    // One buffer per save + take_saved handing out fresh vectors + O(log)
    // growth of `saved`; 3·saves is a safe ceiling that still rules out the
    // legacy per-branch churn (which also cloned on non-deferred branches).
    assert!(
        allocs <= 3 * saves + 64,
        "save path allocated {allocs} times for {saves} deferred branches"
    );
}
