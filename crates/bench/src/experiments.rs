//! Experiment specifications: which (dataset, k, q) cells each table and
//! figure of the paper evaluates, translated to the stand-in scale.
//!
//! The paper's size thresholds (q = 12 / 20 / 30 on graphs whose communities
//! reach size ~30+) map to q = 9 / 11 / 13 on the stand-ins, whose planted
//! communities top out around 21 vertices. The (dataset, k) combinations
//! mirror the rows of the corresponding paper tables.

/// One sequential measurement cell.
#[derive(Clone, Copy, Debug)]
pub struct SeqSetting {
    /// Dataset name in the registry.
    pub dataset: &'static str,
    /// Plex slack k.
    pub k: usize,
    /// Size threshold q.
    pub q: usize,
}

impl SeqSetting {
    const fn new(dataset: &'static str, k: usize, q: usize) -> Self {
        Self { dataset, k, q }
    }
}

/// Table 3: sequential comparison on small + medium graphs. Mirrors the
/// paper's rows (same datasets, q scaled 12→9, 20→11, 30→13; as-skitter uses
/// its high-q regime: 60→18/24 (heavy), and 100→50 where q exceeds D + k,
/// the (q-k)-core is empty and — exactly like the paper's q = 100 rows —
/// every algorithm returns zero results almost instantly).
pub fn table3() -> Vec<SeqSetting> {
    vec![
        SeqSetting::new("jazz", 4, 11),
        SeqSetting::new("lastfm", 4, 9),
        SeqSetting::new("as-caida", 2, 9),
        SeqSetting::new("as-caida", 3, 9),
        SeqSetting::new("as-caida", 4, 9),
        SeqSetting::new("wiki-vote", 2, 9),
        SeqSetting::new("wiki-vote", 2, 11),
        SeqSetting::new("wiki-vote", 3, 9),
        SeqSetting::new("wiki-vote", 3, 11),
        SeqSetting::new("wiki-vote", 4, 11),
        SeqSetting::new("wiki-vote", 4, 13),
        SeqSetting::new("amazon0505", 2, 9),
        SeqSetting::new("amazon0505", 3, 9),
        SeqSetting::new("amazon0505", 4, 9),
        SeqSetting::new("as-skitter", 2, 18),
        SeqSetting::new("as-skitter", 2, 20),
        SeqSetting::new("as-skitter", 2, 50),
        SeqSetting::new("as-skitter", 3, 24),
        SeqSetting::new("as-skitter", 3, 50),
        SeqSetting::new("email-euall", 2, 9),
        SeqSetting::new("email-euall", 3, 9),
        SeqSetting::new("email-euall", 3, 11),
        SeqSetting::new("email-euall", 4, 9),
        SeqSetting::new("email-euall", 4, 11),
        SeqSetting::new("com-dblp", 2, 9),
        SeqSetting::new("com-dblp", 2, 11),
        SeqSetting::new("com-dblp", 3, 9),
        SeqSetting::new("com-dblp", 3, 11),
        SeqSetting::new("com-dblp", 4, 9),
        SeqSetting::new("com-dblp", 4, 11),
        SeqSetting::new("soc-epinions", 2, 9),
        SeqSetting::new("soc-epinions", 2, 11),
        SeqSetting::new("soc-epinions", 3, 11),
        SeqSetting::new("soc-epinions", 3, 13),
        SeqSetting::new("soc-epinions", 4, 13),
        SeqSetting::new("soc-slashdot", 2, 9),
        SeqSetting::new("soc-slashdot", 2, 11),
        SeqSetting::new("soc-slashdot", 3, 9),
        SeqSetting::new("soc-slashdot", 3, 11),
        SeqSetting::new("soc-slashdot", 4, 13),
        SeqSetting::new("soc-pokec", 2, 9),
        SeqSetting::new("soc-pokec", 2, 11),
        SeqSetting::new("soc-pokec", 2, 13),
        SeqSetting::new("soc-pokec", 3, 9),
        SeqSetting::new("soc-pokec", 3, 11),
        SeqSetting::new("soc-pokec", 3, 13),
        SeqSetting::new("soc-pokec", 4, 11),
    ]
}

/// Tables 5 and 6: ablation cells. The paper runs its ablations on the
/// settings where branching dominates (large sub-task counts); the scaled
/// equivalents are the dense small graphs at high k with q just above the
/// organic plex sizes. The paper's four ablation datasets are kept, plus
/// the two stand-ins (jazz, as-skitter) whose dense cores expose the
/// upper-bound and pair-rule effects most strongly.
pub fn ablation() -> Vec<SeqSetting> {
    vec![
        SeqSetting::new("jazz", 4, 10),
        SeqSetting::new("jazz", 4, 11),
        SeqSetting::new("wiki-vote", 3, 9),
        SeqSetting::new("wiki-vote", 4, 9),
        SeqSetting::new("wiki-vote", 4, 11),
        SeqSetting::new("as-skitter", 2, 20),
        SeqSetting::new("soc-epinions", 3, 9),
        SeqSetting::new("soc-epinions", 4, 10),
        SeqSetting::new("email-euall", 4, 9),
        SeqSetting::new("soc-pokec", 3, 9),
        SeqSetting::new("soc-pokec", 4, 10),
    ]
}

/// A q-sweep series (Figures 7, 9, 14, 15).
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Dataset name.
    pub dataset: &'static str,
    /// Plex slack k.
    pub k: usize,
    /// The q values on the x axis.
    pub qs: Vec<usize>,
}

/// Figure 7 (and the Figure 14 extension): time vs q for the three
/// algorithms. The paper sweeps q = 12..20 (k=3) and 20..30 (k=4); scaled
/// here to 9..13 and 10..14.
pub fn fig7() -> Vec<Sweep> {
    let lo: Vec<usize> = vec![9, 10, 11, 12, 13];
    let hi: Vec<usize> = vec![10, 11, 12, 13, 14];
    vec![
        Sweep {
            dataset: "wiki-vote",
            k: 3,
            qs: lo.clone(),
        },
        Sweep {
            dataset: "wiki-vote",
            k: 4,
            qs: hi.clone(),
        },
        Sweep {
            dataset: "soc-pokec",
            k: 3,
            qs: lo.clone(),
        },
        Sweep {
            dataset: "soc-pokec",
            k: 4,
            qs: hi.clone(),
        },
        // Figure 14 (appendix) additions:
        Sweep {
            dataset: "soc-epinions",
            k: 2,
            qs: lo.clone(),
        },
        Sweep {
            dataset: "soc-epinions",
            k: 3,
            qs: hi.clone(),
        },
        Sweep {
            dataset: "email-euall",
            k: 3,
            qs: lo,
        },
        Sweep {
            dataset: "email-euall",
            k: 4,
            qs: hi,
        },
    ]
}

/// Figure 9 (and Figure 15): Basic vs Ours over the same sweeps.
pub fn fig9() -> Vec<Sweep> {
    fig7()
}

/// Table 4 / Figures 8 and 13: the large-graph parallel settings (k = 2, 3
/// per dataset, with q chosen so that runs are long enough to parallelise
/// yet bounded; R-MAT stand-ins omitted — see note in DESIGN.md).
pub fn table4() -> Vec<SeqSetting> {
    vec![
        SeqSetting::new("enwiki-2021", 2, 12),
        SeqSetting::new("enwiki-2021", 3, 13),
        SeqSetting::new("it-2004", 2, 13),
        SeqSetting::new("it-2004", 3, 14),
    ]
}

/// Table 7 (Appendix B.2): memory-measurement settings.
pub fn table7() -> Vec<SeqSetting> {
    vec![
        SeqSetting::new("wiki-vote", 4, 11),
        SeqSetting::new("soc-epinions", 4, 13),
        SeqSetting::new("email-euall", 4, 9),
        SeqSetting::new("soc-pokec", 4, 11),
    ]
}

/// The τ_time sweep of Figure 13, in microseconds (the paper sweeps
/// 10^-3..10^2 ms, i.e. 1 µs .. 100 ms).
pub fn tau_sweep_us() -> Vec<u64> {
    vec![1, 100, 10_000, 100_000]
}

/// Thread counts for the Figure 8 speedup plot, capped to the host.
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max.max(2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_settings_reference_known_datasets() {
        for s in table3()
            .iter()
            .chain(ablation().iter())
            .chain(table4().iter())
        {
            assert!(
                kplex_datasets::by_name(s.dataset).is_some(),
                "unknown dataset {}",
                s.dataset
            );
            assert!(s.q >= 2 * s.k - 1, "invalid (k,q) for {}", s.dataset);
        }
        for sweep in fig7() {
            assert!(kplex_datasets::by_name(sweep.dataset).is_some());
            for q in &sweep.qs {
                assert!(*q >= 2 * sweep.k - 1);
            }
        }
    }

    #[test]
    fn table4_uses_only_large_datasets() {
        use kplex_datasets::DatasetClass;
        for s in table4() {
            let d = kplex_datasets::by_name(s.dataset).unwrap();
            assert_eq!(d.class, DatasetClass::Large, "{}", s.dataset);
        }
    }

    #[test]
    fn thread_counts_start_at_one() {
        let t = thread_counts();
        assert_eq!(t[0], 1);
        assert!(t.len() >= 2);
    }
}
