//! Markdown table rendering and result persistence for the `repro` harness.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A markdown table under construction.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &width));
        let mut sep = String::from("|");
        for w in &width {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &width));
        }
        out
    }
}

/// Formats a duration in seconds with adaptive precision, like the paper's
/// tables (two decimals above 0.1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 0.01 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats a ratio as `x.xx×`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats bytes as MiB with two decimals (Table 7 units).
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Directory where the harness writes its artifacts (`results/` by default,
/// overridable via `KPLEX_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("KPLEX_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes an artifact (markdown fragment) to `results/<id>.md` and echoes it
/// to stdout.
pub fn publish(id: &str, title: &str, body: &str) {
    println!("\n## {title}\n");
    println!("{body}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.md"));
        let content = format!("## {title}\n\n{body}");
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(&["name", "time"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let md = t.render();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(123.456), "123.5");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.00123), "0.0012");
        assert_eq!(fmt_ratio(2.5), "2.50x");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
    }
}
