//! # kplex-bench
//!
//! Benchmark harness for the reproduction: experiment specifications for
//! every table and figure of the paper's Section 7 / Appendix B, a
//! peak-memory tracking allocator (Table 7), markdown reporting, and the
//! `repro` binary that regenerates each artifact.
//!
//! Criterion micro-benchmarks live under `benches/`, one per table/figure;
//! the statistical benches use reduced cells so `cargo bench` stays bounded,
//! while `repro` runs the full grids once (wall-clock, like the paper).

#![deny(missing_docs)]

pub mod experiments;
pub mod peak_alloc;
pub mod report;

use kplex_baselines::Algorithm;
use kplex_core::Params;
use kplex_graph::CsrGraph;
use std::time::Instant;

/// Runs an algorithm once, returning (seconds, result count).
pub fn time_algorithm(algo: Algorithm, g: &CsrGraph, k: usize, q: usize) -> (f64, u64) {
    let params = Params::new(k, q).expect("valid experiment parameters");
    let start = Instant::now();
    let (count, _) = algo.run_count(g, params);
    (start.elapsed().as_secs_f64(), count)
}

/// Loads a registry dataset by name (panicking on unknown names — the specs
/// are validated by tests).
pub fn load(dataset: &str) -> CsrGraph {
    kplex_datasets::by_name(dataset)
        .unwrap_or_else(|| panic!("unknown dataset {dataset}"))
        .load()
}
