//! A counting global allocator: peak tracking for the memory comparison of
//! Appendix B.2 (Table 7), plus an allocation-event counter used to prove
//! the branch kernel's steady-state loop is allocation-free
//! (`tests/alloc_free.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

/// Wraps the system allocator, tracking live bytes, the high-water mark,
/// and the number of allocation events (alloc + growing realloc).
pub struct PeakAlloc;

// SAFETY: delegates to `System` for all allocation; only adds counters.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            // ordering: independent event counter, read only as a gauge.
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            // ordering: RMW coherence keeps the byte count itself exact.
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            // ordering: cross-thread high-water mark is approximate by design.
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        // ordering: RMW coherence keeps the byte count itself exact.
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                // ordering: independent event counter, read only as a gauge.
                ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
                // ordering: RMW coherence keeps the byte count itself exact.
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                // ordering: cross-thread high-water mark is approximate by design.
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                // ordering: RMW coherence keeps the byte count itself exact.
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

impl PeakAlloc {
    /// Bytes currently allocated.
    pub fn current_bytes() -> usize {
        // ordering: point-in-time gauge; callers quiesce before reading.
        CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes() -> usize {
        // ordering: point-in-time gauge; callers quiesce before reading.
        PEAK.load(Ordering::Relaxed)
    }

    /// Restarts peak tracking from the current live set.
    pub fn reset_peak() {
        // ordering: gauges; reset races with live allocations by design.
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total allocation events (alloc + growing realloc) since process
    /// start. Diff two readings to count the allocations of a code region.
    pub fn alloc_calls() -> usize {
        // ordering: point-in-time gauge; callers quiesce before reading.
        ALLOC_CALLS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the test binary does not install PeakAlloc as the global
    // allocator, so the counters only move if it is installed. These tests
    // exercise the API surface directly through GlobalAlloc.
    #[test]
    fn alloc_dealloc_counters_balance() {
        let a = PeakAlloc;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = PeakAlloc::current_bytes();
        PeakAlloc::reset_peak();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(PeakAlloc::current_bytes() >= before + 4096);
            assert!(PeakAlloc::peak_bytes() >= before + 4096);
            a.dealloc(p, layout);
        }
        assert_eq!(PeakAlloc::current_bytes(), before);
    }

    #[test]
    fn realloc_tracks_growth() {
        let a = PeakAlloc;
        let layout = Layout::from_size_align(1024, 8).unwrap();
        PeakAlloc::reset_peak();
        unsafe {
            let p = a.alloc(layout);
            let p2 = a.realloc(p, layout, 8192);
            assert!(!p2.is_null());
            let grown = Layout::from_size_align(8192, 8).unwrap();
            a.dealloc(p2, grown);
        }
        assert!(PeakAlloc::peak_bytes() >= 8192);
    }
}
