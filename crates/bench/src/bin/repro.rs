//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `repro [--threads N] <experiment>` where experiment is one of
//! `table2 table3 table4 table5 table6 table7 fig7 fig8 fig9 fig13 all`,
//! or `bench-smoke` for the CI perf-snapshot job (writes `BENCH_3.json`,
//! the storage-substrate snapshot `BENCH_4.json`, and the scheduler
//! thread-sweep snapshot `BENCH_5.json`).
//!
//! Each experiment prints a markdown artifact and stores it under
//! `results/<id>.md`. Absolute numbers are from the synthetic stand-in
//! datasets (see DESIGN.md §3); what is compared against the paper is the
//! *shape*: who wins, by what factor, and where the crossovers fall.

use kplex_baselines::Algorithm;
use kplex_bench::experiments::{self, SeqSetting, Sweep};
use kplex_bench::peak_alloc::PeakAlloc;
use kplex_bench::report::{fmt_mib, fmt_ratio, fmt_secs, publish, Table};
use kplex_bench::{load, time_algorithm};
use kplex_core::Params;
use kplex_graph::GraphStore;
use kplex_parallel::{par_enumerate_count, EngineOptions};
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` caps the worker count of every parallel experiment
    // (default: all hardware threads); accepted anywhere on the line.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("error: --threads requires a positive integer");
                std::process::exit(2);
            });
        THREAD_OVERRIDE.set(n).expect("parsed once");
        args.drain(i..=i + 1);
    }
    let what = args.first().map(String::as_str).unwrap_or("help");
    let t0 = Instant::now();
    match what {
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "table6" => table6(),
        "table7" => table7(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig13" => fig13(),
        "pivot" => pivot_ablation(),
        "ctcp" => ctcp_ablation(),
        "bench-smoke" => bench_smoke(args.get(1).map(String::as_str)),
        "all" => {
            table2();
            table3();
            fig7();
            table4();
            fig8();
            fig13();
            table5();
            table6();
            fig9();
            table7();
            pivot_ablation();
            ctcp_ablation();
        }
        _ => {
            eprintln!(
                "usage: repro [--threads N] \
                 <table2|table3|table4|table5|table6|table7|fig7|fig8|fig9|fig13|pivot|ctcp|bench-smoke|all>"
            );
            std::process::exit(2);
        }
    }
    eprintln!("\n[repro] finished in {:.1}s", t0.elapsed().as_secs_f64());
}

// --- bench-smoke: the CI perf snapshot --------------------------------------

/// Runs the two representative `t3_sequential` cells a handful of times and
/// writes the medians to `BENCH_3.json` (or to `path` when given). CI uploads
/// the file as an artifact so the perf trajectory has one data point per
/// merge; the committed copy records the pre/post medians of the seed
/// builder's pre-matrix common-neighbour gate (see also `BENCH_2.json` for
/// the PR 2 branch-kernel swap).
fn bench_smoke(path: Option<&str>) {
    const RUNS: usize = 5;
    let cells = [("lastfm", 4usize, 9usize), ("wiki-vote", 3, 9)];
    let mut entries = Vec::new();
    for (ds, k, q) in cells {
        let g = load(ds);
        let mut times = Vec::with_capacity(RUNS);
        let mut count = 0u64;
        for _ in 0..RUNS {
            let (secs, c) = kplex_bench::time_algorithm(Algorithm::Ours, &g, k, q);
            times.push(secs);
            count = c;
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = times[RUNS / 2];
        eprintln!(
            "[bench-smoke] {ds} k={k} q={q}: median {}s over {RUNS} runs",
            fmt_secs(median)
        );
        entries.push(format!(
            "    {{\"dataset\": \"{ds}\", \"k\": {k}, \"q\": {q}, \"algo\": \"Ours\", \
             \"runs\": {RUNS}, \"median_s\": {median:.6}, \"plexes\": {count}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"t3_sequential/bench-smoke\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let out = path.unwrap_or("BENCH_3.json");
    std::fs::write(out, &json).expect("write bench snapshot");
    println!("{json}");
    eprintln!("[bench-smoke] wrote {out}");
    store_smoke();
}

/// The storage-substrate snapshot: the wiki-vote (3, 9) cell enumerated
/// through each [`kplex_graph::GraphStore`] backend, recording the
/// enumeration wall-clock and the allocator high-water mark with the store
/// resident. Written to `BENCH_4.json`, uploaded by CI next to
/// `BENCH_3.json`.
///
/// The `.kpx` conversion for the mmap run happens up front, unmeasured —
/// that is `kplex convert`'s one-off job in a deployment. Each store is
/// built (and the source CSR dropped) *before* the peak counter resets, so
/// the recorded peak is the cost of serving enumeration from that backend:
/// resident store bytes plus the search's working set. Mapped `.kpx` pages
/// live in the kernel page cache, not on this heap, which is exactly the
/// out-of-core story being measured.
fn store_smoke() {
    use kplex_graph::{StoreBackend, StoreKind};
    const RUNS: usize = 3;
    let (ds, k, q) = ("wiki-vote", 3usize, 9usize);
    let params = Params::new(k, q).expect("valid parameters");
    let cfg = kplex_core::AlgoConfig::ours();
    let kpx = kplex_datasets::by_name(ds)
        .expect("registry dataset")
        .ensure_kpx()
        .expect("convert to .kpx");

    let mut entries = Vec::new();
    let mut medians = Vec::new();
    let mut peaks = Vec::new();
    for kind in [StoreKind::Csr, StoreKind::Compressed, StoreKind::Mmap] {
        let store = match kind {
            StoreKind::Mmap => StoreBackend::open_mmap(&kpx).expect("open converted .kpx"),
            _ => StoreBackend::from_graph(load(ds), kind),
        };
        PeakAlloc::reset_peak();
        let mut times = Vec::with_capacity(RUNS);
        let mut count = 0u64;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let (c, _) = kplex_core::enumerate_count(&store, params, &cfg);
            times.push(t0.elapsed().as_secs_f64());
            count = c;
        }
        let peak = PeakAlloc::peak_bytes();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = times[RUNS / 2];
        eprintln!(
            "[bench-smoke] {ds} k={k} q={q} store={}: median {}s, peak {} over {RUNS} runs",
            kind.label(),
            fmt_secs(median),
            fmt_mib(peak),
        );
        entries.push(format!(
            "    {{\"dataset\": \"{ds}\", \"k\": {k}, \"q\": {q}, \"store\": \"{}\", \
             \"runs\": {RUNS}, \"median_s\": {median:.6}, \"plexes\": {count}, \
             \"peak_bytes\": {peak}, \"store_bytes\": {}}}",
            kind.label(),
            store.resident_bytes(),
        ));
        medians.push(median);
        peaks.push(peak);
    }
    // The headline ratios: mmap should enumerate within a small factor of
    // CSR while holding a fraction of its heap.
    eprintln!(
        "[bench-smoke] store ratios vs csr: compressed {} peak / {} time, mmap {} peak / {} time",
        fmt_ratio(peaks[1] as f64 / peaks[0] as f64),
        fmt_ratio(medians[1] / medians[0]),
        fmt_ratio(peaks[2] as f64 / peaks[0] as f64),
        fmt_ratio(medians[2] / medians[0]),
    );
    let json = format!(
        "{{\n  \"bench\": \"store-substrate/bench-smoke\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_4.json", &json).expect("write store snapshot");
    println!("{json}");
    eprintln!("[bench-smoke] wrote BENCH_4.json");
    thread_sweep();
}

/// The scheduler thread-sweep snapshot: the wiki-vote (3, 9) cell run
/// through the work-stealing engine at 1/2/4/8 workers, recording median
/// wall-clock plus the per-configuration deltas of the engine's
/// steal/park counters ([`kplex_parallel::SchedMetrics`]). Written to `BENCH_5.json`,
/// uploaded by CI next to `BENCH_4.json`.
///
/// Two properties are asserted, not just recorded: every thread count
/// yields the identical plex count (the engine is exact under any
/// schedule), and parks balance unparks once the pool quiesces (nobody
/// sleeps past termination). Wall-clock *speedup* is recorded but not
/// asserted — it is a property of the host: the JSON carries
/// `host_threads` so a reader can tell a scheduler regression from a
/// one-core CI box, where all thread counts legitimately tie.
fn thread_sweep() {
    use kplex_parallel::SchedMetrics;
    use std::sync::Arc;
    const RUNS: usize = 3;
    let (ds, k, q) = ("wiki-vote", 3usize, 9usize);
    let params = Params::new(k, q).expect("valid parameters");
    let cfg = kplex_core::AlgoConfig::ours();
    let g = load(ds);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let metrics = Arc::new(SchedMetrics::default());
    let mut entries = Vec::new();
    let mut medians = Vec::new();
    let mut counts = Vec::new();
    for nthreads in [1usize, 2, 4, 8] {
        let mut opts = EngineOptions::with_threads(nthreads);
        opts.timeout = Some(Duration::from_micros(100));
        opts.metrics = Some(metrics.clone());
        let before = (
            metrics.steals(),
            metrics.injector_steals(),
            metrics.parks(),
            metrics.unparks(),
        );
        let mut times = Vec::with_capacity(RUNS);
        let mut count = 0u64;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let (c, _) = par_enumerate_count(&g, params, &cfg, &opts);
            times.push(t0.elapsed().as_secs_f64());
            count = c;
        }
        let (steals, inj, parks, unparks) = (
            metrics.steals() - before.0,
            metrics.injector_steals() - before.1,
            metrics.parks() - before.2,
            metrics.unparks() - before.3,
        );
        assert_eq!(
            parks, unparks,
            "{nthreads}-thread runs ended with a worker still parked"
        );
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = times[RUNS / 2];
        eprintln!(
            "[bench-smoke] {ds} k={k} q={q} threads={nthreads}: median {}s, \
             {steals} steals / {inj} injector steals / {parks} parks over {RUNS} runs",
            fmt_secs(median)
        );
        entries.push(format!(
            "    {{\"dataset\": \"{ds}\", \"k\": {k}, \"q\": {q}, \"threads\": {nthreads}, \
             \"runs\": {RUNS}, \"median_s\": {median:.6}, \"plexes\": {count}, \
             \"steals\": {steals}, \"injector_steals\": {inj}, \
             \"parks\": {parks}, \"unparks\": {unparks}}}"
        ));
        medians.push(median);
        counts.push(count);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "result counts diverged across thread counts: {counts:?}"
    );
    eprintln!(
        "[bench-smoke] thread sweep speedup vs 1 thread (host has {host}): \
         2thr {} 4thr {} 8thr {}",
        fmt_ratio(medians[0] / medians[1]),
        fmt_ratio(medians[0] / medians[2]),
        fmt_ratio(medians[0] / medians[3]),
    );
    let json = format!(
        "{{\n  \"bench\": \"sched-thread-sweep/bench-smoke\",\n  \
         \"host_threads\": {host},\n  \"cells\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_5.json", &json).expect("write sched snapshot");
    println!("{json}");
    eprintln!("[bench-smoke] wrote BENCH_5.json");
}

static THREAD_OVERRIDE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

fn threads() -> usize {
    *THREAD_OVERRIDE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
    })
}

// --- Table 2: dataset statistics -------------------------------------------

fn table2() {
    let mut t = Table::new(&[
        "network", "class", "paper n", "paper m", "paper Δ", "paper D", "ours n", "ours m",
        "ours Δ", "ours D",
    ]);
    for d in kplex_datasets::all_datasets() {
        let s = d.stats();
        t.row(vec![
            d.name.into(),
            format!("{:?}", d.class),
            d.paper.n.to_string(),
            d.paper.m.to_string(),
            d.paper.max_degree.to_string(),
            d.paper.degeneracy.to_string(),
            s.n.to_string(),
            s.m.to_string(),
            s.max_degree.to_string(),
            s.degeneracy.to_string(),
        ]);
    }
    publish(
        "table2",
        "Table 2 — datasets (paper originals vs synthetic stand-ins)",
        &t.render(),
    );
}

// --- Table 3: sequential comparison ----------------------------------------

fn seq_table(id: &str, title: &str, settings: &[SeqSetting], algos: &[Algorithm]) {
    let mut header: Vec<&str> = vec!["network", "k", "q", "#k-plexes"];
    let names: Vec<String> = algos.iter().map(|a| a.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    header.push("best");
    let mut t = Table::new(&header);
    for s in settings {
        let g = load(s.dataset);
        let mut counts = Vec::new();
        let mut times = Vec::new();
        for &a in algos {
            let (secs, count) = time_algorithm(a, &g, s.k, s.q);
            counts.push(count);
            times.push(secs);
            eprintln!(
                "[{id}] {} k={} q={} {}: {} plexes in {}s",
                s.dataset,
                s.k,
                s.q,
                a.name(),
                count,
                fmt_secs(secs)
            );
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "algorithms disagree on {} k={} q={}: {counts:?}",
            s.dataset,
            s.k,
            s.q
        );
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| algos[i].name().to_string())
            .unwrap_or_default();
        let mut row = vec![
            s.dataset.to_string(),
            s.k.to_string(),
            s.q.to_string(),
            counts[0].to_string(),
        ];
        row.extend(times.iter().map(|&x| fmt_secs(x)));
        row.push(best);
        t.row(row);
    }
    publish(id, title, &t.render());
}

fn table3() {
    seq_table(
        "table3",
        "Table 3 — sequential running time (s), small & medium graphs",
        &experiments::table3(),
        &[
            Algorithm::Fp,
            Algorithm::ListPlex,
            Algorithm::OursP,
            Algorithm::Ours,
        ],
    );
}

fn table5() {
    seq_table(
        "table5",
        "Table 5 — effect of the upper-bounding technique (s)",
        &experiments::ablation(),
        &[Algorithm::OursNoUb, Algorithm::OursFpUb, Algorithm::Ours],
    );
}

fn table6() {
    seq_table(
        "table6",
        "Table 6 — effect of pruning rules R1/R2 (s)",
        &experiments::ablation(),
        &[
            Algorithm::Basic,
            Algorithm::BasicR1,
            Algorithm::BasicR2,
            Algorithm::Ours,
        ],
    );
}

fn pivot_ablation() {
    // Extension: quantifies the paper's second contribution (the
    // saturation-maximising pivot rule) by downgrading only the pivot.
    seq_table(
        "pivot",
        "Extension — pivot-rule ablation (s): first-candidate vs min-degree vs saturation tie-break",
        &experiments::ablation(),
        &[Algorithm::OursFirstPivot, Algorithm::OursMinDegPivot, Algorithm::Ours],
    );
}

fn ctcp_ablation() {
    // Extension: CTCP global reduction (kPlexS [12]) ahead of the standard
    // (q-k)-core preprocessing.
    use kplex_core::{ctcp_reduce, enumerate_count, prepare, AlgoConfig, Params};
    let mut t = Table::new(&[
        "network",
        "k",
        "q",
        "core n/m",
        "ctcp n/m",
        "rounds",
        "enum (s)",
        "ctcp+enum (s)",
    ]);
    for s in experiments::ablation().iter().step_by(2) {
        let g = load(s.dataset);
        let params = Params::new(s.k, s.q).expect("valid");
        let prep = prepare(&g, params);
        let t0 = Instant::now();
        let (count_direct, _) = enumerate_count(&g, params, &AlgoConfig::ours());
        let secs_direct = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let red = ctcp_reduce(&g, params);
        let (count_ctcp, _) = enumerate_count(&red.graph, params, &AlgoConfig::ours());
        let secs_ctcp = t1.elapsed().as_secs_f64();
        assert_eq!(count_direct, count_ctcp, "CTCP changed the result count");
        t.row(vec![
            s.dataset.into(),
            s.k.to_string(),
            s.q.to_string(),
            format!("{}/{}", prep.graph.num_vertices(), prep.graph.num_edges()),
            format!("{}/{}", red.graph.num_vertices(), red.graph.num_edges()),
            red.rounds.to_string(),
            fmt_secs(secs_direct),
            fmt_secs(secs_ctcp),
        ]);
        eprintln!("[ctcp] {} k={} q={} done", s.dataset, s.k, s.q);
    }
    publish(
        "ctcp",
        "Extension — CTCP global reduction (kPlexS-style) vs plain core reduction",
        &t.render(),
    );
}

// --- figures 7 & 9: q sweeps -------------------------------------------------

fn sweep_figure(id: &str, title: &str, sweeps: &[Sweep], algos: &[Algorithm]) {
    let mut body = String::new();
    for sw in sweeps {
        let g = load(sw.dataset);
        let mut header: Vec<String> = vec!["q".into(), "#k-plexes".into()];
        header.extend(algos.iter().map(|a| format!("{} (s)", a.name())));
        let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
        for &q in &sw.qs {
            let mut row = vec![q.to_string()];
            let mut count0 = None;
            let mut cells = Vec::new();
            for &a in algos {
                let (secs, count) = time_algorithm(a, &g, sw.k, q);
                if let Some(c0) = count0 {
                    assert_eq!(c0, count, "{} disagrees at q={q}", a.name());
                } else {
                    count0 = Some(count);
                }
                cells.push(fmt_secs(secs));
            }
            row.push(count0.unwrap_or(0).to_string());
            row.extend(cells);
            t.row(row);
            eprintln!("[{id}] {} k={} q={q} done", sw.dataset, sw.k);
        }
        body.push_str(&format!(
            "\n### {} (k = {})\n\n{}",
            sw.dataset,
            sw.k,
            t.render()
        ));
    }
    publish(id, title, &body);
}

fn fig7() {
    sweep_figure(
        "fig7",
        "Figures 7 & 14 — running time vs q (FP / ListPlex / Ours)",
        &experiments::fig7(),
        &[Algorithm::Fp, Algorithm::ListPlex, Algorithm::Ours],
    );
}

fn fig9() {
    sweep_figure(
        "fig9",
        "Figures 9 & 15 — Basic vs Ours over q",
        &experiments::fig9(),
        &[Algorithm::Basic, Algorithm::Ours],
    );
}

// --- Table 4: parallel comparison -------------------------------------------

/// Runs one parallel configuration, returning (seconds, count).
fn run_parallel(
    g: &kplex_graph::CsrGraph,
    k: usize,
    q: usize,
    algo: Algorithm,
    nthreads: usize,
    timeout: Option<Duration>,
) -> (f64, u64) {
    let params = Params::new(k, q).expect("valid parameters");
    let mut opts = EngineOptions::with_threads(nthreads);
    opts.timeout = timeout;
    if algo == Algorithm::Fp {
        // The paper notes parallel FP builds all subgraphs serially.
        opts.serial_construction = true;
        opts.single_task_per_seed = true;
        opts.timeout = None;
    } else if algo == Algorithm::ListPlex {
        opts.timeout = None; // no straggler elimination in ListPlex
    }
    let start = Instant::now();
    let (count, _) = par_enumerate_count(g, params, &algo.config(), &opts);
    (start.elapsed().as_secs_f64(), count)
}

fn table4() {
    let m = threads();
    let mut t = Table::new(&[
        "network",
        "k",
        "q",
        "#k-plexes",
        "FP",
        "ListPlex",
        "Ours (τ=0.1ms)",
        "τ_best(µs)",
        "Ours (τ_best)",
    ]);
    for s in experiments::table4() {
        let g = load(s.dataset);
        let (t_fp, c1) = run_parallel(&g, s.k, s.q, Algorithm::Fp, m, None);
        let (t_lp, c2) = run_parallel(&g, s.k, s.q, Algorithm::ListPlex, m, None);
        let (t_ours, c3) = run_parallel(
            &g,
            s.k,
            s.q,
            Algorithm::Ours,
            m,
            Some(Duration::from_micros(100)),
        );
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        // Tune τ over the sweep to find τ_best.
        let mut best = (100u64, t_ours);
        for tau in experiments::tau_sweep_us() {
            if tau == 100 {
                continue;
            }
            let (secs, c) = run_parallel(
                &g,
                s.k,
                s.q,
                Algorithm::Ours,
                m,
                Some(Duration::from_micros(tau)),
            );
            assert_eq!(c, c1);
            if secs < best.1 {
                best = (tau, secs);
            }
        }
        eprintln!(
            "[table4] {} k={} q={}: FP {} LP {} Ours {} best(τ={}µs) {}",
            s.dataset,
            s.k,
            s.q,
            fmt_secs(t_fp),
            fmt_secs(t_lp),
            fmt_secs(t_ours),
            best.0,
            fmt_secs(best.1)
        );
        t.row(vec![
            s.dataset.into(),
            s.k.to_string(),
            s.q.to_string(),
            c1.to_string(),
            fmt_secs(t_fp),
            fmt_secs(t_lp),
            fmt_secs(t_ours),
            best.0.to_string(),
            fmt_secs(best.1),
        ]);
    }
    publish(
        "table4",
        &format!("Table 4 — parallel running time (s), {m} threads, large graphs"),
        &t.render(),
    );
}

// --- Figure 8: speedup -------------------------------------------------------

fn fig8() {
    let counts = experiments::thread_counts();
    let mut header: Vec<String> = vec!["network".into(), "k".into(), "q".into()];
    header.extend(counts.iter().map(|c| format!("{c} thr (s)")));
    header.extend(counts.iter().skip(1).map(|c| format!("S({c})")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for s in experiments::table4() {
        let g = load(s.dataset);
        let mut times = Vec::new();
        for &c in &counts {
            let (secs, _) = run_parallel(
                &g,
                s.k,
                s.q,
                Algorithm::Ours,
                c,
                Some(Duration::from_micros(100)),
            );
            times.push(secs);
            eprintln!(
                "[fig8] {} k={} {c} threads: {}s",
                s.dataset,
                s.k,
                fmt_secs(secs)
            );
        }
        let mut row = vec![s.dataset.to_string(), s.k.to_string(), s.q.to_string()];
        row.extend(times.iter().map(|&x| fmt_secs(x)));
        row.extend(times.iter().skip(1).map(|&x| fmt_ratio(times[0] / x)));
        t.row(row);
    }
    publish(
        "fig8",
        &format!(
            "Figure 8 — speedup of parallel Ours (host limit: {} threads)",
            threads()
        ),
        &t.render(),
    );
}

// --- Figure 13: τ sweep -------------------------------------------------------

fn fig13() {
    let m = threads();
    let taus = experiments::tau_sweep_us();
    let mut header: Vec<String> = vec!["network".into(), "k".into(), "q".into()];
    header.extend(taus.iter().map(|t| format!("τ={t}µs (s)")));
    header.push("no timeout (s)".into());
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for s in experiments::table4() {
        let g = load(s.dataset);
        let mut row = vec![s.dataset.to_string(), s.k.to_string(), s.q.to_string()];
        for &tau in &taus {
            let (secs, _) = run_parallel(
                &g,
                s.k,
                s.q,
                Algorithm::Ours,
                m,
                Some(Duration::from_micros(tau)),
            );
            row.push(fmt_secs(secs));
        }
        let (secs, _) = run_parallel(&g, s.k, s.q, Algorithm::Ours, m, None);
        row.push(fmt_secs(secs));
        t.row(row);
        eprintln!("[fig13] {} k={} done", s.dataset, s.k);
    }
    publish(
        "fig13",
        &format!("Figure 13 — effect of the straggler timeout τ_time ({m} threads)"),
        &t.render(),
    );
}

// --- Table 7: memory ----------------------------------------------------------

fn table7() {
    let mut t = Table::new(&[
        "network",
        "k",
        "q",
        "FP (MiB)",
        "ListPlex (MiB)",
        "Ours (MiB)",
    ]);
    for s in experiments::table7() {
        let g = load(s.dataset);
        let mut cells = Vec::new();
        for algo in [Algorithm::Fp, Algorithm::ListPlex, Algorithm::Ours] {
            PeakAlloc::reset_peak();
            let base = PeakAlloc::current_bytes();
            let (_, _) = time_algorithm(algo, &g, s.k, s.q);
            let peak = PeakAlloc::peak_bytes().saturating_sub(base);
            cells.push(fmt_mib(peak));
            eprintln!(
                "[table7] {} k={} q={} {}: peak {} MiB over baseline",
                s.dataset,
                s.k,
                s.q,
                algo.name(),
                fmt_mib(peak)
            );
        }
        t.row(vec![
            s.dataset.into(),
            s.k.to_string(),
            s.q.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    publish(
        "table7",
        "Table 7 (App. B.2) — peak enumeration memory over graph baseline",
        &t.render(),
    );
}
