#![deny(missing_docs)]
//! Workspace invariant linter for the k-plex repo.
//!
//! `kplex-lint` is a deliberately small, std-only static analyzer: a
//! line/token scanner, not a parser. The build environment has no registry
//! access, so `syn`/rustc-plugin approaches are off the table; instead the
//! scanner strips comments, strings, and char literals from each line
//! (tracking multi-line block comments and string literals across lines),
//! tags lines that fall inside `#[cfg(test)]` modules, and runs word-level
//! rules over what remains. That is enough to enforce the handful of
//! repo-wide invariants that rustc and clippy cannot see:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `raw-sync` | no raw `std::sync` `Mutex`/`RwLock`/`Condvar` in `crates/service` or `crates/parallel` outside `service/src/sync.rs` — every lock goes through the ranked [`OrderedMutex`] wrappers so the debug-build deadlock detector sees it |
//! | `ordering-comment` | every `Ordering::Relaxed` / `Ordering::SeqCst` site carries an `// ordering:` justification (same line or the comment block directly above) |
//! | `protocol-exhaustive` | every `Request::` variant appears in `render_request`, in `parse_request`, and in the proptest strategy, so a new verb cannot ship without wire coverage |
//! | `journal-exhaustive` | every journal `Record` variant appears in `parse_record` and in `replay`, so a new record tag cannot ship without crash-recovery handling |
//! | `core-hygiene` | no `println!`/`eprintln!`/`dbg!`/`todo!`/`unimplemented!` in the enumeration kernel, and every `Instant::now` there carries a `// timing:` justification |
//! | `unwrap-allowlist` | non-test `.unwrap()` in `crates/service/src` only at explicitly allowlisted sites — everything else uses the [`OrderedMutex`] poisoning policy or propagates errors |
//! | `store-abstraction` | no literal `CsrGraph` in non-test code of `crates/core/src` — the enumeration kernel speaks the `GraphStore` trait, so every backend (CSR, compressed, mmap) stays first-class |
//! | `tenant-scoped` | in `crates/service/src/server.rs`, the shared jobs map is only locked inside the principal-scoped accessors (`job_for`/`jobs_for`), their documented runner-side escape hatch (`job_unscoped`), or at sites carrying a `// tenant:` justification — so a new handler cannot quietly serve one tenant's jobs to another |
//! | `engine-no-sleep` | no `thread::sleep` in non-test code of `crates/parallel/src` — the engine idles workers by park/unpark with an explicit wakeup protocol, and a sleep call quietly reintroduces the timed-polling latency (and the lost-wakeup masking) the scheduler rewrite removed |
//!
//! Run it with `cargo run -p kplex-lint` (CI's `analyze` job does); it
//! exits non-zero on any finding. The rules are exercised by fixture
//! tests below — a good and a bad snippet per rule — so a scanner
//! regression fails the suite, not just the tree scan.
//!
//! [`OrderedMutex`]: ../kplex_service/sync/struct.OrderedMutex.html

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, relative to the workspace root when
    /// produced by [`run_workspace`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule name (`raw-sync`, `ordering-comment`, ...).
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule name: raw `std::sync` primitives outside the sync module.
pub const RULE_RAW_SYNC: &str = "raw-sync";
/// Rule name: unjustified `Ordering::Relaxed` / `Ordering::SeqCst`.
pub const RULE_ORDERING: &str = "ordering-comment";
/// Rule name: `Request` variant missing from render/parse/proptest.
pub const RULE_PROTOCOL: &str = "protocol-exhaustive";
/// Rule name: journal `Record` variant missing from parse/replay.
pub const RULE_JOURNAL: &str = "journal-exhaustive";
/// Rule name: debug macros or unjustified clock reads in the kernel.
pub const RULE_HYGIENE: &str = "core-hygiene";
/// Rule name: non-allowlisted `.unwrap()` in `crates/service/src`.
pub const RULE_UNWRAP: &str = "unwrap-allowlist";
/// Rule name: literal `CsrGraph` in non-test enumeration-kernel code.
pub const RULE_STORE: &str = "store-abstraction";
/// Rule name: jobs-map lock outside the principal-scoped accessors.
pub const RULE_TENANT: &str = "tenant-scoped";
/// Rule name: `thread::sleep` in non-test parallel-engine code.
pub const RULE_ENGINE_SLEEP: &str = "engine-no-sleep";

/// One scanned source line, split into its code and comment halves.
#[derive(Clone, Debug)]
pub struct Line {
    /// The line exactly as it appears in the file.
    pub raw: String,
    /// The line with comments, string contents, and char literals stripped
    /// (string literals collapse to `""`). Word-level rules run over this.
    pub code: String,
    /// The comment text of the line (line comments and any block-comment
    /// content), without the `//` / `/*` markers.
    pub comment: String,
    /// True when the line falls inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

impl Line {
    /// True when the line is comment-only: no code, some comment text.
    fn is_pure_comment(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

/// A scanned source file: path plus per-line code/comment split.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path the file was scanned under (workspace-relative in practice).
    pub path: String,
    /// The scanned lines, in file order.
    pub lines: Vec<Line>,
}

/// Scanner state that survives across lines.
enum Mode {
    /// Ordinary code.
    Code,
    /// Inside a (possibly nested) block comment; the payload is the depth.
    Block(usize),
    /// Inside a normal string literal (they can span lines).
    Str,
    /// Inside a raw string literal with this many `#`s in its delimiter.
    RawStr(usize),
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans `text` into per-line code/comment halves and tags `#[cfg(test)]`
/// module bodies. This is the only place that understands Rust lexical
/// structure; the rules operate on the result.
pub fn parse_source(path: &str, text: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr(h) => {
                    if chars[i] == '"' && (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + h;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = chars[i];
                    let prev_ident = code.chars().last().is_some_and(is_ident_char);
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.extend(&chars[i + 2..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_ident {
                        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
                        let mut j = i;
                        if chars[j] == 'b' {
                            j += 1;
                        }
                        if chars.get(j) == Some(&'r') {
                            let mut h = 0;
                            while chars.get(j + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if chars.get(j + 1 + h) == Some(&'"') {
                                code.push('"');
                                mode = Mode::RawStr(h);
                                i = j + 2 + h;
                                continue;
                            }
                        } else if c == 'b' && chars.get(j) == Some(&'"') {
                            code.push('"');
                            mode = Mode::Str;
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                        i += 1;
                    } else if c == '\'' && !prev_ident {
                        // Char literal vs lifetime. `prev_ident` guards
                        // against postfix positions (none exist for `'`),
                        // and keeps `Guard<'a>` working: after `<` the
                        // lookahead below classifies `'a` as a lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip the escape payload.
                            let mut j = i + 2;
                            if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
                                while j < chars.len() && chars[j] != '}' {
                                    j += 1;
                                }
                            }
                            j += 1;
                            if chars.get(j) == Some(&'\'') {
                                j += 1;
                            }
                            code.push(' ');
                            i = j;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            // One-char literal, e.g. '"' or '{'.
                            code.push(' ');
                            i += 3;
                        } else {
                            // Lifetime: keep it (it is not ident-adjacent
                            // in a way any rule cares about).
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test: false,
        });
    }

    // Second pass: tag `#[cfg(test)] mod ... { ... }` bodies by brace depth.
    let mut depth: i64 = 0;
    let mut armed = false; // saw #[cfg(test)], waiting for the item
    let mut pending_mod = false; // saw `mod`, waiting for its `{`
    let mut test_depth: Option<i64> = None;
    for line in &mut lines {
        let starts_in_test = test_depth.is_some();
        if test_depth.is_none() {
            let trimmed = line.code.trim();
            if trimmed.contains("#[cfg(test)]") {
                armed = true;
            }
            if armed && contains_word(&line.code, "mod") {
                pending_mod = true;
                armed = false;
            } else if armed
                && !trimmed.is_empty()
                && !trimmed.starts_with("#[")
                && !trimmed.contains("#[cfg(test)]")
            {
                // cfg(test) on a non-module item (a lone fn, an import):
                // out of scope for module tagging.
                armed = false;
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_mod {
                        test_depth = Some(depth);
                        pending_mod = false;
                    }
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        line.in_test = starts_in_test || test_depth.is_some();
    }

    SourceFile {
        path: path.to_string(),
        lines,
    }
}

/// True when `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides (so `OrderedMutex` does not match `Mutex`).
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    let h: &[u8] = haystack.as_bytes();
    let n = needle.len();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let left_ok = at == 0 || !is_ident_char(h[at - 1] as char);
        let right_ok = at + n >= h.len() || !is_ident_char(h[at + n] as char);
        if left_ok && right_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// True when line `idx` carries a `tag` justification: either in its own
/// comment, or anywhere in the contiguous block of comment-only lines
/// directly above it.
fn has_annotation(file: &SourceFile, idx: usize, tag: &str) -> bool {
    if file.lines[idx].comment.contains(tag) {
        return true;
    }
    let mut j = idx;
    while j > 0 && file.lines[j - 1].is_pure_comment() {
        j -= 1;
        if file.lines[j].comment.contains(tag) {
            return true;
        }
    }
    false
}

/// `raw-sync`: flags raw `std::sync` lock/condvar types. Applies to test
/// code too — test deadlocks hang CI just as hard — and to every file it
/// is pointed at (the workspace wiring exempts `service/src/sync.rs`,
/// which wraps the raw types by design).
pub fn check_raw_sync(file: &SourceFile) -> Vec<Finding> {
    const BANNED: &[&str] = &["Mutex", "MutexGuard", "RwLock", "Condvar"];
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for word in BANNED {
            if contains_word(&line.code, word) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: RULE_RAW_SYNC,
                    message: format!(
                        "raw `{word}` outside the sync module; use the ranked \
                         wrappers in kplex_service::sync so the deadlock \
                         detector sees this lock"
                    ),
                });
            }
        }
    }
    out
}

/// `ordering-comment`: every `Ordering::Relaxed` / `Ordering::SeqCst` site
/// needs an `// ordering:` justification on the line or in the comment
/// block directly above. Acquire/Release/AcqRel sites are self-describing
/// (they name the synchronization they provide) and are exempt. Applies to
/// test code too: test atomics still encode assumptions worth stating.
pub fn check_ordering_comments(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let relaxed = line.code.contains("Ordering::Relaxed");
        let seqcst = line.code.contains("Ordering::SeqCst");
        if (relaxed || seqcst) && !has_annotation(file, idx, "ordering:") {
            let which = if relaxed { "Relaxed" } else { "SeqCst" };
            out.push(Finding {
                file: file.path.clone(),
                line: idx + 1,
                rule: RULE_ORDERING,
                message: format!(
                    "`Ordering::{which}` without an `// ordering:` \
                     justification on this line or directly above"
                ),
            });
        }
    }
    out
}

/// Extracts the variant names of `enum name` from a scanned file: the
/// leading upper-case identifier of each line at the enum's first brace
/// depth. Struct-variant bodies and nested braces are skipped by depth.
pub fn enum_variants(file: &SourceFile, name: &str) -> Vec<String> {
    let mut start = None;
    for (idx, line) in file.lines.iter().enumerate() {
        if contains_word(&line.code, "enum") && contains_word(&line.code, name) {
            start = Some(idx);
            break;
        }
    }
    let Some(start) = start else {
        return Vec::new();
    };

    let mut variants = Vec::new();
    let mut depth = 0i64;
    let mut parens = 0i64; // keeps `Submit(JobId, SubmitArgs)` payloads out
    let mut entered = false;
    let mut expect_variant = false;
    for line in &file.lines[start..] {
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' => {
                    depth += 1;
                    if depth == 1 {
                        entered = true;
                        expect_variant = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        return variants;
                    }
                }
                '(' => parens += 1,
                ')' => parens -= 1,
                ',' if depth == 1 && parens == 0 => expect_variant = true,
                c if expect_variant && depth == 1 && parens == 0 && c.is_ascii_alphabetic() => {
                    let mut ident = String::new();
                    ident.push(c);
                    while let Some(&n) = chars.peek() {
                        if is_ident_char(n) {
                            ident.push(n);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if ident.chars().next().is_some_and(|f| f.is_ascii_uppercase()) {
                        variants.push(ident);
                    }
                    expect_variant = false;
                }
                _ => {}
            }
        }
    }
    variants
}

/// Returns the concatenated code of `fn name`'s body (from its opening
/// brace through the matching close), or `None` when the fn is absent.
pub fn fn_body(file: &SourceFile, name: &str) -> Option<String> {
    let mut start = None;
    for (idx, line) in file.lines.iter().enumerate() {
        if contains_word(&line.code, "fn") && contains_word(&line.code, name) {
            start = Some(idx);
            break;
        }
    }
    let start = start?;
    let mut body = String::new();
    let mut depth = 0i64;
    let mut entered = false;
    for line in &file.lines[start..] {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if entered {
                body.push(c);
            }
            if entered && depth == 0 {
                return Some(body);
            }
        }
        body.push('\n');
    }
    None
}

/// The inclusive line-index span of `fn name` (signature through matching
/// close brace), or `None` when the fn is absent. Brace counting over the
/// stripped code, like [`fn_body`].
pub fn fn_line_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let start = file
        .lines
        .iter()
        .position(|l| contains_word(&l.code, "fn") && contains_word(&l.code, name))?;
    let mut depth = 0i64;
    let mut entered = false;
    for (idx, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if entered && depth == 0 {
                return Some((start, idx));
            }
        }
    }
    None
}

/// `tenant-scoped`: every non-test lock of the shared jobs map in the
/// server (`…jobs.lock(…)`, including the line-wrapped `jobs\n.lock()`
/// shape) must either live inside the principal-scoped accessors
/// (`job_for`, `jobs_for`) or their documented runner-side escape hatch
/// (`job_unscoped`), or carry a `// tenant:` justification on the line or
/// the comment block directly above — so a new handler cannot quietly
/// read one tenant's jobs on behalf of another.
pub fn check_tenant_scoped(file: &SourceFile) -> Vec<Finding> {
    let spans: Vec<(usize, usize)> = ["job_for", "jobs_for", "job_unscoped"]
        .iter()
        .filter_map(|name| fn_line_span(file, name))
        .collect();
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains(".lock(") {
            continue;
        }
        let names_jobs = contains_word(&line.code, "jobs")
            || (idx > 0
                && file.lines[idx - 1].code.trim_end().ends_with("jobs")
                && line.code.trim_start().starts_with(".lock("));
        if !names_jobs {
            continue;
        }
        if spans.iter().any(|&(a, b)| a <= idx && idx <= b) {
            continue;
        }
        if has_annotation(file, idx, "tenant:") {
            continue;
        }
        out.push(Finding {
            file: file.path.clone(),
            line: idx + 1,
            rule: RULE_TENANT,
            message: "jobs-map lock outside the principal-scoped accessors; \
                      use `job_for`/`jobs_for`, or justify the unscoped read \
                      with a `// tenant:` comment"
                .to_string(),
        });
    }
    out
}

/// Exhaustiveness core shared by the protocol and journal rules: every
/// `enum_name::variant` must appear (word-delimited) in `haystack`.
fn check_coverage(
    rule: &'static str,
    file: &str,
    enum_name: &str,
    variants: &[String],
    haystack: &str,
    context: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for v in variants {
        let qualified = format!("{enum_name}::{v}");
        if !contains_word(haystack, &qualified) {
            out.push(Finding {
                file: file.to_string(),
                line: 1,
                rule,
                message: format!("`{qualified}` is not covered by {context}"),
            });
        }
    }
    out
}

/// `core-hygiene`: the enumeration kernel must not print, panic via
/// `todo!`-style placeholders, or read the clock without a `// timing:`
/// justification. Skips `#[cfg(test)]` module bodies.
pub fn check_core_hygiene(file: &SourceFile) -> Vec<Finding> {
    const BANNED: &[&str] = &["println!", "eprintln!", "dbg!", "todo!", "unimplemented!"];
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for mac in BANNED {
            let bare = &mac[..mac.len() - 1];
            if contains_word(&line.code, bare) && line.code.contains(mac) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: RULE_HYGIENE,
                    message: format!("`{mac}` in kernel code"),
                });
            }
        }
        if line.code.contains("Instant::now") && !has_annotation(file, idx, "timing:") {
            out.push(Finding {
                file: file.path.clone(),
                line: idx + 1,
                rule: RULE_HYGIENE,
                message: "`Instant::now` in kernel code without a `// timing:` \
                          justification (clock reads in the hot path must be \
                          deliberate and strided)"
                    .to_string(),
            });
        }
    }
    out
}

/// `store-abstraction`: non-test code in `crates/core/src` must not name
/// `CsrGraph` — the kernel is generic over [`GraphStore`], and a concrete
/// CSR type sneaking back in would silently demote the compressed and mmap
/// backends to second-class citizens. Tests may build `CsrGraph` fixtures.
///
/// [`GraphStore`]: ../kplex_graph/trait.GraphStore.html
pub fn check_store_abstraction(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !contains_word(&line.code, "CsrGraph") {
            continue;
        }
        out.push(Finding {
            file: file.path.clone(),
            line: idx + 1,
            rule: RULE_STORE,
            message: "literal `CsrGraph` in kernel code; take a \
                      `G: GraphStore + ?Sized` generic (or `&dyn GraphStore`) \
                      so every storage backend stays usable"
                .to_string(),
        });
    }
    out
}

/// `engine-no-sleep`: non-test code in `crates/parallel/src` must not call
/// `thread::sleep` (or any `sleep`-named function). The scheduler idles
/// workers via park/unpark with an explicit push→wake protocol and a
/// pending==0 termination handshake; a sleep call is timed polling sneaking
/// back in — it re-adds a sleep-period latency cliff to wakeup and
/// cancellation, and worse, it *masks* lost-wakeup bugs by bounding how
/// long one can hang. Tests may sleep to pace sinks and provoke races.
pub fn check_engine_no_sleep(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !contains_word(&line.code, "sleep") {
            continue;
        }
        out.push(Finding {
            file: file.path.clone(),
            line: idx + 1,
            rule: RULE_ENGINE_SLEEP,
            message: "`sleep` in engine code; idle workers must park on the \
                      scheduler's Parker (woken by push/termination), never \
                      poll on a timer"
                .to_string(),
        });
    }
    out
}

/// One allowlisted `.unwrap()` site for [`check_unwraps`].
#[derive(Clone, Copy, Debug)]
pub struct AllowedUnwrap {
    /// Path suffix the exemption applies to, e.g. `service/src/server.rs`.
    pub path_suffix: &'static str,
    /// A substring the offending line must contain.
    pub needle: &'static str,
    /// Why the unwrap is fine — shown nowhere, but reviewed here.
    pub reason: &'static str,
}

/// The workspace's unwrap allowlist. Empty today: every lock unwrap was
/// absorbed by [`OrderedMutex`]'s single poisoning policy and the rest of
/// `crates/service/src` propagates errors. Add entries (with reasons)
/// instead of sprinkling bare unwraps.
///
/// [`OrderedMutex`]: ../kplex_service/sync/struct.OrderedMutex.html
pub const UNWRAP_ALLOWLIST: &[AllowedUnwrap] = &[];

/// `unwrap-allowlist`: non-test `.unwrap()` only at allowlisted sites.
pub fn check_unwraps(file: &SourceFile, allowlist: &[AllowedUnwrap]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains(".unwrap()") {
            continue;
        }
        let allowed = allowlist
            .iter()
            .any(|a| file.path.ends_with(a.path_suffix) && line.code.contains(a.needle));
        if !allowed {
            out.push(Finding {
                file: file.path.clone(),
                line: idx + 1,
                rule: RULE_UNWRAP,
                message: "`.unwrap()` outside the allowlist; propagate the \
                          error or add an allowlist entry with a reason"
                    .to_string(),
            });
        }
    }
    out
}

/// The enumeration-kernel files `core-hygiene` applies to. `branch_ref.rs`
/// is the retired reference implementation and is exempt; `stats.rs` and
/// `verify.rs` are reporting/QA surfaces where printing is legitimate.
const KERNEL_FILES: &[&str] = &[
    "branch.rs",
    "bounds.rs",
    "pairs.rs",
    "plex.rs",
    "seed.rs",
    "subtask.rs",
    "reduce.rs",
    "sink.rs",
];

fn scan(root: &Path, rel: &str) -> io::Result<SourceFile> {
    let text = fs::read_to_string(root.join(rel))?;
    Ok(parse_source(rel, &text))
}

/// Collects every `.rs` file under `dir` (recursively), as paths relative
/// to `root`, sorted for deterministic output.
fn rust_files_under(root: &Path, dir: &str) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        if !d.is_dir() {
            continue;
        }
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every rule over the workspace rooted at `root` and returns all
/// findings (empty = clean). The file sets are:
///
/// - `raw-sync`: all of `crates/service` and `crates/parallel` except
///   `crates/service/src/sync.rs` (which wraps the raw types by design);
/// - `ordering-comment`: every first-party crate under `crates/`
///   (`shims/` is vendored stand-in code and exempt);
/// - `core-hygiene`: the kernel files in `crates/core/src`;
/// - `store-abstraction`: every file under `crates/core/src`;
/// - `unwrap-allowlist`: `crates/service/src`;
/// - the exhaustiveness rules: the protocol, journal, and proptest files;
/// - `tenant-scoped`: `crates/service/src/server.rs`;
/// - `engine-no-sleep`: `crates/parallel/src`.
pub fn run_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // raw-sync + ordering + unwrap over the service/parallel trees.
    for dir in ["crates/service", "crates/parallel"] {
        for rel in rust_files_under(root, dir)? {
            let file = scan(root, &rel)?;
            if !rel.ends_with("service/src/sync.rs") {
                findings.extend(check_raw_sync(&file));
            }
            findings.extend(check_ordering_comments(&file));
            if rel.starts_with("crates/service/src") {
                findings.extend(check_unwraps(&file, UNWRAP_ALLOWLIST));
            }
            if rel.starts_with("crates/parallel/src") {
                findings.extend(check_engine_no_sleep(&file));
            }
        }
    }

    // ordering over the remaining first-party crates.
    for dir in [
        "crates/baselines",
        "crates/bench",
        "crates/cli",
        "crates/core",
        "crates/datasets",
        "crates/graph",
        "src",
    ] {
        for rel in rust_files_under(root, dir)? {
            let file = scan(root, &rel)?;
            findings.extend(check_ordering_comments(&file));
        }
    }

    // core-hygiene over the kernel files.
    for name in KERNEL_FILES {
        let rel = format!("crates/core/src/{name}");
        if root.join(&rel).is_file() {
            findings.extend(check_core_hygiene(&scan(root, &rel)?));
        }
    }

    // store-abstraction over every core source file.
    for rel in rust_files_under(root, "crates/core/src")? {
        findings.extend(check_store_abstraction(&scan(root, &rel)?));
    }

    // Protocol exhaustiveness: every Request variant renders, parses, and
    // is generated by the proptest strategy.
    let protocol = scan(root, "crates/service/src/protocol.rs")?;
    let variants = enum_variants(&protocol, "Request");
    if variants.is_empty() {
        findings.push(Finding {
            file: protocol.path.clone(),
            line: 1,
            rule: RULE_PROTOCOL,
            message: "could not locate `enum Request`".to_string(),
        });
    }
    for (fn_name, context) in [
        ("render_request", "`render_request` (wire encoding)"),
        ("parse_request", "`parse_request` (wire decoding)"),
    ] {
        match fn_body(&protocol, fn_name) {
            Some(body) => findings.extend(check_coverage(
                RULE_PROTOCOL,
                &protocol.path,
                "Request",
                &variants,
                &body,
                context,
            )),
            None => findings.push(Finding {
                file: protocol.path.clone(),
                line: 1,
                rule: RULE_PROTOCOL,
                message: format!("could not locate `fn {fn_name}`"),
            }),
        }
    }
    let props = scan(root, "crates/service/tests/protocol_props.rs")?;
    let props_code: String = props
        .lines
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    findings.extend(check_coverage(
        RULE_PROTOCOL,
        &props.path,
        "Request",
        &variants,
        &props_code,
        "the proptest strategy in tests/protocol_props.rs",
    ));

    // Journal exhaustiveness: every Record variant parses and replays.
    let journal = scan(root, "crates/service/src/journal.rs")?;
    let records = enum_variants(&journal, "Record");
    if records.is_empty() {
        findings.push(Finding {
            file: journal.path.clone(),
            line: 1,
            rule: RULE_JOURNAL,
            message: "could not locate `enum Record`".to_string(),
        });
    }
    for (fn_name, context) in [
        ("parse_record", "`parse_record` (journal decoding)"),
        ("replay", "`replay` (crash recovery)"),
    ] {
        match fn_body(&journal, fn_name) {
            Some(body) => findings.extend(check_coverage(
                RULE_JOURNAL,
                &journal.path,
                "Record",
                &records,
                &body,
                context,
            )),
            None => findings.push(Finding {
                file: journal.path.clone(),
                line: 1,
                rule: RULE_JOURNAL,
                message: format!("could not locate `fn {fn_name}`"),
            }),
        }
    }

    // Tenant scoping: server request handlers read the jobs map only
    // through the principal-scoped accessors (or at sites carrying a
    // reviewed `// tenant:` justification).
    let server = scan(root, "crates/service/src/server.rs")?;
    findings.extend(check_tenant_scoped(&server));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        parse_source("crates/service/src/fixture.rs", text)
    }

    // --- scanner ---

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let f = file("let x = \"Mutex inside a string\"; // Mutex in a comment\n");
        assert!(!contains_word(&f.lines[0].code, "Mutex"));
        assert!(f.lines[0].comment.contains("Mutex in a comment"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = file("/* Mutex\n   still Mutex */ let y = 1;\n");
        assert!(!contains_word(&f.lines[0].code, "Mutex"));
        assert!(!contains_word(&f.lines[1].code, "Mutex"));
        assert!(f.lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn char_literal_quote_does_not_derail_string_state() {
        // A '"' char literal must not open a string.
        let f = file("if c == '\"' { self.code.push(Mutex_MARKER); }\n");
        assert!(f.lines[0].code.contains("Mutex_MARKER"));
        assert!(!contains_word(&f.lines[0].code, "Mutex"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let f = file("let s = r#\"Mutex \"quoted\" inside\"#; let t = Mutex::new(());\n");
        let hits = check_raw_sync(&f);
        assert_eq!(hits.len(), 1, "only the real Mutex: {hits:?}");
    }

    #[test]
    fn lifetimes_do_not_confuse_the_scanner() {
        let f = file("fn get<'a>(&'a self) -> Guard<'a, T> { Mutex::guard(self) }\n");
        assert_eq!(check_raw_sync(&f).len(), 1);
    }

    #[test]
    fn cfg_test_modules_are_tagged() {
        let src = "\
fn prod() { work(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { probe(); }
}
fn prod2() {}
";
        let f = file(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[4].in_test, "fn t body is in the test mod");
        assert!(!f.lines[6].in_test, "code after the mod is production");
    }

    // --- raw-sync ---

    #[test]
    fn raw_sync_flags_std_primitives() {
        let f = file("use std::sync::{Condvar, Mutex};\nstatic L: RwLock<u32> = RwLock::new(0);\n");
        let hits = check_raw_sync(&f);
        assert!(hits.iter().any(|h| h.message.contains("`Mutex`")));
        assert!(hits.iter().any(|h| h.message.contains("`Condvar`")));
        assert!(hits.iter().any(|h| h.message.contains("`RwLock`")));
    }

    #[test]
    fn raw_sync_accepts_the_ordered_wrappers() {
        let f = file(
            "use kplex_service::sync::{OrderedCondvar, OrderedMutex, Rank};\n\
             static L: OrderedMutex<u32> = OrderedMutex::new(Rank::CacheInner, \"l\", 0);\n",
        );
        assert!(check_raw_sync(&f).is_empty());
    }

    // --- ordering-comment ---

    #[test]
    fn ordering_without_justification_is_flagged() {
        let f = file("let n = count.load(Ordering::Relaxed);\n");
        let hits = check_ordering_comments(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Relaxed"));
    }

    #[test]
    fn ordering_with_same_line_comment_passes() {
        let f = file("let n = count.load(Ordering::SeqCst); // ordering: test counter.\n");
        assert!(check_ordering_comments(&f).is_empty());
    }

    #[test]
    fn ordering_with_preceding_comment_block_passes() {
        let f = file(
            "// ordering: monotone counter, read only as a gauge;\n\
             // nothing is published through it.\n\
             let n = count.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(check_ordering_comments(&f).is_empty());
    }

    #[test]
    fn acquire_release_sites_are_exempt() {
        let f = file("flag.store(true, Ordering::Release);\nflag.load(Ordering::Acquire);\n");
        assert!(check_ordering_comments(&f).is_empty());
    }

    #[test]
    fn unrelated_comment_above_does_not_satisfy_the_rule() {
        let f = file("// bump the counter\nlet n = count.fetch_add(1, Ordering::Relaxed);\n");
        assert_eq!(check_ordering_comments(&f).len(), 1);
    }

    // --- exhaustiveness ---

    const FIXTURE_ENUM: &str = "\
/// Doc.
pub enum Request {
    /// Doc.
    Ping,
    /// Doc.
    Submit(Box<SubmitArgs>),
    /// Doc.
    Stream(JobId, u64),
}
";

    #[test]
    fn enum_variants_are_extracted() {
        let f = file(FIXTURE_ENUM);
        assert_eq!(enum_variants(&f, "Request"), ["Ping", "Submit", "Stream"]);
    }

    #[test]
    fn uppercase_tuple_payloads_are_not_variants() {
        let f = file("enum Record {\n    Submit(JobId, SubmitArgs),\n    End(JobId),\n}\n");
        assert_eq!(enum_variants(&f, "Record"), ["Submit", "End"]);
    }

    #[test]
    fn missing_variant_in_fn_body_is_flagged() {
        let src = format!(
            "{FIXTURE_ENUM}\nfn render(r: &Request) -> String {{\n    match r {{\n        \
             Request::Ping => ping(),\n        Request::Submit(a) => submit(a),\n        \
             _ => other(),\n    }}\n}}\n"
        );
        let f = file(&src);
        let variants = enum_variants(&f, "Request");
        let body = fn_body(&f, "render").unwrap();
        let hits = check_coverage(
            RULE_PROTOCOL,
            &f.path,
            "Request",
            &variants,
            &body,
            "render",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Request::Stream"));
    }

    #[test]
    fn full_coverage_passes() {
        let src = format!(
            "{FIXTURE_ENUM}\nfn render(r: &Request) -> String {{\n    match r {{\n        \
             Request::Ping => ping(),\n        Request::Submit(a) => submit(a),\n        \
             Request::Stream(id, s) => stream(id, s),\n    }}\n}}\n"
        );
        let f = file(&src);
        let variants = enum_variants(&f, "Request");
        let body = fn_body(&f, "render").unwrap();
        assert!(check_coverage(
            RULE_PROTOCOL,
            &f.path,
            "Request",
            &variants,
            &body,
            "render"
        )
        .is_empty());
    }

    // --- core-hygiene ---

    #[test]
    fn println_in_kernel_code_is_flagged() {
        let f = file("fn expand() {\n    println!(\"debug {x}\");\n}\n");
        let hits = check_core_hygiene(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("println!"));
    }

    #[test]
    fn println_in_test_mod_or_string_is_fine() {
        let f = file(
            "fn expand() { let msg = \"println! is banned\"; }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { println!(\"ok in tests\"); }\n}\n",
        );
        assert!(check_core_hygiene(&f).is_empty());
    }

    #[test]
    fn clock_read_needs_a_timing_justification() {
        let bad = file("let t = Instant::now();\n");
        assert_eq!(check_core_hygiene(&bad).len(), 1);
        let good = file("// timing: one syscall per STOP_STRIDE nodes.\nlet t = Instant::now();\n");
        assert!(check_core_hygiene(&good).is_empty());
    }

    #[test]
    fn eprintln_does_not_double_count_as_println() {
        let f = file("fn expand() { eprintln!(\"x\"); }\n");
        let hits = check_core_hygiene(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("eprintln!"));
    }

    // --- unwrap-allowlist ---

    #[test]
    fn non_test_unwrap_is_flagged_with_empty_allowlist() {
        let f = file("let v = parse().unwrap();\n");
        assert_eq!(check_unwraps(&f, &[]).len(), 1);
    }

    #[test]
    fn allowlisted_unwrap_passes() {
        let f = file("let v = parse().unwrap();\n");
        let allow = [AllowedUnwrap {
            path_suffix: "fixture.rs",
            needle: "parse().unwrap()",
            reason: "fixture",
        }];
        assert!(check_unwraps(&f, &allow).is_empty());
    }

    #[test]
    fn unwrap_in_test_mod_is_fine() {
        let f = file("#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n");
        assert!(check_unwraps(&f, &[]).is_empty());
    }

    // --- engine-no-sleep ---

    #[test]
    fn sleep_in_engine_code_is_flagged() {
        let f = file("fn idle() { std::thread::sleep(IDLE_SLEEP); }\n");
        let hits = check_engine_no_sleep(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_ENGINE_SLEEP);
        assert!(hits[0].message.contains("park"));
    }

    #[test]
    fn park_and_sleep_named_items_pass_engine_rule() {
        // Parking is the sanctioned idle path; a `sleep`-containing
        // identifier (word boundaries) and comment/string mentions are not
        // calls; tests may pace with real sleeps.
        let f = file(
            "fn idle(p: &Parker) { p.park(); }\n\
             const IDLE_SLEEP: u32 = 50; // thread::sleep was removed\n\
             fn label() -> &'static str { \"sleep\" }\n\
             #[cfg(test)]\nmod tests {\n    fn pace() { std::thread::sleep(D); }\n}\n",
        );
        assert!(check_engine_no_sleep(&f).is_empty());
    }

    // --- store-abstraction ---

    #[test]
    fn csr_graph_in_kernel_code_is_flagged() {
        let f = file("fn expand(g: &CsrGraph) {\n    let n = g.num_vertices();\n}\n");
        let hits = check_store_abstraction(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_STORE);
        assert!(hits[0].message.contains("GraphStore"));
    }

    #[test]
    fn csr_graph_in_tests_comments_or_strings_is_fine() {
        let f = file(
            "// A CsrGraph mention in a comment is fine.\n\
             fn expand<G: GraphStore + ?Sized>(g: &G) { let m = \"CsrGraph\"; }\n\
             #[cfg(test)]\nmod tests {\n    use kplex_graph::CsrGraph;\n}\n",
        );
        assert!(check_store_abstraction(&f).is_empty());
    }

    #[test]
    fn csr_graph_as_identifier_prefix_is_not_a_word_match() {
        let f = file("struct CsrGraphStats;\n");
        assert!(check_store_abstraction(&f).is_empty());
    }

    // --- tenant-scoped ---

    #[test]
    fn unscoped_jobs_lock_in_a_handler_is_flagged() {
        let f = file(
            "fn handler(state: &SharedState) {\n    \
                 let jobs = state.jobs.lock().len();\n\
             }\n",
        );
        let hits = check_tenant_scoped(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_TENANT);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn line_wrapped_jobs_lock_is_still_flagged() {
        // `state.jobs` and `.lock()` on separate lines must not dodge the
        // rule — rustfmt wraps long chains exactly like this.
        let f = file(
            "fn handler(state: &SharedState) {\n    \
                 let j = state.jobs\n        \
                     .lock()\n        \
                     .get(&id);\n\
             }\n",
        );
        let hits = check_tenant_scoped(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn scoped_accessors_annotations_and_tests_pass() {
        let src = "\
fn job_for(&self, id: JobId, auth: &ConnAuth) {
    self.jobs.lock().get(&id)
}
fn jobs_for(&self, auth: &ConnAuth) {
    self.jobs
        .lock()
        .values()
}
fn job_unscoped(&self, id: JobId) {
    // tenant: runner-internal dispatch path.
    self.jobs.lock().get(&id)
}
fn stats(state: &SharedState) {
    // tenant: aggregate counters only, no per-job data.
    let n = state.jobs.lock().len();
    let depth = state.queue.lock().depth();
}
#[cfg(test)]
mod tests {
    fn t(state: &SharedState) { state.jobs.lock().clear(); }
}
";
        let hits = check_tenant_scoped(&file(src));
        assert!(hits.is_empty(), "{hits:?}");
    }
}
