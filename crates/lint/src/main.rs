//! `kplex-lint` binary: scans the workspace and exits non-zero on any
//! invariant violation. CI's `analyze` job runs this; locally use
//! `cargo run -p kplex-lint` (optionally passing an explicit workspace
//! root as the only argument).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        // crates/lint -> crates -> workspace root.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate dir has a workspace root two levels up")
            .to_path_buf(),
    };
    match kplex_lint::run_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("kplex-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("kplex-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("kplex-lint: error scanning {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
