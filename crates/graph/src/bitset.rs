//! A fixed-capacity dynamic bitset backed by `u64` words.
//!
//! The enumeration algorithms spend most of their time intersecting
//! neighbourhoods inside dense seed subgraphs (Section 4 of the paper points
//! out that seed subgraphs are dense enough to warrant an adjacency-matrix
//! representation). This bitset is the storage unit of that matrix as well as
//! of the dynamic `P`/`C` indicator sets maintained during branching, so the
//! operations that dominate (`intersection_count`, in-place boolean algebra,
//! set iteration) are all word-parallel.

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A growable-but-fixed-capacity bitset over `u64` words.
///
/// Unlike `Vec<bool>`, all binary operations work a word at a time, and the
/// popcount-style queries (`count`, `intersection_count`) compile to `popcnt`
/// loops. Capacity is fixed at construction; indices must be `< capacity()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits.
    nbits: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[inline]
fn word_count(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates an empty bitset able to address `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        Self {
            words: vec![0u64; word_count(nbits)],
            nbits,
        }
    }

    /// Creates a bitset with all `nbits` bits set.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::new(nbits);
        s.set_all();
        s
    }

    /// Re-dimensions the bitset to `nbits` in place, clearing every bit.
    /// Reuses the word buffer's capacity — the allocation-free way to
    /// recycle scratch bitsets across differently-sized seed subgraphs.
    pub fn reset(&mut self, nbits: usize) {
        self.words.clear();
        self.words.resize(word_count(nbits), 0);
        self.nbits = nbits;
    }

    /// Re-dimensions to `other`'s size and copies its contents (capacity
    /// reused; see [`BitSet::reset`]).
    pub fn assign_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.nbits = other.nbits;
    }

    /// Number of addressable bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Raw word slice (low bit of word 0 is bit 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word slice.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0
    }

    /// Sets every addressable bit.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        self.mask_tail();
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self &= !other`, word-parallel (the and-not primitive behind
    /// [`BitSet::difference_with`]).
    pub fn and_not_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// `self &= !other` (alias of [`BitSet::and_not_assign`], kept for the
    /// set-algebra naming used elsewhere).
    pub fn difference_with(&mut self, other: &BitSet) {
        self.and_not_assign(other);
    }

    /// Multi-row intersection: `self &= r` for every row in `rows`, one
    /// word-parallel pass per row. Returns the number of `u64` words scanned
    /// (for the searcher's `tighten_words` counter).
    pub fn intersect_rows<'r>(&mut self, rows: impl IntoIterator<Item = &'r BitSet>) -> usize {
        let mut scanned = 0;
        for r in rows {
            self.intersect_with(r);
            scanned += self.words.len();
        }
        scanned
    }

    /// Copies `other` into `self` (capacities must match).
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.copy_from_slice(&other.words);
    }

    /// `|self & other|` without materialising the intersection.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self & other & third|`, used for common-neighbour counts restricted
    /// to a candidate set (Theorems 5.13–5.15).
    #[inline]
    pub fn intersection_count3(&self, other: &BitSet, third: &BitSet) -> usize {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, third.nbits);
        self.words
            .iter()
            .zip(&other.words)
            .zip(&third.words)
            .map(|((a, b), c)| (a & b & c).count_ones() as usize)
            .sum()
    }

    /// True if the two sets share at least one bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Lowest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over set bit indices in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: IterWords::Single(&self.words),
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects set bits as `u32` indices (graph-local vertex ids).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }

    /// Word-masked retain: appends every set bit (ascending, as `u32`) to
    /// `out` without intermediate allocation. This is how the searcher
    /// rebuilds its compact candidate array from an indicator after the
    /// word-parallel tighten pass.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                out.push((wi * WORD_BITS + bit) as u32);
            }
        }
    }

    /// Iterates the set bits of `self & other` in increasing order without
    /// materialising the intersection.
    pub fn intersection_iter<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.nbits, other.nbits);
        BitIter {
            words: IterWords::Zipped(&self.words, &other.words),
            word_idx: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(a), Some(b)) => a & b,
                _ => 0,
            },
        }
    }

    /// Clears any bits beyond `nbits` in the last word so that counting stays
    /// correct after `set_all`.
    fn mask_tail(&mut self) {
        let rem = self.nbits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset sized to exactly fit the largest element.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let nbits = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(nbits);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Word source of a [`BitIter`]: one raw word slice, or two slices combined
/// with `&` on the fly (for [`BitSet::intersection_iter`]).
enum IterWords<'a> {
    Single(&'a [u64]),
    Zipped(&'a [u64], &'a [u64]),
}

impl IterWords<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            IterWords::Single(w) => w.len(),
            IterWords::Zipped(a, _) => a.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        match self {
            IterWords::Single(w) => w[i],
            IterWords::Zipped(a, b) => a[i] & b[i],
        }
    }
}

/// Iterator over set bits of a [`BitSet`].
pub struct BitIter<'a> {
    words: IterWords<'a>,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words.get(self.word_idx);
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_bits() {
        let s = BitSet::new(130);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(200);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.count(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn set_all_masks_tail() {
        let mut s = BitSet::new(70);
        s.set_all();
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
    }

    #[test]
    fn full_equals_set_all() {
        let f = BitSet::full(99);
        assert_eq!(f.count(), 99);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for i in (0..128).step_by(2) {
            a.insert(i);
        }
        for i in (0..128).step_by(3) {
            b.insert(i);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.count(), (0..128).filter(|i| i % 6 == 0).count());
        assert_eq!(a.intersection_count(&b), inter.count());

        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(
            uni.count(),
            (0..128).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );

        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(
            diff.count(),
            (0..128).filter(|i| i % 2 == 0 && i % 3 != 0).count()
        );
    }

    #[test]
    fn three_way_intersection_count() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        let mut c = BitSet::new(64);
        for i in 0..64 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
            if i % 5 == 0 {
                c.insert(i);
            }
        }
        assert_eq!(
            a.intersection_count3(&b, &c),
            (0..64).filter(|i| i % 30 == 0).count()
        );
    }

    #[test]
    fn subset_and_intersects() {
        let mut a = BitSet::new(64);
        a.insert(3);
        a.insert(10);
        let mut b = a.clone();
        b.insert(40);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        let c = BitSet::new(64);
        assert!(!a.intersects(&c));
        assert!(c.is_subset_of(&a));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let mut s = BitSet::new(300);
        let bits = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &b in &bits {
            s.insert(b);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, bits);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn reset_redimensions_and_clears() {
        let mut s = BitSet::full(200);
        s.reset(70);
        assert_eq!(s.capacity(), 70);
        assert!(s.is_empty());
        s.insert(69);
        s.set_all();
        assert_eq!(s.count(), 70);
        s.reset(300);
        assert_eq!(s.capacity(), 300);
        assert!(s.is_empty());
    }

    #[test]
    fn assign_from_adopts_size_and_content() {
        let mut src = BitSet::new(130);
        src.insert(0);
        src.insert(129);
        let mut dst = BitSet::full(17);
        dst.assign_from(&src);
        assert_eq!(dst.capacity(), 130);
        assert_eq!(dst.to_vec(), vec![0, 129]);
        assert_eq!(dst, src);
    }

    #[test]
    fn and_not_assign_equals_difference() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in (0..130).step_by(3) {
            a.insert(i);
        }
        for i in (0..130).step_by(4) {
            b.insert(i);
        }
        let mut x = a.clone();
        x.and_not_assign(&b);
        assert_eq!(
            x.to_vec(),
            (0..130)
                .filter(|i| i % 3 == 0 && i % 4 != 0)
                .map(|i| i as u32)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn intersect_rows_folds_and_counts_words() {
        let mut base = BitSet::full(128);
        let mut r1 = BitSet::new(128);
        let mut r2 = BitSet::new(128);
        for i in (0..128).step_by(2) {
            r1.insert(i);
        }
        for i in (0..128).step_by(3) {
            r2.insert(i);
        }
        let scanned = base.intersect_rows([&r1, &r2]);
        assert_eq!(scanned, 2 * 2); // two rows × two words each
        assert_eq!(base.count(), (0..128).filter(|i| i % 6 == 0).count());
    }

    #[test]
    fn collect_into_appends_ascending() {
        let mut s = BitSet::new(300);
        for &b in &[1usize, 64, 65, 299] {
            s.insert(b);
        }
        let mut out = vec![7u32];
        s.collect_into(&mut out);
        assert_eq!(out, vec![7, 1, 64, 65, 299]);
    }

    #[test]
    fn intersection_iter_matches_materialised() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(3) {
            a.insert(i);
        }
        for i in (0..200).step_by(7) {
            b.insert(i);
        }
        let got: Vec<usize> = a.intersection_iter(&b).collect();
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(got, inter.iter().collect::<Vec<_>>());
        let empty = BitSet::new(0);
        assert_eq!(empty.intersection_iter(&empty).count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5usize, 17, 2].into_iter().collect();
        assert_eq!(s.capacity(), 18);
        assert_eq!(s.to_vec(), vec![2, 5, 17]);
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitSet::new(64);
        a.insert(1);
        let mut b = BitSet::new(64);
        b.insert(2);
        b.insert(3);
        a.copy_from(&b);
        assert_eq!(a.to_vec(), vec![2, 3]);
    }
}
