//! Graph input/output.
//!
//! Two formats are supported:
//! * the SNAP-style whitespace edge list (`#`/`%` comment lines, one
//!   `u v` pair per line, ids remapped densely in first-appearance order);
//! * a little-endian binary cache format (`KPLX1`) used by the dataset
//!   registry so repeated benchmark runs skip generation.

use crate::csr::{CsrGraph, GraphBuilder, VertexId};
use crate::error::GraphError;
use bytes::{Buf, BufMut};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a whitespace-separated edge list. Vertex labels may be arbitrary
/// `u64`s; they are remapped to dense ids in order of first appearance.
/// Returns the graph and the label of each dense id.
pub fn parse_edge_list(reader: impl Read) -> Result<(CsrGraph, Vec<u64>), GraphError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new(0);
    let mut intern = |label: u64, builder: &mut GraphBuilder, labels: &mut Vec<u64>| -> VertexId {
        *remap.entry(label).or_insert_with(|| {
            let id = labels.len() as VertexId;
            labels.push(label);
            builder.ensure_vertex(id);
            id
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source vertex")?;
        let v = parse(it.next(), "target vertex")?;
        let ui = intern(u, &mut builder, &mut labels);
        let vi = intern(v, &mut builder, &mut labels);
        builder.add_edge(ui, vi).expect("interned ids are in range");
    }
    Ok((builder.build(), labels))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<(CsrGraph, Vec<u64>), GraphError> {
    let f = std::fs::File::open(path)?;
    parse_edge_list(f)
}

/// Writes `g` as an edge list (one `u v` per line, dense ids).
pub fn write_edge_list(g: &CsrGraph, writer: impl Write) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

const MAGIC: &[u8; 5] = b"KPLX1";

/// Serialises `g` into the compact binary cache format.
pub fn encode_binary(g: &CsrGraph) -> Vec<u8> {
    let n = g.num_vertices();
    let m2 = 2 * g.num_edges();
    let mut buf = Vec::with_capacity(16 + 4 * (n + 1) + 4 * m2);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m2 as u64);
    for v in g.vertices() {
        buf.put_u32_le(g.degree(v) as u32);
    }
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            buf.put_u32_le(w);
        }
    }
    buf
}

/// Decodes the binary cache format produced by [`encode_binary`].
pub fn decode_binary(mut data: &[u8]) -> Result<CsrGraph, GraphError> {
    if data.len() < MAGIC.len() + 16 || &data[..MAGIC.len()] != MAGIC {
        return Err(GraphError::BinaryFormat("bad magic".into()));
    }
    data.advance(MAGIC.len());
    let n = data.get_u64_le() as usize;
    let m2 = data.get_u64_le() as usize;
    if data.remaining() != 4 * n + 4 * m2 {
        return Err(GraphError::BinaryFormat(format!(
            "expected {} payload bytes, found {}",
            4 * n + 4 * m2,
            data.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for _ in 0..n {
        acc += data.get_u32_le() as usize;
        offsets.push(acc);
    }
    if acc != m2 {
        return Err(GraphError::BinaryFormat("degree sum mismatch".into()));
    }
    let mut edges = Vec::with_capacity(m2);
    for _ in 0..m2 {
        let w = data.get_u32_le();
        if w as usize >= n {
            return Err(GraphError::BinaryFormat(format!(
                "endpoint {w} out of range"
            )));
        }
        edges.push(w);
    }
    let g = CsrGraph::from_parts(offsets, edges);
    g.check_invariants()
        .map_err(|e| GraphError::BinaryFormat(e.to_string()))?;
    Ok(g)
}

/// Writes the binary cache to `path` (atomically via a temp file).
pub fn write_binary(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encode_binary(g))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a binary cache file.
pub fn read_binary(path: impl AsRef<Path>) -> Result<CsrGraph, GraphError> {
    let data = std::fs::read(path)?;
    decode_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parse_simple_edge_list() {
        let text = "# comment\n% another\n10 20\n20 30\n\n10 30\n";
        let (g, labels) = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list("1 x\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
        let err = parse_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::gnm(25, 60, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = parse_edge_list(buf.as_slice()).unwrap();
        // Labels are dense already, but first-appearance order may permute
        // ids; compare canonical edge sets under the label mapping.
        assert_eq!(g.num_vertices(), g2.num_vertices() + g.isolated_count());
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::barabasi_albert(150, 3, 8);
        let bytes = encode_binary(&g);
        let g2 = decode_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = gen::gnm(10, 20, 1);
        let mut bytes = encode_binary(&g);
        bytes[0] = b'X';
        assert!(matches!(
            decode_binary(&bytes),
            Err(GraphError::BinaryFormat(_))
        ));
        let bytes = encode_binary(&g);
        assert!(decode_binary(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn binary_file_roundtrip() {
        let g = gen::gnm(30, 80, 2);
        let dir = std::env::temp_dir().join("kplex-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.kplx");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
