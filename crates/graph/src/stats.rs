//! Graph summary statistics (the columns of Table 2).

use crate::coreness::core_decomposition;
use crate::csr::CsrGraph;

/// The headline statistics reported per dataset in Table 2 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices n.
    pub n: usize,
    /// Number of undirected edges m.
    pub m: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Degeneracy D.
    pub degeneracy: u32,
    /// Average degree 2m/n.
    pub avg_degree: f64,
}

impl GraphStats {
    /// Computes all statistics in one pass plus a core decomposition.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        Self {
            n,
            m,
            max_degree: g.max_degree(),
            degeneracy: core_decomposition(g).degeneracy,
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} Δ={} D={} avg={:.2}",
            self.n, self.m, self.max_degree, self.degeneracy, self.avg_degree
        )
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Exact triangle count via neighbour-list merging on the degeneracy DAG.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let decomp = core_decomposition(g);
    let mut count = 0u64;
    // Orient edges from earlier to later in η; each triangle is counted once
    // at its η-minimal vertex.
    let mut later: Vec<Vec<u32>> = vec![Vec::new(); g.num_vertices()];
    for v in g.vertices() {
        later[v as usize] = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| decomp.before(v, w))
            .collect();
        later[v as usize].sort_unstable();
    }
    for v in g.vertices() {
        let lv = &later[v as usize];
        for &w in lv {
            // Intersect later[v] with later[w].
            let lw = &later[w as usize];
            let (mut i, mut j) = (0, 0);
            while i < lv.len() && j < lw.len() {
                match lv[i].cmp(&lw[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Global clustering coefficient = 3·triangles / open-or-closed wedges.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangle_count(g) as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_complete_graph() {
        let g = gen::complete(6);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 15);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.degeneracy, 5);
        assert!((s.avg_degree - 5.0).abs() < 1e-9);
        assert!(s.to_string().contains("D=5"));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = gen::gnm(50, 120, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 50);
    }

    #[test]
    fn triangles_of_known_graphs() {
        assert_eq!(triangle_count(&gen::complete(4)), 4);
        assert_eq!(triangle_count(&gen::complete(6)), 20);
        assert_eq!(triangle_count(&gen::cycle(5)), 0);
        assert_eq!(triangle_count(&gen::star(10)), 0);
    }

    #[test]
    fn clustering_extremes() {
        assert!((global_clustering(&gen::complete(5)) - 1.0).abs() < 1e-9);
        assert_eq!(global_clustering(&gen::star(6)), 0.0);
    }

    #[test]
    fn triangle_count_matches_bruteforce() {
        let g = gen::gnp(40, 0.25, 7);
        let mut brute = 0u64;
        for u in 0..40u32 {
            for v in u + 1..40 {
                for w in v + 1..40 {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }
}
