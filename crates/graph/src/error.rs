//! Error types for the graph substrate.

use std::fmt;

/// Errors produced by graph construction, I/O and validation.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was not a valid vertex id for the declared size.
    VertexOutOfRange {
        /// The offending id.
        vertex: u32,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A structural invariant of an internal representation was violated.
    Corrupt(String),
    /// Failure while parsing a textual graph format.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Failure while decoding the binary graph format.
    BinaryFormat(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph structure: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::BinaryFormat(msg) => write!(f, "binary format error: {msg}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 3 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = GraphError::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("I/O"));
    }
}
