//! Connected components and breadth-first traversal utilities.
//!
//! Plexes with `q >= 2k - 1` are connected (Theorem 3.3), so every result
//! lives inside one connected component; these helpers let applications
//! split inputs, validate connectivity of results, and estimate distances.

use crate::csr::{CsrGraph, VertexId};
use crate::store::GraphStore;
use std::collections::VecDeque;

/// Connected-component labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per vertex (dense, 0-based).
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Vertices of the largest component.
    pub fn largest(&self) -> Vec<VertexId> {
        let Some((best, _)) = self.sizes.iter().enumerate().max_by_key(|&(_, s)| *s) else {
            return Vec::new();
        };
        (0..self.label.len() as u32)
            .filter(|&v| self.label[v as usize] == best as u32)
            .collect()
    }

    /// True when `set` lies entirely in one component.
    pub fn same_component(&self, set: &[VertexId]) -> bool {
        match set.first() {
            None => true,
            Some(&v0) => {
                let l = self.label[v0 as usize];
                set.iter().all(|&v| self.label[v as usize] == l)
            }
        }
    }
}

/// Labels connected components by BFS in O(n + m).
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        label[start as usize] = id;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = id;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        label,
        count: sizes.len(),
        sizes,
    }
}

/// Single-source BFS distances; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Exact diameter of the subgraph induced by `set` (`None` when the induced
/// subgraph is disconnected or empty). Intended for verifying the
/// diameter-2 property of results (Theorem 3.3), so `set` is small: the
/// induced subgraph is assembled from O(|set|²) adjacency probes, which
/// works uniformly across all [`GraphStore`] backends.
pub fn induced_diameter<G: GraphStore + ?Sized>(g: &G, set: &[VertexId]) -> Option<u32> {
    if set.is_empty() {
        return None;
    }
    let mut ids: Vec<VertexId> = set.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let mut b = crate::csr::GraphBuilder::new(ids.len());
    for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            if g.has_edge(ids[i], ids[j]) {
                b.add_edge(i as VertexId, j as VertexId).expect("in range");
            }
        }
    }
    let sub = b.build();
    let mut diameter = 0u32;
    for v in sub.vertices() {
        let dist = bfs_distances(&sub, v);
        for &d in &dist {
            if d == u32::MAX {
                return None; // disconnected
            }
            diameter = diameter.max(d);
        }
    }
    Some(diameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn single_component_graph() {
        let g = gen::cycle(10);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.sizes, vec![10]);
        assert!(c.same_component(&[0, 5, 9]));
        assert_eq!(c.largest().len(), 10);
    }

    #[test]
    fn multiple_components() {
        // Two triangles and an isolated vertex.
        let g = CsrGraph::from_edges(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
        assert!(c.same_component(&[0, 1, 2]));
        assert!(!c.same_component(&[0, 3]));
        assert_eq!(c.largest().len(), 3);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = gen::path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = CsrGraph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn induced_diameter_cases() {
        let g = gen::complete(5);
        assert_eq!(induced_diameter(&g, &[0, 1, 2]), Some(1));
        let p = gen::path(5);
        assert_eq!(induced_diameter(&p, &[0, 1, 2, 3, 4]), Some(4));
        // Disconnected induced set.
        assert_eq!(induced_diameter(&p, &[0, 4]), None);
        assert_eq!(induced_diameter(&p, &[]), None);
        assert_eq!(induced_diameter(&p, &[2]), Some(0));
    }

    #[test]
    fn empty_graph_components() {
        let g = gen::empty(0);
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert!(c.largest().is_empty());
    }
}
