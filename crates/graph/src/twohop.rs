//! Two-hop neighbourhood extraction (Eq (1) of the paper).
//!
//! Seed subgraph construction needs, for each seed vertex `v_i`, the vertices
//! within two hops that come *after* `v_i` in the degeneracy ordering. The
//! extractor keeps a reusable mark array so repeated queries over the same
//! graph do no allocation.

use crate::csr::{CsrGraph, VertexId};

/// Classification of a vertex relative to the query vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hop {
    /// Direct neighbour (distance 1).
    One,
    /// Distance exactly 2.
    Two,
}

/// Reusable scratch for two-hop queries on a fixed graph size.
pub struct TwoHopExtractor {
    /// 0 = unmarked, 1 = hop-1, 2 = hop-2, 3 = the query vertex itself.
    mark: Vec<u8>,
    touched: Vec<VertexId>,
}

impl TwoHopExtractor {
    /// Creates scratch for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            mark: vec![0; n],
            touched: Vec::new(),
        }
    }

    /// Collects vertices within two hops of `v` (excluding `v`), each tagged
    /// with its hop distance, filtered by `keep`. Results are in ascending
    /// vertex-id order within each hop class interleaved as discovered;
    /// callers that need a specific order sort afterwards.
    pub fn extract(
        &mut self,
        g: &CsrGraph,
        v: VertexId,
        mut keep: impl FnMut(VertexId) -> bool,
    ) -> Vec<(VertexId, Hop)> {
        debug_assert!(self.mark.iter().all(|&m| m == 0), "scratch not reset");
        let mut out = Vec::new();
        self.mark[v as usize] = 3;
        self.touched.push(v);
        for &w in g.neighbors(v) {
            self.mark[w as usize] = 1;
            self.touched.push(w);
            if keep(w) {
                out.push((w, Hop::One));
            }
        }
        for &w in g.neighbors(v) {
            for &x in g.neighbors(w) {
                if self.mark[x as usize] == 0 {
                    self.mark[x as usize] = 2;
                    self.touched.push(x);
                    if keep(x) {
                        out.push((x, Hop::Two));
                    }
                }
            }
        }
        for &t in &self.touched {
            self.mark[t as usize] = 0;
        }
        self.touched.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // 0-1-2-3 path plus 0-4, 4-5.
        CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)]).unwrap()
    }

    #[test]
    fn hop_classification() {
        let g = sample();
        let mut ex = TwoHopExtractor::new(6);
        let mut got = ex.extract(&g, 0, |_| true);
        got.sort_by_key(|&(v, _)| v);
        assert_eq!(
            got,
            vec![(1, Hop::One), (2, Hop::Two), (4, Hop::One), (5, Hop::Two)]
        );
    }

    #[test]
    fn filter_is_applied() {
        let g = sample();
        let mut ex = TwoHopExtractor::new(6);
        let got = ex.extract(&g, 0, |v| v >= 2);
        let ids: Vec<VertexId> = got.iter().map(|&(v, _)| v).collect();
        assert!(ids.contains(&2) && ids.contains(&4) && ids.contains(&5));
        assert!(!ids.contains(&1));
    }

    #[test]
    fn scratch_is_reusable() {
        let g = sample();
        let mut ex = TwoHopExtractor::new(6);
        let a = ex.extract(&g, 0, |_| true);
        let b = ex.extract(&g, 0, |_| true);
        assert_eq!(a, b);
        // A different root sees a different ball.
        let c = ex.extract(&g, 3, |_| true);
        let ids: Vec<VertexId> = c.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn query_vertex_never_included() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut ex = TwoHopExtractor::new(3);
        let got = ex.extract(&g, 1, |_| true);
        assert!(got.iter().all(|&(v, _)| v != 1));
    }
}
