//! Core decomposition: k-cores, core numbers, degeneracy and the degeneracy
//! ordering that seeds the enumeration (Section 3 and Algorithm 2 line 2).
//!
//! Two peeling implementations are provided:
//! * [`core_decomposition`] — the classic Batagelj–Zaversnik bucket algorithm,
//!   O(n + m), deterministic for a fixed input;
//! * [`degeneracy_order_by_id`] — a `(degree, id)` binary-heap peeling that
//!   realises the paper's canonical "within-shell order by vertex id" exactly,
//!   at O((n + m) log n).

use crate::csr::{CsrGraph, VertexId};
use crate::store::GraphStore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Output of a full core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[v]` is the largest k such that v belongs to a k-core.
    pub core: Vec<u32>,
    /// Vertices in peeling (degeneracy) order η.
    pub order: Vec<VertexId>,
    /// Position of each vertex in `order` (inverse permutation).
    pub position: Vec<u32>,
    /// Graph degeneracy D = max core number.
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// True if `u` precedes `v` in the degeneracy ordering.
    #[inline]
    pub fn before(&self, u: VertexId, v: VertexId) -> bool {
        self.position[u as usize] < self.position[v as usize]
    }
}

/// Batagelj–Zaversnik O(n + m) peeling.
///
/// Repeatedly removes a vertex of minimum current degree; the value of that
/// minimum at removal time is the vertex's core number, and the removal
/// sequence is the degeneracy ordering η. Works over any [`GraphStore`]
/// backend; rows are read once per peeled vertex through one scratch buffer.
pub fn core_decomposition<G: GraphStore + ?Sized>(g: &G) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core: vec![],
            order: vec![],
            position: vec![],
            degeneracy: 0,
        };
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_deg = *degree.iter().max().unwrap() as usize;

    // bin[d] = start index in `vert` of vertices with current degree d.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    // vert: vertices sorted by degree; pos: index of each vertex in vert.
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    {
        let mut next = bin.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            vert[next[d]] = v;
            pos[v as usize] = next[d];
            next[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    let mut min_deg_floor = 0u32; // core numbers are non-decreasing along η
    let mut scratch = Vec::new();
    for i in 0..n {
        let v = vert[i];
        let dv = degree[v as usize].max(min_deg_floor);
        min_deg_floor = dv;
        core[v as usize] = dv;
        degeneracy = degeneracy.max(dv);
        order.push(v);
        for &w in g.row(v, &mut scratch) {
            // Textbook BZ guard: never decrement a neighbour below the level
            // currently being peeled, so processed degrees are non-decreasing
            // and equal the core numbers.
            if pos[w as usize] > i && degree[w as usize] > degree[v as usize] {
                let dw = degree[w as usize] as usize;
                // Swap w with the first vertex of its bucket, then shrink the
                // bucket boundary: w's degree drops by one.
                let pw = pos[w as usize];
                let start = bin[dw].max(i + 1);
                let u = vert[start];
                if u != w {
                    vert[start] = w;
                    vert[pw] = u;
                    pos[w as usize] = start;
                    pos[u as usize] = pw;
                }
                bin[dw] = start + 1;
                degree[w as usize] -= 1;
            }
        }
    }
    let mut position = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i as u32;
    }
    CoreDecomposition {
        core,
        order,
        position,
        degeneracy,
    }
}

/// Heap-based peeling producing the paper's canonical η: among vertices of
/// minimum current degree, the smallest id is removed first, so vertices in
/// the same k-shell appear in id order. Works over any [`GraphStore`] backend.
pub fn degeneracy_order_by_id<G: GraphStore + ?Sized>(g: &G) -> CoreDecomposition {
    let n = g.num_vertices();
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = (0..n as u32)
        .map(|v| Reverse((degree[v as usize], v)))
        .collect();
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    let mut floor = 0u32;
    let mut scratch = Vec::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || d != degree[v as usize] {
            continue; // stale heap entry
        }
        removed[v as usize] = true;
        let dv = d.max(floor);
        floor = dv;
        core[v as usize] = dv;
        degeneracy = degeneracy.max(dv);
        order.push(v);
        for &w in g.row(v, &mut scratch) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
                heap.push(Reverse((degree[w as usize], w)));
            }
        }
    }
    let mut position = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i as u32;
    }
    CoreDecomposition {
        core,
        order,
        position,
        degeneracy,
    }
}

/// Returns the vertex ids of the `k`-core of `g` (possibly empty, always
/// ascending), i.e. the largest induced subgraph with minimum degree `k`
/// (Theorem 3.5 shrinks the input to its (q-k)-core before mining).
pub fn kcore_vertices<G: GraphStore + ?Sized>(g: &G, k: u32) -> Vec<VertexId> {
    let decomp = core_decomposition(g);
    (0..g.num_vertices() as VertexId)
        .filter(|&v| decomp.core[v as usize] >= k)
        .collect()
}

/// Convenience: extracts the `k`-core as a renumbered graph plus the mapping
/// `new id -> old id`.
pub fn kcore_subgraph(g: &CsrGraph, k: u32) -> (CsrGraph, Vec<VertexId>) {
    let keep = kcore_vertices(g, k);
    g.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn clique(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn clique_core_numbers() {
        let g = clique(5);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 4);
        assert!(d.core.iter().all(|&c| c == 4));
        assert_eq!(d.order.len(), 5);
    }

    #[test]
    fn path_has_degeneracy_one() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0,1,2,3} plus path 3-4-5.
        let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        edges.push((4, 5));
        let g = CsrGraph::from_edges(6, edges).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 3);
        assert_eq!(d.core[4], 1);
        assert_eq!(d.core[5], 1);
        assert_eq!(d.core[0], 3);
        // Peeling removes the tail first.
        assert!(d.before(5, 0) || d.before(4, 0));
    }

    #[test]
    fn kcore_extraction_drops_low_core_vertices() {
        let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        let g = CsrGraph::from_edges(5, edges).unwrap();
        let verts = kcore_vertices(&g, 3);
        assert_eq!(verts, vec![0, 1, 2, 3]);
        let (sub, map) = kcore_subgraph(&g, 3);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 6);
        assert_eq!(map, vec![0, 1, 2, 3]);
        let empty = kcore_vertices(&g, 4);
        assert!(empty.is_empty());
    }

    #[test]
    fn both_peelings_agree_on_core_numbers() {
        let g = gen::barabasi_albert(300, 3, 42);
        let a = core_decomposition(&g);
        let b = degeneracy_order_by_id(&g);
        assert_eq!(a.core, b.core);
        assert_eq!(a.degeneracy, b.degeneracy);
    }

    #[test]
    fn by_id_order_breaks_ties_by_vertex_id() {
        // 4 isolated vertices: all in the 0-shell, so η must be 0,1,2,3.
        let g = CsrGraph::from_edges(4, []).unwrap();
        let d = degeneracy_order_by_id(&g);
        assert_eq!(d.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_is_a_permutation_and_position_is_inverse() {
        let g = gen::gnm(120, 500, 7);
        let d = core_decomposition(&g);
        let mut seen = [false; 120];
        for &v in &d.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.position[v as usize] as usize, i);
        }
    }

    #[test]
    fn degeneracy_matches_definition_on_random_graphs() {
        // D is the max over the peeling of the current min degree; verify by
        // checking the suffix property: every vertex has >= core[v] neighbors
        // later in the ordering or equal-core earlier ones... simpler: the
        // k-core with k = D is nonempty, k = D + 1 is empty.
        for seed in 0..5 {
            let g = gen::gnm(80, 300, seed);
            let d = core_decomposition(&g);
            assert!(!kcore_vertices(&g, d.degeneracy).is_empty());
            assert!(kcore_vertices(&g, d.degeneracy + 1).is_empty());
        }
    }

    #[test]
    fn suffix_degree_bounded_by_degeneracy() {
        // In degeneracy order every vertex has at most D neighbours after it.
        let g = gen::barabasi_albert(200, 4, 9);
        let d = core_decomposition(&g);
        for v in g.vertices() {
            let later = g.neighbors(v).iter().filter(|&&w| d.before(v, w)).count();
            assert!(later <= d.degeneracy as usize);
        }
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }
}
