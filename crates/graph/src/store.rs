//! Pluggable graph storage: the [`GraphStore`] trait and its three backends.
//!
//! Every consumer of adjacency in this workspace — the seed builder's
//! two-hop ball collection, the reduce passes, the verification oracles —
//! reads graphs through a narrow row-access surface: vertex/edge counts,
//! degrees, one sorted neighbour row at a time, adjacency tests, and the
//! degeneracy ordering derived from them. [`GraphStore`] names exactly that
//! surface so the storage representation can vary independently of the
//! enumeration kernel:
//!
//! * [`CsrStore`] — today's in-RAM [`CsrGraph`], unchanged: zero-copy rows,
//!   binary-search adjacency. The fastest backend and the default.
//! * [`CompressedStore`] — gap/varint–encoded adjacency rows that decode
//!   into a caller-provided scratch buffer. Rows cost a decode per access,
//!   but the pre-matrix seed gate touches each raw row exactly once per
//!   seed, so the decode tax is paid once per seed, not per fixpoint round.
//! * [`MmapStore`] — the on-disk `.kpx` format (written by `kplex convert`)
//!   memory-mapped read-only, so a server can own graphs larger than its
//!   RAM budget; rows are zero-copy out of the page cache.
//!
//! [`StoreBackend`] is the concrete enum the pipeline threads through
//! `Prepared` and the service cache: it records *which* backend a graph is
//! resident as (and therefore its resident byte footprint, see
//! [`GraphStore::resident_bytes`]).
//!
//! ## The `.kpx` on-disk format
//!
//! Little-endian, three sections, each page-aligned so the mapped file can
//! be reinterpreted in place:
//!
//! ```text
//! offset 0    header (64 bytes):
//!             magic "KPXGRPH1" · version u32 · reserved u32 ·
//!             n u64 · m2 u64 (directed edge count = 2m) ·
//!             index_off u64 · edges_off u64 · file_len u64 · reserved u64
//! index_off   row index: (n+1) × u64 — *edge counts*, not byte offsets;
//!             index[0] = 0, non-decreasing, index[n] = m2
//! edges_off   edge array: m2 × u32 — row v is edges[index[v]..index[v+1]],
//!             strictly sorted (a format invariant, inherited from the
//!             writer's CSR input and trusted rather than re-scanned)
//! ```
//!
//! `index_off` and `edges_off` are 4096-byte aligned; combined with the
//! page alignment of `mmap` itself this guarantees the u64/u32 views are
//! correctly aligned. Open-time validation is O(n): magic, version,
//! overflow-checked section layout (the header's `n`/`m2` are untrusted),
//! section offsets, exact file length, and row-index monotonicity; a torn,
//! truncated, or absurd file fails loudly with [`GraphError::BinaryFormat`].

use crate::coreness::CoreDecomposition;
use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;
use std::path::Path;
use std::sync::Arc;

/// The row-access surface shared by every graph backend.
///
/// `Send + Sync` is a supertrait because prepared graphs are shared across
/// the parallel engine's workers behind an `Arc`.
pub trait GraphStore: Send + Sync {
    /// Number of vertices (ids are dense `0..n`).
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Degree of `v`, without materialising the row.
    fn degree(&self, v: VertexId) -> usize;

    /// The sorted neighbour row of `v`.
    ///
    /// Backends that hold rows uncompressed (CSR, mmap) return them
    /// zero-copy and leave `scratch` untouched; compressed backends decode
    /// into `scratch` and return a view of it. Callers that need two rows
    /// alive at once pass two scratch buffers.
    fn row<'a>(&'a self, v: VertexId, scratch: &'a mut Vec<VertexId>) -> &'a [VertexId];

    /// Adjacency test.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Which backend this is (drives cache accounting and `STATS`).
    fn kind(&self) -> StoreKind;

    /// Heap/RAM bytes this graph keeps resident. A mapped store answers
    /// near zero: its pages live in the kernel page cache, reclaimable
    /// under memory pressure, not in the process heap.
    fn resident_bytes(&self) -> usize;

    /// Degeneracy-order iteration: peels the graph and returns the full
    /// core decomposition (ordering η, core numbers, degeneracy).
    fn degeneracy_order(&self) -> CoreDecomposition {
        crate::coreness::core_decomposition(self)
    }
}

/// The backend selector, as it appears on command lines (`--store`) and on
/// the wire (`SUBMIT store=`, `STATS store=`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoreKind {
    /// In-RAM CSR ([`CsrStore`]): fastest, largest footprint.
    Csr,
    /// Gap/varint compressed rows ([`CompressedStore`]).
    Compressed,
    /// Memory-mapped `.kpx` file ([`MmapStore`]): out-of-core.
    Mmap,
}

impl StoreKind {
    /// Parses the command-line/wire spelling (`csr|compressed|mmap`).
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "csr" => Some(StoreKind::Csr),
            "compressed" => Some(StoreKind::Compressed),
            "mmap" => Some(StoreKind::Mmap),
            _ => None,
        }
    }

    /// The canonical spelling, inverse of [`StoreKind::parse`].
    pub fn label(self) -> &'static str {
        match self {
            StoreKind::Csr => "csr",
            StoreKind::Compressed => "compressed",
            StoreKind::Mmap => "mmap",
        }
    }

    /// The kind a *derived* in-RAM graph (e.g. the `(q-k)`-core reduction
    /// of the input) is kept as. A reduction of a mapped graph has no
    /// backing file, so it is kept compressed: the raw input stays
    /// out-of-core and the much smaller working set pays only the varint
    /// decode tax.
    pub fn resident(self) -> StoreKind {
        match self {
            StoreKind::Csr => StoreKind::Csr,
            StoreKind::Compressed | StoreKind::Mmap => StoreKind::Compressed,
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl GraphStore for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    fn row<'a>(&'a self, v: VertexId, _scratch: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        self.neighbors(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Csr
    }

    fn resident_bytes(&self) -> usize {
        // offsets: (n+1) × usize, edges: 2m × u32.
        (self.num_vertices() + 1) * std::mem::size_of::<usize>()
            + 2 * self.num_edges() * std::mem::size_of::<VertexId>()
    }
}

/// The in-RAM CSR backend: a thin owner of a [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct CsrStore {
    graph: CsrGraph,
}

impl CsrStore {
    /// Wraps an existing graph without copying it.
    pub fn new(graph: CsrGraph) -> Self {
        Self { graph }
    }

    /// Borrows the underlying CSR graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Unwraps back into the underlying CSR graph.
    pub fn into_graph(self) -> CsrGraph {
        self.graph
    }
}

impl GraphStore for CsrStore {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    fn row<'a>(&'a self, v: VertexId, _scratch: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        self.graph.neighbors(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.graph.has_edge(u, v)
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Csr
    }

    fn resident_bytes(&self) -> usize {
        GraphStore::resident_bytes(&self.graph)
    }
}

// --- varint-compressed rows --------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        buf.push((x as u8) | 0x80);
        x >>= 7;
    }
    buf.push(x as u8);
}

#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= u32::from(b & 0x7f) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// Gap/varint-compressed adjacency: each row stores its first neighbour as
/// a varint and every later neighbour as the varint gap to its predecessor
/// (rows are strictly sorted, so gaps are ≥ 1 and small on clustered
/// graphs). Degrees are kept uncompressed so [`GraphStore::degree`] stays
/// O(1).
#[derive(Clone)]
pub struct CompressedStore {
    deg: Vec<u32>,
    /// Byte offset of each row's encoding in `bytes` (length n+1).
    offsets: Vec<usize>,
    bytes: Vec<u8>,
    m2: usize,
}

impl std::fmt::Debug for CompressedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedStore")
            .field("n", &self.deg.len())
            .field("m2", &self.m2)
            .field("encoded_bytes", &self.bytes.len())
            .finish()
    }
}

impl CompressedStore {
    /// Compresses every row of `g`.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut b = CompressedBuilder::new();
        for v in g.vertices() {
            b.push_row(g.neighbors(v));
        }
        b.finish()
    }
}

impl GraphStore for CompressedStore {
    fn num_vertices(&self) -> usize {
        self.deg.len()
    }

    fn num_edges(&self) -> usize {
        self.m2 / 2
    }

    fn degree(&self, v: VertexId) -> usize {
        self.deg[v as usize] as usize
    }

    fn row<'a>(&'a self, v: VertexId, scratch: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        scratch.clear();
        let mut pos = self.offsets[v as usize];
        let mut acc = 0u32;
        for i in 0..self.deg[v as usize] {
            let delta = get_varint(&self.bytes, &mut pos);
            acc = if i == 0 { delta } else { acc + delta };
            scratch.push(acc);
        }
        scratch.as_slice()
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Walk the shorter row's varints in place; sortedness gives an
        // early exit without allocating or decoding the full row.
        let (a, b) = if self.deg[u as usize] <= self.deg[v as usize] {
            (u, v)
        } else {
            (v, u)
        };
        let mut pos = self.offsets[a as usize];
        let mut acc = 0u32;
        for i in 0..self.deg[a as usize] {
            let delta = get_varint(&self.bytes, &mut pos);
            acc = if i == 0 { delta } else { acc + delta };
            if acc >= b {
                return acc == b;
            }
        }
        false
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Compressed
    }

    fn resident_bytes(&self) -> usize {
        self.deg.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.bytes.len()
    }
}

/// Streaming builder for [`CompressedStore`]: rows are fed once, in vertex
/// order, and encoded immediately — reductions use this to avoid ever
/// materialising a full uncompressed copy of their output.
#[derive(Debug, Default)]
pub struct CompressedBuilder {
    deg: Vec<u32>,
    offsets: Vec<usize>,
    bytes: Vec<u8>,
    m2: usize,
}

impl CompressedBuilder {
    /// An empty builder; rows are appended with [`CompressedBuilder::push_row`].
    pub fn new() -> Self {
        Self {
            deg: Vec::new(),
            offsets: vec![0],
            bytes: Vec::new(),
            m2: 0,
        }
    }

    /// Appends the (strictly sorted) neighbour row of the next vertex.
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
        let mut prev = 0u32;
        for (i, &w) in row.iter().enumerate() {
            put_varint(&mut self.bytes, if i == 0 { w } else { w - prev });
            prev = w;
        }
        self.deg.push(row.len() as u32);
        self.offsets.push(self.bytes.len());
        self.m2 += row.len();
    }

    /// Finalises the store.
    pub fn finish(self) -> CompressedStore {
        CompressedStore {
            deg: self.deg,
            offsets: self.offsets,
            bytes: self.bytes,
            m2: self.m2,
        }
    }
}

// --- the .kpx on-disk format and its mapped reader ---------------------------

const KPX_MAGIC: &[u8; 8] = b"KPXGRPH1";
const KPX_VERSION: u32 = 1;
const KPX_HEADER_LEN: usize = 64;
const KPX_ALIGN: usize = 4096;

fn align_up(x: usize, a: usize) -> Option<usize> {
    Some(x.checked_add(a - 1)? / a * a)
}

/// Section offsets and exact file length of a `.kpx` holding `n` vertices
/// and `m2` directed edges. `None` if any quantity overflows `usize` or the
/// file would exceed `isize::MAX` (the slice-length ceiling): `n`/`m2` come
/// straight from an untrusted header in [`MmapStore::open`], and release
/// builds wrap on overflow, so unchecked math here would let a crafted
/// header wrap past the length validation and read out of bounds.
fn kpx_layout(n: usize, m2: usize) -> Option<(usize, usize, usize)> {
    let index_off = KPX_ALIGN; // the 64-byte header gets a full page
    let index_bytes = n.checked_add(1)?.checked_mul(8)?;
    let edges_off = align_up(index_off.checked_add(index_bytes)?, KPX_ALIGN)?;
    let file_len = edges_off.checked_add(m2.checked_mul(4)?)?;
    if file_len > isize::MAX as usize {
        return None;
    }
    Some((index_off, edges_off, file_len))
}

fn write_zeros(w: &mut impl std::io::Write, mut n: usize) -> std::io::Result<()> {
    const ZEROS: [u8; KPX_ALIGN] = [0u8; KPX_ALIGN];
    while n > 0 {
        let take = n.min(ZEROS.len());
        w.write_all(&ZEROS[..take])?;
        n -= take;
    }
    Ok(())
}

/// Serialises `g` into the `.kpx` mapped format (see the module docs) and
/// writes it to `path` atomically: the sections are streamed through a
/// buffered writer into a temp file (never materialising the file image in
/// RAM — the point of the mapped backend is graphs near the RAM budget),
/// fsync'd, and renamed into place so a crash leaves either the old file or
/// the new one, not a torn hybrid.
pub fn write_kpx(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    use std::io::Write;
    let path = path.as_ref();
    let n = g.num_vertices();
    let m2 = 2 * g.num_edges();
    let (index_off, edges_off, file_len) =
        kpx_layout(n, m2).ok_or_else(|| corrupt("graph too large for the .kpx format"))?;
    let tmp = path.with_extension("kpx.tmp");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    let mut header = [0u8; KPX_HEADER_LEN];
    header[..8].copy_from_slice(KPX_MAGIC);
    header[8..12].copy_from_slice(&KPX_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(m2 as u64).to_le_bytes());
    header[32..40].copy_from_slice(&(index_off as u64).to_le_bytes());
    header[40..48].copy_from_slice(&(edges_off as u64).to_le_bytes());
    header[48..56].copy_from_slice(&(file_len as u64).to_le_bytes());
    w.write_all(&header)?;
    write_zeros(&mut w, index_off - KPX_HEADER_LEN)?;
    let mut acc = 0u64;
    w.write_all(&acc.to_le_bytes())?;
    for v in g.vertices() {
        acc += g.degree(v) as u64;
        w.write_all(&acc.to_le_bytes())?;
    }
    write_zeros(&mut w, edges_off - (index_off + 8 * (n + 1)))?;
    for v in g.vertices() {
        for &x in g.neighbors(v) {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    let file = w.into_inner().map_err(|e| e.into_error())?;
    // Durability before the rename: without it, a crash after the rename
    // can leave an empty/partial destination on journaled filesystems,
    // destroying a previously valid file.
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    // Best-effort fsync of the directory so the rename itself is durable;
    // some platforms/filesystems cannot open a directory, which is fine.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        }) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// A read-only memory mapping of a whole file, unmapped on drop. Only ever
/// constructed for `PROT_READ`/`MAP_PRIVATE` mappings of immutable files.
struct MapHandle {
    ptr: *const u8,
    len: usize,
}

// Safety: the mapping is read-only and private; concurrent reads from any
// thread are fine, and the pointer is owned exclusively by this handle.
unsafe impl Send for MapHandle {}
unsafe impl Sync for MapHandle {}

impl Drop for MapHandle {
    fn drop(&mut self) {
        // Safety: `ptr`/`len` came from a successful mmap of exactly `len`
        // bytes and nothing else unmaps them.
        unsafe { sys::unmap(self.ptr, self.len) };
    }
}

/// Raw-syscall `mmap`/`munmap` for the mapped backend. The workspace links
/// no libc, so the two syscalls are issued directly; other platforms fall
/// back to reading the file into RAM (see [`Backing::Owned`]).
#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            in("r9") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a0 => ret,
            in("x1") a1,
            in("x2") a2,
            in("x3") a3,
            in("x4") a4,
            in("x5") a5,
            options(nostack),
        );
        ret
    }

    /// Maps `len` bytes of `file` read-only; `None` on any failure (the
    /// caller then falls back to reading the file).
    pub(super) fn map_file(file: &std::fs::File, len: usize) -> Option<*const u8> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        // Safety: all-zero addr asks the kernel to pick; the fd is open for
        // reading and outlives the call; errors come back as -errno.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd() as usize,
                0,
            )
        };
        if ret < 0 {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Unmaps a mapping produced by [`map_file`].
    pub(super) unsafe fn unmap(ptr: *const u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

/// Fallback stubs when raw mmap is unavailable: mapping always "fails", so
/// [`MmapStore::open`] takes the read-into-RAM path and [`MapHandle`] is
/// never constructed.
#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub(super) fn map_file(_file: &std::fs::File, _len: usize) -> Option<*const u8> {
        None
    }

    pub(super) unsafe fn unmap(_ptr: *const u8, _len: usize) {}
}

/// How an opened `.kpx` file is held.
enum Backing {
    /// Memory-mapped in place; the index/edge views reinterpret the mapped
    /// bytes (sections are page-aligned, the format is little-endian, and
    /// this variant is only built on little-endian Linux).
    Mapped(Arc<MapHandle>),
    /// Decoded into RAM: the portable fallback when mapping is unavailable.
    Owned {
        index: Vec<u64>,
        edges: Vec<VertexId>,
    },
}

impl Clone for Backing {
    fn clone(&self) -> Self {
        match self {
            Backing::Mapped(m) => Backing::Mapped(m.clone()),
            Backing::Owned { index, edges } => Backing::Owned {
                index: index.clone(),
                edges: edges.clone(),
            },
        }
    }
}

/// The out-of-core backend: a `.kpx` file opened read-only, memory-mapped
/// where the platform allows (falling back to an in-RAM copy elsewhere).
#[derive(Clone)]
pub struct MmapStore {
    n: usize,
    m2: usize,
    index_off: usize,
    edges_off: usize,
    backing: Backing,
}

impl std::fmt::Debug for MmapStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapStore")
            .field("n", &self.n)
            .field("m2", &self.m2)
            .field("mapped", &matches!(self.backing, Backing::Mapped(_)))
            .finish()
    }
}

fn corrupt(msg: impl Into<String>) -> GraphError {
    GraphError::BinaryFormat(msg.into())
}

impl MmapStore {
    /// Opens and validates a `.kpx` file (see the module docs for the
    /// format and what open-time validation covers). Rejects torn or
    /// truncated files by exact length and row-index checks.
    pub fn open(path: impl AsRef<Path>) -> Result<MmapStore, GraphError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < KPX_HEADER_LEN as u64 {
            return Err(corrupt("file shorter than the .kpx header"));
        }
        let mut header = [0u8; KPX_HEADER_LEN];
        {
            use std::io::Read;
            (&file).read_exact(&mut header)?;
        }
        if &header[..8] != KPX_MAGIC {
            return Err(corrupt("bad .kpx magic"));
        }
        let u32_at = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().expect("4"));
        let u64_at = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8"));
        if u32_at(8) != KPX_VERSION {
            return Err(corrupt(format!("unsupported .kpx version {}", u32_at(8))));
        }
        let n = usize::try_from(u64_at(16)).map_err(|_| corrupt("n overflows usize"))?;
        let m2 = usize::try_from(u64_at(24)).map_err(|_| corrupt("m2 overflows usize"))?;
        if m2 % 2 != 0 {
            return Err(corrupt("odd directed edge count"));
        }
        let (index_off, edges_off, file_len) =
            kpx_layout(n, m2).ok_or_else(|| corrupt("n/m2 overflow the .kpx layout"))?;
        if u64_at(32) != index_off as u64
            || u64_at(40) != edges_off as u64
            || u64_at(48) != file_len as u64
        {
            return Err(corrupt("section offsets disagree with n/m2"));
        }
        if actual_len != file_len as u64 {
            return Err(corrupt(format!(
                "torn .kpx: header says {file_len} bytes, file has {actual_len}"
            )));
        }
        let backing = match sys::map_file(&file, file_len) {
            Some(ptr) => Backing::Mapped(Arc::new(MapHandle { ptr, len: file_len })),
            None => {
                let data = std::fs::read(path)?;
                if data.len() != file_len {
                    return Err(corrupt("file changed while opening"));
                }
                let index = (0..=n)
                    .map(|i| {
                        let at = index_off + 8 * i;
                        u64::from_le_bytes(data[at..at + 8].try_into().expect("8"))
                    })
                    .collect();
                let edges = (0..m2)
                    .map(|i| {
                        let at = edges_off + 4 * i;
                        u32::from_le_bytes(data[at..at + 4].try_into().expect("4"))
                    })
                    .collect();
                Backing::Owned { index, edges }
            }
        };
        let store = MmapStore {
            n,
            m2,
            index_off,
            edges_off,
            backing,
        };
        // Row-index sanity: O(n), touches only the index pages. Row
        // sortedness and endpoint ranges are format invariants of the
        // writer, deliberately not re-scanned (that would touch all O(m)
        // edge pages and defeat lazy paging).
        let index = store.index();
        if index[0] != 0 || index[n] != m2 as u64 {
            return Err(corrupt("row index bounds"));
        }
        if index.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("row index not monotone"));
        }
        Ok(store)
    }

    fn index(&self) -> &[u64] {
        match &self.backing {
            // Safety: the section is within the mapping (validated against
            // the file length), 4096-aligned on a page-aligned base, and
            // the mapped variant only exists on little-endian targets.
            Backing::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.ptr.add(self.index_off) as *const u64, self.n + 1)
            },
            Backing::Owned { index, .. } => index,
        }
    }

    fn edge_array(&self) -> &[VertexId] {
        match &self.backing {
            // Safety: as for `index` — in-bounds, aligned, little-endian.
            Backing::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.ptr.add(self.edges_off) as *const VertexId, self.m2)
            },
            Backing::Owned { edges, .. } => edges,
        }
    }
}

impl GraphStore for MmapStore {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m2 / 2
    }

    fn degree(&self, v: VertexId) -> usize {
        let index = self.index();
        (index[v as usize + 1] - index[v as usize]) as usize
    }

    fn row<'a>(&'a self, v: VertexId, _scratch: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        let index = self.index();
        &self.edge_array()[index[v as usize] as usize..index[v as usize + 1] as usize]
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let mut scratch = Vec::new();
        self.row(a, &mut scratch).binary_search(&b).is_ok()
    }

    fn kind(&self) -> StoreKind {
        StoreKind::Mmap
    }

    fn resident_bytes(&self) -> usize {
        match &self.backing {
            // Mapped pages belong to the kernel page cache, not this
            // process's heap budget.
            Backing::Mapped(_) => 0,
            Backing::Owned { index, edges } => index.len() * 8 + edges.len() * 4,
        }
    }
}

// --- the backend enum ---------------------------------------------------------

/// A graph resident as one of the three backends. This is the concrete
/// type `Prepared` and the service cache hold, so every cached graph knows
/// its own backend and resident footprint.
#[derive(Clone, Debug)]
pub enum StoreBackend {
    /// In-RAM CSR.
    Csr(CsrStore),
    /// Varint-compressed rows.
    Compressed(CompressedStore),
    /// Mapped `.kpx` file.
    Mmap(MmapStore),
}

impl StoreBackend {
    /// Wraps a freshly built graph as the *resident* form of `kind` (see
    /// [`StoreKind::resident`]: `Mmap` inputs keep derived graphs
    /// compressed, since a derived graph has no backing file).
    pub fn from_graph(graph: CsrGraph, kind: StoreKind) -> StoreBackend {
        match kind.resident() {
            StoreKind::Csr => StoreBackend::Csr(CsrStore::new(graph)),
            _ => StoreBackend::Compressed(CompressedStore::from_graph(&graph)),
        }
    }

    /// Opens a `.kpx` file as a mapped backend.
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<StoreBackend, GraphError> {
        Ok(StoreBackend::Mmap(MmapStore::open(path)?))
    }

    /// The underlying CSR graph, when this backend is CSR.
    pub fn as_csr(&self) -> Option<&CsrGraph> {
        match self {
            StoreBackend::Csr(s) => Some(s.graph()),
            _ => None,
        }
    }
}

impl GraphStore for StoreBackend {
    fn num_vertices(&self) -> usize {
        match self {
            StoreBackend::Csr(s) => s.num_vertices(),
            StoreBackend::Compressed(s) => s.num_vertices(),
            StoreBackend::Mmap(s) => s.num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            StoreBackend::Csr(s) => s.num_edges(),
            StoreBackend::Compressed(s) => s.num_edges(),
            StoreBackend::Mmap(s) => s.num_edges(),
        }
    }

    fn degree(&self, v: VertexId) -> usize {
        match self {
            StoreBackend::Csr(s) => s.degree(v),
            StoreBackend::Compressed(s) => s.degree(v),
            StoreBackend::Mmap(s) => s.degree(v),
        }
    }

    fn row<'a>(&'a self, v: VertexId, scratch: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        match self {
            StoreBackend::Csr(s) => s.row(v, scratch),
            StoreBackend::Compressed(s) => s.row(v, scratch),
            StoreBackend::Mmap(s) => s.row(v, scratch),
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self {
            StoreBackend::Csr(s) => s.has_edge(u, v),
            StoreBackend::Compressed(s) => s.has_edge(u, v),
            StoreBackend::Mmap(s) => s.has_edge(u, v),
        }
    }

    fn kind(&self) -> StoreKind {
        match self {
            StoreBackend::Csr(s) => s.kind(),
            StoreBackend::Compressed(s) => s.kind(),
            StoreBackend::Mmap(s) => s.kind(),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            StoreBackend::Csr(s) => s.resident_bytes(),
            StoreBackend::Compressed(s) => s.resident_bytes(),
            StoreBackend::Mmap(s) => s.resident_bytes(),
        }
    }
}

/// Extracts the `k`-core of any store as a renumbered backend of
/// `kind.resident()` form, plus the `new id -> old id` mapping (ascending,
/// like [`crate::kcore_subgraph`]).
///
/// Rows are filtered, remapped and re-encoded one at a time, so the peak
/// transient is one row — an uncompressed copy of the reduced graph is
/// never materialised when the target form is compressed. That is what
/// keeps an out-of-core prepare's RAM footprint at the *reduced* working
/// set, not the input size.
pub fn kcore_backend<G: GraphStore + ?Sized>(
    g: &G,
    k: u32,
    kind: StoreKind,
) -> (StoreBackend, Vec<VertexId>) {
    let keep = crate::coreness::kcore_vertices(g, k);
    let mut remap = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        remap[old as usize] = new as u32;
    }
    let mut scratch = Vec::new();
    let mut filtered: Vec<VertexId> = Vec::new();
    // `keep` is ascending and so is each row, so the filtered+remapped row
    // stays strictly sorted (the remap is monotone on kept vertices).
    match kind.resident() {
        StoreKind::Csr => {
            let mut offsets = Vec::with_capacity(keep.len() + 1);
            let mut edges = Vec::new();
            offsets.push(0usize);
            for &old in &keep {
                for &w in g.row(old, &mut scratch) {
                    let nw = remap[w as usize];
                    if nw != u32::MAX {
                        edges.push(nw);
                    }
                }
                offsets.push(edges.len());
            }
            let graph = CsrGraph::from_parts(offsets, edges);
            (StoreBackend::Csr(CsrStore::new(graph)), keep)
        }
        _ => {
            let mut b = CompressedBuilder::new();
            for &old in &keep {
                filtered.clear();
                filtered.extend(
                    g.row(old, &mut scratch)
                        .iter()
                        .map(|&w| remap[w as usize])
                        .filter(|&nw| nw != u32::MAX),
                );
                b.push_row(&filtered);
            }
            (StoreBackend::Compressed(b.finish()), keep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kplex-store-{}-{tag}.kpx", std::process::id()))
    }

    fn rows_of<G: GraphStore>(s: &G) -> Vec<Vec<VertexId>> {
        let mut scratch = Vec::new();
        (0..s.num_vertices() as VertexId)
            .map(|v| s.row(v, &mut scratch).to_vec())
            .collect()
    }

    #[test]
    fn varint_roundtrip_edges() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, u32::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn store_kind_parse_label_roundtrip() {
        for kind in [StoreKind::Csr, StoreKind::Compressed, StoreKind::Mmap] {
            assert_eq!(StoreKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(StoreKind::parse("ram"), None);
        assert_eq!(StoreKind::Mmap.resident(), StoreKind::Compressed);
        assert_eq!(StoreKind::Csr.resident(), StoreKind::Csr);
    }

    #[test]
    fn compressed_store_matches_csr() {
        let g = gen::powerlaw_cluster(300, 4, 0.4, 11);
        let c = CompressedStore::from_graph(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(rows_of(&c), rows_of(&g));
        for v in g.vertices() {
            assert_eq!(GraphStore::degree(&c, v), g.degree(v));
        }
        for u in g.vertices().step_by(7) {
            for v in g.vertices().step_by(5) {
                assert_eq!(GraphStore::has_edge(&c, u, v), g.has_edge(u, v));
            }
        }
        assert!(
            GraphStore::resident_bytes(&c) < GraphStore::resident_bytes(&g),
            "varint rows should be smaller than CSR ({} vs {})",
            GraphStore::resident_bytes(&c),
            GraphStore::resident_bytes(&g)
        );
    }

    #[test]
    fn kpx_roundtrip_via_mmap() {
        let g = gen::barabasi_albert(200, 3, 5);
        let path = tmp_path("roundtrip");
        write_kpx(&g, &path).unwrap();
        let m = MmapStore::open(&path).unwrap();
        assert_eq!(m.num_vertices(), g.num_vertices());
        assert_eq!(m.num_edges(), g.num_edges());
        assert_eq!(rows_of(&m), rows_of(&g));
        for u in g.vertices().step_by(3) {
            for v in g.vertices().step_by(11) {
                assert_eq!(GraphStore::has_edge(&m, u, v), g.has_edge(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_store_is_not_resident() {
        // Only meaningful where the raw-mmap path exists; elsewhere the
        // owned fallback legitimately reports its full footprint.
        let g = gen::gnm(100, 400, 3);
        let path = tmp_path("resident");
        write_kpx(&g, &path).unwrap();
        let m = MmapStore::open(&path).unwrap();
        if matches!(m.backing, Backing::Mapped(_)) {
            assert_eq!(GraphStore::resident_bytes(&m), 0);
        } else {
            assert!(GraphStore::resident_bytes(&m) > 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_kpx_files_are_rejected() {
        let g = gen::gnm(60, 200, 9);
        let path = tmp_path("torn");
        write_kpx(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncated mid-edge-array: length check trips.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(MmapStore::open(&path).is_err());

        // Truncated inside the header.
        std::fs::write(&path, &full[..32]).unwrap();
        assert!(MmapStore::open(&path).is_err());

        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(MmapStore::open(&path).is_err());

        // Non-monotone row index.
        let mut bad = full.clone();
        let at = KPX_ALIGN + 8; // index[1]
        bad[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(MmapStore::open(&path).is_err());

        // The pristine bytes still open fine.
        std::fs::write(&path, &full).unwrap();
        assert!(MmapStore::open(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_header_fields_are_rejected() {
        // A crafted header whose n makes 8*(n+1) wrap in release builds:
        // n = 2^61 gives 8*(n+1) = 2^64 + 8 ≡ 8, so unchecked layout math
        // would compute a tiny file_len that the crafted offsets and file
        // length match exactly — and index() would then build a slice of
        // 2^61 + 1 u64s over a one-page mapping. The checked layout must
        // reject this before any slice is constructed.
        let path = tmp_path("overflow");
        let n: u64 = 1 << 61;
        let wrapped_edges_off = 2 * KPX_ALIGN as u64; // align_up(4096 + 8)
        let mut buf = vec![0u8; wrapped_edges_off as usize]; // m2 = 0
        buf[..8].copy_from_slice(KPX_MAGIC);
        buf[8..12].copy_from_slice(&KPX_VERSION.to_le_bytes());
        buf[16..24].copy_from_slice(&n.to_le_bytes());
        buf[24..32].copy_from_slice(&0u64.to_le_bytes());
        buf[32..40].copy_from_slice(&(KPX_ALIGN as u64).to_le_bytes());
        buf[40..48].copy_from_slice(&wrapped_edges_off.to_le_bytes());
        buf[48..56].copy_from_slice(&wrapped_edges_off.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(MmapStore::open(&path).is_err());

        // Same, with m2 chosen so 4*m2 wraps instead.
        let m2: u64 = 1 << 62;
        buf[16..24].copy_from_slice(&4u64.to_le_bytes()); // n = 4
        buf[24..32].copy_from_slice(&m2.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(MmapStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kpx_layout_overflow_returns_none() {
        assert!(kpx_layout(usize::MAX, 0).is_none());
        assert!(kpx_layout(usize::MAX / 8, 0).is_none());
        assert!(kpx_layout(0, usize::MAX / 2).is_none());
        assert!(kpx_layout(200, 4000).is_some());
    }

    #[test]
    fn empty_graph_kpx_roundtrip() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        let path = tmp_path("empty");
        write_kpx(&g, &path).unwrap();
        let m = MmapStore::open(&path).unwrap();
        assert_eq!(m.num_vertices(), 0);
        assert_eq!(m.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kcore_backend_matches_kcore_subgraph() {
        let g = gen::powerlaw_cluster(250, 5, 0.3, 21);
        for k in [0u32, 2, 4, 6] {
            let (want_g, want_map) = crate::coreness::kcore_subgraph(&g, k);
            for kind in [StoreKind::Csr, StoreKind::Compressed, StoreKind::Mmap] {
                let (backend, map) = kcore_backend(&g, k, kind);
                assert_eq!(map, want_map, "k={k} kind={kind}");
                assert_eq!(backend.num_vertices(), want_g.num_vertices());
                assert_eq!(backend.num_edges(), want_g.num_edges());
                assert_eq!(rows_of(&backend), rows_of(&want_g), "k={k} kind={kind}");
                assert_eq!(backend.kind(), kind.resident());
            }
        }
    }

    #[test]
    fn backend_from_graph_respects_resident_kind() {
        let g = gen::gnm(50, 120, 1);
        assert!(matches!(
            StoreBackend::from_graph(g.clone(), StoreKind::Csr),
            StoreBackend::Csr(_)
        ));
        assert!(matches!(
            StoreBackend::from_graph(g.clone(), StoreKind::Compressed),
            StoreBackend::Compressed(_)
        ));
        assert!(matches!(
            StoreBackend::from_graph(g, StoreKind::Mmap),
            StoreBackend::Compressed(_)
        ));
    }

    #[test]
    fn degeneracy_order_is_uniform_across_backends() {
        let g = gen::barabasi_albert(150, 4, 2);
        let path = tmp_path("degen");
        write_kpx(&g, &path).unwrap();
        let m = MmapStore::open(&path).unwrap();
        let c = CompressedStore::from_graph(&g);
        let a = GraphStore::degeneracy_order(&g);
        let b = c.degeneracy_order();
        let d = m.degeneracy_order();
        assert_eq!(a.order, b.order);
        assert_eq!(a.order, d.order);
        assert_eq!(a.core, b.core);
        assert_eq!(a.core, d.core);
        std::fs::remove_file(&path).ok();
    }
}
