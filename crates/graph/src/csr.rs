//! Compressed sparse row (CSR) representation of an undirected simple graph.
//!
//! This is the canonical at-rest representation for the enumeration pipeline:
//! neighbour lists are sorted and deduplicated, self-loops are dropped at
//! construction, and every edge is stored in both directions. Vertex ids are
//! dense `u32` in `0..n`.

use crate::error::GraphError;

/// Dense vertex identifier. The substrate renumbers all inputs to `0..n`.
pub type VertexId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Invariants (checked in debug builds, guaranteed by [`GraphBuilder`]):
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, non-decreasing,
/// * each neighbour list `neighbors(v)` is strictly increasing,
/// * no self loops, and `u ∈ neighbors(v) ⇔ v ∈ neighbors(u)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    edges: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an iterator of undirected edges.
    ///
    /// Self-loops are dropped and duplicate edges collapsed. Returns an error
    /// if any endpoint is `>= n`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Constructs directly from parts. `offsets`/`edges` must satisfy the CSR
    /// invariants documented on the type; this is checked in debug builds.
    pub(crate) fn from_parts(offsets: Vec<usize>, edges: Vec<VertexId>) -> Self {
        let g = Self { offsets, edges };
        debug_assert!(g.check_invariants().is_ok(), "CSR invariants violated");
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Adjacency test over the sorted neighbour list: a linear scan for short
    /// rows (branch-predictable, no division), binary search above
    /// [`Self::LINEAR_SCAN_MAX`].
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search the shorter list: worst-case degree can be huge on power-law
        // graphs while the other endpoint is usually low-degree.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let row = self.neighbors(a);
        if row.len() <= Self::LINEAR_SCAN_MAX {
            row.contains(&b)
        } else {
            row.binary_search(&b).is_ok()
        }
    }

    /// Rows at most this long are probed linearly by [`Self::has_edge`];
    /// longer rows use binary search (correct either way — rows are strictly
    /// sorted, an invariant [`Self::check_invariants`] enforces).
    pub const LINEAR_SCAN_MAX: usize = 16;

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of vertices with degree zero.
    pub fn isolated_count(&self) -> usize {
        self.vertices().filter(|&v| self.degree(v) == 0).count()
    }

    /// Extracts the subgraph induced by `keep` (any iterable of distinct
    /// vertex ids). Returns the new graph and the mapping `new id -> old id`
    /// (sorted ascending, so relative order is preserved).
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
        let mut ids: Vec<VertexId> = keep.to_vec();
        ids.sort_unstable();
        ids.dedup();
        // old id -> new id, dense lookup.
        let mut remap = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in ids.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut offsets = Vec::with_capacity(ids.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0usize);
        for &old in &ids {
            for &w in self.neighbors(old) {
                let nw = remap[w as usize];
                if nw != u32::MAX {
                    edges.push(nw);
                }
            }
            offsets.push(edges.len());
        }
        (CsrGraph::from_parts(offsets, edges), ids)
    }

    /// Validates all CSR invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.edges.len() {
            return Err(GraphError::Corrupt("offset bounds".into()));
        }
        for v in 0..n as VertexId {
            let ns = self.neighbors(v);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return Err(GraphError::Corrupt(format!(
                    "neighbors of {v} not strictly sorted"
                )));
            }
            for &w in ns {
                if w as usize >= n {
                    return Err(GraphError::Corrupt(format!(
                        "edge endpoint {w} out of range"
                    )));
                }
                if w == v {
                    return Err(GraphError::Corrupt(format!("self loop at {v}")));
                }
                if self.neighbors(w).binary_search(&v).is_err() {
                    return Err(GraphError::Corrupt(format!("asymmetric edge ({v},{w})")));
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder that tolerates duplicates, self-loops and arbitrary
/// insertion order, producing a canonical [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    pairs: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pairs: Vec::new(),
        }
    }

    /// Number of vertices declared.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge; self-loops are silently ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u as usize >= self.n || v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n: self.n,
            });
        }
        if u != v {
            self.pairs.push((u.min(v), u.max(v)));
        }
        Ok(())
    }

    /// Grows the vertex count (used by parsers that discover ids on the fly).
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v as usize >= self.n {
            self.n = v as usize + 1;
        }
    }

    /// Finalises into CSR form: sorts, dedups and mirrors every edge.
    pub fn build(mut self) -> CsrGraph {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.pairs {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0 as VertexId; acc];
        for &(u, v) in &self.pairs {
            edges[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            edges[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each mirrored half is filled in (u, v)-sorted order. The forward
        // half of a row is naturally sorted; the mirrored entries interleave,
        // so sort each row once.
        for v in 0..self.n {
            edges[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts(offsets, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; 3 hangs off 2.
        CsrGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(2, 3) && g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3) && !g.has_edge(3, 0));
    }

    #[test]
    fn has_edge_agrees_across_the_linear_binary_threshold() {
        // A star whose centre row is well past LINEAR_SCAN_MAX, so the probe
        // from a leaf scans linearly while the probe from the centre
        // binary-searches; both must agree with the edge set.
        let n = 3 * CsrGraph::LINEAR_SCAN_MAX;
        let g = CsrGraph::from_edges(n, (1..n as VertexId).map(|v| (0, v))).unwrap();
        assert!(g.degree(0) > CsrGraph::LINEAR_SCAN_MAX);
        for v in 1..n as VertexId {
            assert!(g.has_edge(0, v) && g.has_edge(v, 0));
        }
        assert!(!g.has_edge(1, 2) && !g.has_edge(2, 1));
    }

    #[test]
    fn check_invariants_rejects_unsorted_rows() {
        // has_edge's binary search (and the mmap format) lean on row
        // sortedness; pin that check_invariants actually enforces it by
        // assembling an out-of-order row behind the builder's back.
        let g = CsrGraph {
            offsets: vec![0, 2, 3, 4],
            edges: vec![2, 1, 0, 0], // row 0 is [2, 1]: symmetric but unsorted
        };
        let err = g.check_invariants().unwrap_err();
        assert!(err.to_string().contains("not strictly sorted"), "{err}");
    }

    #[test]
    fn duplicates_and_self_loops_collapse() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.isolated_count(), 1);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = CsrGraph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_densely() {
        let g = triangle_plus_pendant();
        let (sub, map) = g.induced_subgraph(&[3, 1, 2]);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges kept: (1,2) -> (0,1), (2,3) -> (1,2).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        sub.check_invariants().unwrap();
    }

    #[test]
    fn induced_subgraph_of_everything_is_identity() {
        let g = triangle_plus_pendant();
        let all: Vec<u32> = g.vertices().collect();
        let (sub, map) = g.induced_subgraph(&all);
        assert_eq!(sub, g);
        assert_eq!(map, all);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, []).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn builder_ensure_vertex_grows() {
        let mut b = GraphBuilder::new(0);
        b.ensure_vertex(4);
        b.add_edge(0, 4).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_edge(0, 4));
    }
}
