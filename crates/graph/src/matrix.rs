//! Dense adjacency matrix over bitset rows, for seed subgraphs.
//!
//! Section 4: "since G_i tends to be dense, it is efficient when G_i is
//! represented by an adjacency matrix". Rows are `u64`-word bitsets so the
//! common-neighbour counts of Theorems 5.13–5.15 and the k-plex filters of
//! Algorithm 3 are popcount loops.

use crate::bitset::BitSet;
use crate::csr::{CsrGraph, VertexId};

/// Symmetric boolean adjacency matrix with one [`BitSet`] row per vertex.
#[derive(Clone, Debug)]
pub struct AdjMatrix {
    rows: Vec<BitSet>,
    n: usize,
}

impl AdjMatrix {
    /// An empty (edgeless) matrix on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            rows: (0..n).map(|_| BitSet::new(n)).collect(),
            n,
        }
    }

    /// Re-dimensions the matrix to an edgeless one on `n` vertices,
    /// recycling the row bitsets (and keeping surplus rows pooled for later
    /// reuse). This is what lets one scratch matrix serve thousands of
    /// seed-subgraph builds without a `malloc` per row.
    pub fn reset(&mut self, n: usize) {
        for row in self.rows.iter_mut().take(n) {
            row.reset(n);
        }
        while self.rows.len() < n {
            self.rows.push(BitSet::new(n));
        }
        self.n = n;
    }

    /// Builds the matrix of a (small) CSR graph.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut m = Self::new(n);
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                m.rows[v as usize].insert(w as usize);
            }
        }
        m
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Inserts the undirected edge (u, v).
    #[inline]
    pub fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert_ne!(u, v, "self loop");
        self.rows[u].insert(v);
        self.rows[v].insert(u);
    }

    /// Removes the undirected edge (u, v).
    #[inline]
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        self.rows[u].remove(v);
        self.rows[v].remove(u);
    }

    /// Adjacency test.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].contains(v)
    }

    /// The neighbourhood row of `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &BitSet {
        &self.rows[v]
    }

    /// Degree of `v` (popcount of its row).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.rows[v].count()
    }

    /// `|N(u) ∩ N(v)|`.
    #[inline]
    pub fn common_neighbors(&self, u: usize, v: usize) -> usize {
        self.rows[u].intersection_count(&self.rows[v])
    }

    /// `|N(u) ∩ N(v) ∩ restrict|` — common neighbours inside a candidate set.
    #[inline]
    pub fn common_neighbors_in(&self, u: usize, v: usize, restrict: &BitSet) -> usize {
        self.rows[u].intersection_count3(&self.rows[v], restrict)
    }

    /// `|N(v) ∩ set|` — degree into an arbitrary vertex set.
    #[inline]
    pub fn degree_in(&self, v: usize, set: &BitSet) -> usize {
        self.rows[v].intersection_count(set)
    }

    /// Removes a vertex by clearing its row and column. Allocation-free:
    /// walks the row a word at a time instead of replacing it.
    pub fn isolate(&mut self, v: usize) {
        for wi in 0..self.rows[v].words().len() {
            let mut w = self.rows[v].words()[wi];
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                self.rows[wi * 64 + b].remove(v);
            }
        }
        self.rows[v].clear();
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.rows
            .iter()
            .take(self.n)
            .map(BitSet::count)
            .sum::<usize>()
            / 2
    }
}

/// Rectangular bit matrix: rows indexed by "outside" vertices, columns by the
/// seed-subgraph vertices. Used for the exclusive-set vertices that live
/// outside G_i (the `V'_i` part of Algorithm 2 line 9).
#[derive(Clone, Debug)]
pub struct RectBitMatrix {
    rows: Vec<BitSet>,
    cols: usize,
}

impl RectBitMatrix {
    /// `rows × cols` zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows: (0..rows).map(|_| BitSet::new(cols)).collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Sets cell (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        self.rows[r].insert(c);
    }

    /// Reads row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &BitSet {
        &self.rows[r]
    }
}

/// Builds the adjacency matrix of the subgraph induced by `vertices` of `g`,
/// where matrix index `i` corresponds to `vertices[i]`. `vertices` must be
/// duplicate-free.
pub fn induced_matrix(g: &CsrGraph, vertices: &[VertexId]) -> AdjMatrix {
    let mut index = std::collections::HashMap::with_capacity(vertices.len() * 2);
    for (i, &v) in vertices.iter().enumerate() {
        index.insert(v, i);
    }
    let mut m = AdjMatrix::new(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        for &w in g.neighbors(v) {
            if let Some(&j) = index.get(&w) {
                if i < j {
                    m.add_edge(i, j);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn from_graph_roundtrip() {
        let g = gen::gnm(40, 120, 3);
        let m = AdjMatrix::from_graph(&g);
        assert_eq!(m.num_edges(), g.num_edges());
        for u in g.vertices() {
            for v in g.vertices() {
                if u != v {
                    assert_eq!(m.has_edge(u as usize, v as usize), g.has_edge(u, v));
                }
            }
            assert_eq!(m.degree(u as usize), g.degree(u));
        }
    }

    #[test]
    fn common_neighbors_counts() {
        // 0 and 1 share neighbours {2, 3}.
        let g = CsrGraph::from_edges(5, [(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)]).unwrap();
        let m = AdjMatrix::from_graph(&g);
        assert_eq!(m.common_neighbors(0, 1), 2);
        let mut restrict = BitSet::new(5);
        restrict.insert(2);
        assert_eq!(m.common_neighbors_in(0, 1, &restrict), 1);
    }

    #[test]
    fn degree_in_set() {
        let g = gen::complete(6);
        let m = AdjMatrix::from_graph(&g);
        let mut set = BitSet::new(6);
        set.insert(1);
        set.insert(2);
        set.insert(3);
        assert_eq!(m.degree_in(0, &set), 3);
        assert_eq!(m.degree_in(1, &set), 2); // 1 not adjacent to itself
    }

    #[test]
    fn isolate_clears_row_and_column() {
        let g = gen::complete(4);
        let mut m = AdjMatrix::from_graph(&g);
        m.isolate(2);
        assert_eq!(m.degree(2), 0);
        for v in [0usize, 1, 3] {
            assert!(!m.has_edge(v, 2));
            assert_eq!(m.degree(v), 2);
        }
    }

    #[test]
    fn induced_matrix_respects_ordering() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let m = induced_matrix(&g, &[3, 1, 4]);
        // index 0 = vertex 3, index 1 = vertex 1, index 2 = vertex 4.
        assert!(m.has_edge(0, 1)); // 3-1
        assert!(m.has_edge(0, 2)); // 3-4
        assert!(!m.has_edge(1, 2)); // 1-4 absent
    }

    #[test]
    fn reset_recycles_to_an_edgeless_matrix() {
        let g = gen::complete(9);
        let mut m = AdjMatrix::from_graph(&g);
        assert_eq!(m.num_edges(), 36);
        // Shrink: surplus rows stay pooled but must not leak into counts.
        m.reset(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.num_edges(), 0);
        m.add_edge(0, 3);
        assert!(m.has_edge(3, 0));
        assert_eq!(m.num_edges(), 1);
        // Grow again: fresh rows appended, old ones re-zeroed.
        m.reset(6);
        assert_eq!(m.len(), 6);
        assert_eq!(m.num_edges(), 0);
        for v in 0..6 {
            assert_eq!(m.degree(v), 0);
            assert_eq!(m.row(v).capacity(), 6);
        }
    }

    #[test]
    fn rect_matrix_basics() {
        let mut r = RectBitMatrix::new(3, 10);
        r.set(0, 9);
        r.set(2, 0);
        assert!(r.row(0).contains(9));
        assert!(!r.row(1).contains(9));
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.num_cols(), 10);
    }
}
