//! LFR-style community benchmark generator (Lancichinetti–Fortunato–Radicchi).
//!
//! The standard benchmark for community-detection workloads: power-law
//! degree distribution, power-law community sizes, and a mixing parameter
//! `mu` controlling the fraction of each vertex's edges that leave its
//! community. The implementation is a faithful lightweight variant (degree
//! sequence via discrete power-law sampling, intra/inter edges wired by
//! configuration-model style matching with rejection).

use super::rng;
use crate::csr::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the LFR-style generator.
#[derive(Clone, Debug)]
pub struct LfrConfig {
    /// Number of vertices.
    pub n: usize,
    /// Average degree target.
    pub avg_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Power-law exponent of the degree distribution (typically 2–3).
    pub degree_exponent: f64,
    /// Smallest community.
    pub community_lo: usize,
    /// Largest community.
    pub community_hi: usize,
    /// Fraction of each vertex's edges that leave its community (0 = pure
    /// communities, 1 = no community structure).
    pub mu: f64,
}

impl Default for LfrConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            avg_degree: 10,
            max_degree: 50,
            degree_exponent: 2.5,
            community_lo: 10,
            community_hi: 30,
            mu: 0.2,
        }
    }
}

/// Generated graph plus its ground-truth communities.
#[derive(Clone, Debug)]
pub struct LfrGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Community id per vertex.
    pub community: Vec<u32>,
    /// Members of each community.
    pub members: Vec<Vec<VertexId>>,
}

/// Samples a discrete power-law value in `[lo, hi]` with exponent `gamma`
/// by inverse-transform sampling.
fn powerlaw_sample(r: &mut impl Rng, lo: usize, hi: usize, gamma: f64) -> usize {
    let lo_f = lo as f64;
    let hi_f = hi as f64 + 1.0;
    let a = 1.0 - gamma;
    let u: f64 = r.random();
    let x = (lo_f.powf(a) + u * (hi_f.powf(a) - lo_f.powf(a))).powf(1.0 / a);
    (x as usize).clamp(lo, hi)
}

/// Generates an LFR-style graph.
pub fn lfr(cfg: &LfrConfig, seed: u64) -> LfrGraph {
    assert!(cfg.community_lo >= 2 && cfg.community_lo <= cfg.community_hi);
    assert!(cfg.community_hi <= cfg.n);
    assert!((0.0..=1.0).contains(&cfg.mu));
    let mut r = rng(seed);
    let n = cfg.n;

    // --- degree sequence ----------------------------------------------------
    let lo_deg = (cfg.avg_degree / 2).max(1);
    let mut degree: Vec<usize> = (0..n)
        .map(|_| powerlaw_sample(&mut r, lo_deg, cfg.max_degree, cfg.degree_exponent))
        .collect();

    // --- community sizes ----------------------------------------------------
    let mut community_of = vec![u32::MAX; n];
    let mut members: Vec<Vec<VertexId>> = Vec::new();
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.shuffle(&mut r);
    let mut cursor = 0usize;
    while cursor < n {
        let want = powerlaw_sample(&mut r, cfg.community_lo, cfg.community_hi, 2.0);
        let size = want.min(n - cursor);
        let id = members.len() as u32;
        let mut group = Vec::with_capacity(size);
        for &v in &order[cursor..cursor + size] {
            community_of[v as usize] = id;
            group.push(v);
        }
        members.push(group);
        cursor += size;
    }
    // Merge a too-small tail community into the previous one.
    if members.len() >= 2 && members.last().is_some_and(|m| m.len() < cfg.community_lo) {
        let tail = members.pop().expect("nonempty");
        let target = members.len() as u32 - 1;
        for v in tail {
            community_of[v as usize] = target;
            let last = members.last_mut().expect("nonempty");
            last.push(v);
        }
    }

    // Cap intra-degree targets by community size (a vertex cannot have more
    // intra-community neighbours than |community| - 1).
    let mut intra_target = vec![0usize; n];
    let mut inter_target = vec![0usize; n];
    for v in 0..n {
        let c = community_of[v] as usize;
        let cap = members[c].len().saturating_sub(1);
        let intra = (((1.0 - cfg.mu) * degree[v] as f64).round() as usize).min(cap);
        intra_target[v] = intra;
        inter_target[v] = degree[v].saturating_sub(intra);
        degree[v] = intra_target[v] + inter_target[v];
    }

    // --- intra-community wiring (configuration model per community) ---------
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for group in &members {
        let mut stubs: Vec<VertexId> = Vec::new();
        for &v in group {
            for _ in 0..intra_target[v as usize] {
                stubs.push(v);
            }
        }
        stubs.shuffle(&mut r);
        let mut i = 0;
        while i + 1 < stubs.len() {
            if stubs[i] != stubs[i + 1] {
                edges.push((stubs[i], stubs[i + 1]));
            }
            i += 2;
        }
    }

    // --- inter-community wiring ----------------------------------------------
    let mut stubs: Vec<VertexId> = Vec::new();
    for (v, &target) in inter_target.iter().enumerate().take(n) {
        for _ in 0..target {
            stubs.push(v as u32);
        }
    }
    stubs.shuffle(&mut r);
    let mut i = 0;
    while i + 1 < stubs.len() {
        let (u, v) = (stubs[i], stubs[i + 1]);
        // Reject intra-community pairs: re-draw by skipping (keeps the run
        // O(n) with high probability for reasonable mu).
        if u != v && community_of[u as usize] != community_of[v as usize] {
            edges.push((u, v));
        }
        i += 2;
    }

    LfrGraph {
        graph: CsrGraph::from_edges(n, edges).expect("in range"),
        community: community_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communities_partition_the_vertices() {
        let g = lfr(&LfrConfig::default(), 42);
        assert_eq!(g.community.len(), 1000);
        assert!(g.community.iter().all(|&c| c != u32::MAX));
        let total: usize = g.members.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for (id, group) in g.members.iter().enumerate() {
            for &v in group {
                assert_eq!(g.community[v as usize], id as u32);
            }
        }
    }

    #[test]
    fn low_mu_keeps_edges_inside_communities() {
        let cfg = LfrConfig {
            mu: 0.1,
            ..LfrConfig::default()
        };
        let g = lfr(&cfg, 7);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.graph.edges() {
            if g.community[u as usize] == g.community[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Degree caps (community size - 1) push some edges of high-degree
        // hubs outward, so the realised mixing sits above the nominal mu;
        // a 2x margin still certifies strong community structure.
        assert!(intra > 2 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn high_mu_mixes_communities() {
        let cfg = LfrConfig {
            mu: 0.8,
            ..LfrConfig::default()
        };
        let g = lfr(&cfg, 7);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.graph.edges() {
            if g.community[u as usize] == g.community[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(inter > intra, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn degrees_stay_within_bounds() {
        let cfg = LfrConfig {
            n: 500,
            max_degree: 30,
            ..LfrConfig::default()
        };
        let g = lfr(&cfg, 3);
        // The configuration model can drop a few stubs, so only the upper
        // bound is strict.
        assert!(g.graph.max_degree() <= 30 + 1);
        assert!(g.graph.num_edges() > 500);
    }

    #[test]
    fn deterministic() {
        let cfg = LfrConfig::default();
        let a = lfr(&cfg, 11);
        let b = lfr(&cfg, 11);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
    }
}
