//! Planted k-plex generator.
//!
//! The paper's experiments mine graphs where large maximal k-plexes actually
//! exist (social communities, web link farms). Our stand-in datasets plant a
//! controllable number of "noisy cliques" — vertex sets where every member
//! misses at most `k-1` intra-set links — on top of an arbitrary background
//! graph, so (k, q) settings analogous to the paper's return non-trivial
//! result counts.

use super::rng;
use crate::csr::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`planted_plexes`].
#[derive(Clone, Debug)]
pub struct PlantedPlexConfig {
    /// Number of planted plexes.
    pub count: usize,
    /// Smallest planted plex size (inclusive).
    pub size_lo: usize,
    /// Largest planted plex size (inclusive).
    pub size_hi: usize,
    /// Every planted member misses at most `missing` intra-plex edges
    /// (excluding itself), i.e. the planted set is a `(missing+1)`-plex.
    pub missing: usize,
    /// If true, planted sets may share vertices (overlapping communities).
    pub overlap: bool,
}

impl Default for PlantedPlexConfig {
    fn default() -> Self {
        Self {
            count: 10,
            size_lo: 10,
            size_hi: 14,
            missing: 1,
            overlap: false,
        }
    }
}

/// What was planted, for test assertions.
#[derive(Clone, Debug)]
pub struct PlantedReport {
    /// The vertex sets of the planted plexes (sorted).
    pub plexes: Vec<Vec<VertexId>>,
}

/// Adds `cfg.count` noisy cliques to `background`, returning the combined
/// graph and the planted sets. Planting only *adds* edges, so the background
/// stays a subgraph of the result.
pub fn planted_plexes(
    background: &CsrGraph,
    cfg: &PlantedPlexConfig,
    seed: u64,
) -> (CsrGraph, PlantedReport) {
    let n = background.num_vertices();
    assert!(
        cfg.size_hi <= n && cfg.size_lo >= 2 && cfg.size_lo <= cfg.size_hi,
        "invalid planted sizes for n = {n}"
    );
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = background.edges().collect();
    let mut pool: Vec<VertexId> = (0..n as VertexId).collect();
    pool.shuffle(&mut r);
    let mut cursor = 0usize;
    let mut plexes = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let size = r.random_range(cfg.size_lo..=cfg.size_hi);
        let members: Vec<VertexId> = if cfg.overlap {
            let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
            ids.shuffle(&mut r);
            ids.truncate(size);
            ids
        } else {
            if cursor + size > pool.len() {
                break; // not enough disjoint vertices left
            }
            let m = pool[cursor..cursor + size].to_vec();
            cursor += size;
            m
        };
        // Build a clique, then remove up to `missing` edges per vertex while
        // tracking each vertex's deficit so the set stays a (missing+1)-plex.
        let mut present = vec![true; members.len() * members.len()];
        let idx = |i: usize, j: usize| i * members.len() + j;
        let mut deficit = vec![0usize; members.len()];
        let mut pairs: Vec<(usize, usize)> = (0..members.len())
            .flat_map(|i| (i + 1..members.len()).map(move |j| (i, j)))
            .collect();
        pairs.shuffle(&mut r);
        for (i, j) in pairs {
            if deficit[i] < cfg.missing && deficit[j] < cfg.missing && r.random_bool(0.35) {
                present[idx(i, j)] = false;
                deficit[i] += 1;
                deficit[j] += 1;
            }
        }
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if present[idx(i, j)] {
                    edges.push((members[i], members[j]));
                }
            }
        }
        let mut sorted = members;
        sorted.sort_unstable();
        plexes.push(sorted);
    }
    let g = CsrGraph::from_edges(n, edges).expect("in range");
    (g, PlantedReport { plexes })
}

/// Adds `count` dense random blobs to `background`: each blob is a vertex
/// set of size in `[size_lo, size_hi]` whose internal pairs are connected
/// independently with probability `p_edge`.
///
/// Unlike [`planted_plexes`], blobs give no plex guarantee — they are the
/// "organic" noisy communities of real social graphs, and they are what
/// makes maximal k-plex counts combinatorially large (the regime the paper's
/// Table 3 operates in). Blobs may overlap each other and the background.
pub fn dense_blobs(
    background: &CsrGraph,
    count: usize,
    size_lo: usize,
    size_hi: usize,
    p_edge: f64,
    seed: u64,
) -> CsrGraph {
    let n = background.num_vertices();
    assert!(size_hi <= n && size_lo >= 2 && size_lo <= size_hi);
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = background.edges().collect();
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    for _ in 0..count {
        let size = r.random_range(size_lo..=size_hi);
        ids.shuffle(&mut r);
        let members = &ids[..size];
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if r.random_bool(p_edge) {
                    edges.push((members[i], members[j]));
                }
            }
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{empty, gnm};

    fn is_kplex(g: &CsrGraph, set: &[VertexId], k: usize) -> bool {
        set.iter().all(|&u| {
            let inside = set.iter().filter(|&&v| v != u && g.has_edge(u, v)).count();
            inside + k >= set.len()
        })
    }

    #[test]
    fn planted_sets_are_valid_plexes() {
        let bg = empty(100);
        let cfg = PlantedPlexConfig {
            count: 5,
            size_lo: 8,
            size_hi: 12,
            missing: 1,
            overlap: false,
        };
        let (g, report) = planted_plexes(&bg, &cfg, 42);
        assert_eq!(report.plexes.len(), 5);
        for p in &report.plexes {
            assert!(is_kplex(&g, p, 2), "planted set {p:?} is not a 2-plex");
            assert!(p.len() >= 8 && p.len() <= 12);
        }
    }

    #[test]
    fn planting_preserves_background_edges() {
        let bg = gnm(60, 100, 1);
        let cfg = PlantedPlexConfig::default();
        let (g, _) = planted_plexes(&bg, &cfg, 2);
        for (u, v) in bg.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn disjoint_mode_produces_disjoint_sets() {
        let bg = empty(200);
        let cfg = PlantedPlexConfig {
            count: 8,
            size_lo: 10,
            size_hi: 10,
            missing: 2,
            overlap: false,
        };
        let (_, report) = planted_plexes(&bg, &cfg, 7);
        let mut seen = std::collections::HashSet::new();
        for p in &report.plexes {
            for &v in p {
                assert!(seen.insert(v), "vertex {v} appears in two planted sets");
            }
        }
    }

    #[test]
    fn overlapping_mode_allows_sharing() {
        let bg = empty(30);
        let cfg = PlantedPlexConfig {
            count: 10,
            size_lo: 10,
            size_hi: 12,
            missing: 1,
            overlap: true,
        };
        let (_, report) = planted_plexes(&bg, &cfg, 3);
        assert_eq!(report.plexes.len(), 10);
    }

    #[test]
    fn dense_blobs_add_density() {
        let bg = empty(100);
        let g = dense_blobs(&bg, 3, 10, 14, 0.9, 5);
        assert!(
            g.num_edges() > 3 * 35,
            "blobs too sparse: {}",
            g.num_edges()
        );
        assert!(g.max_degree() >= 8);
    }

    #[test]
    fn dense_blobs_preserve_background() {
        let bg = gnm(60, 100, 2);
        let g = dense_blobs(&bg, 2, 8, 10, 0.8, 3);
        for (u, v) in bg.edges() {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(dense_blobs(&bg, 2, 8, 10, 0.8, 3), g);
    }

    #[test]
    fn deterministic() {
        let bg = gnm(80, 150, 5);
        let cfg = PlantedPlexConfig::default();
        let (a, ra) = planted_plexes(&bg, &cfg, 11);
        let (b, rb) = planted_plexes(&bg, &cfg, 11);
        assert_eq!(a, b);
        assert_eq!(ra.plexes, rb.plexes);
    }
}
