//! Classic deterministic and random graph families.

use super::rng;
use crate::csr::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The empty graph on `n` vertices.
pub fn empty(n: usize) -> CsrGraph {
    CsrGraph::from_edges(n, []).expect("no edges")
}

/// The complete graph K_n.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// A simple path 0-1-…-(n-1).
pub fn path(n: usize) -> CsrGraph {
    let edges = (1..n as VertexId).map(|v| (v - 1, v));
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// A cycle on `n >= 3` vertices (or a path/empty graph for smaller n).
pub fn cycle(n: usize) -> CsrGraph {
    if n < 3 {
        return path(n);
    }
    let mut edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    edges.push((n as VertexId - 1, 0));
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// A star: vertex 0 connected to all others.
pub fn star(n: usize) -> CsrGraph {
    let edges = (1..n as VertexId).map(|v| (0, v));
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Turán graph T(n, r): complete multipartite with r near-equal parts. The
/// complement of a disjoint union of cliques; a useful extremal stress case
/// for k-plex bounds (every vertex misses exactly its own part).
pub fn turan(n: usize, r: usize) -> CsrGraph {
    assert!(r >= 1);
    let part = |v: usize| v % r;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if part(u) != part(v) {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Erdős–Rényi G(n, p): each pair independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut r = rng(seed);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if r.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Uniform random graph with exactly `m` distinct edges (rejection sampling;
/// requires `m <= n(n-1)/2`).
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_edges,
        "too many edges requested: {m} > {max_edges}"
    );
    let mut r = rng(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.random_range(0..n as VertexId);
        let v = r.random_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k < n / 2 || n == 0, "lattice degree too large");
    let mut r = rng(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if r.random_bool(beta) {
                // Rewire to a uniform random endpoint (self handled below).
                let mut w = r.random_range(0..n);
                if w == u {
                    w = (w + 1) % n;
                }
                edges.push((u as VertexId, w as VertexId));
            } else {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Relaxed-caveman / overlapping-community graph in the style of
/// collaboration networks (com-dblp): `communities` cliques of size drawn
/// from `[size_lo, size_hi]`, each vertex participating in one or two
/// communities, plus uniform noise edges.
pub fn caveman(
    n: usize,
    communities: usize,
    size_lo: usize,
    size_hi: usize,
    noise_edges: usize,
    seed: u64,
) -> CsrGraph {
    let mut r = rng(seed);
    let mut edges = Vec::new();
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    for _ in 0..communities {
        let size = r.random_range(size_lo..=size_hi).min(n);
        ids.shuffle(&mut r);
        let members = &ids[..size];
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                // Drop ~10% of intra-community links so communities are
                // k-plexes rather than cliques.
                if !r.random_bool(0.1) {
                    edges.push((members[i], members[j]));
                }
            }
        }
    }
    for _ in 0..noise_edges {
        let u = r.random_range(0..n as VertexId);
        let v = r.random_range(0..n as VertexId);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        let s = star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(cycle(2).num_edges(), 1);
    }

    #[test]
    fn turan_is_complete_multipartite() {
        let g = turan(6, 3); // parts {0,3},{1,4},{2,5}
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 4));
        assert!(g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(30, 100, 5);
        assert_eq!(g.num_edges(), 100);
        assert_eq!(g.num_vertices(), 30);
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn gnm_rejects_impossible_m() {
        gnm(3, 10, 0);
    }

    #[test]
    fn watts_strogatz_degree_sum() {
        let g = watts_strogatz(40, 3, 0.1, 2);
        // Each vertex contributes k edges; rewiring may collide, so m <= n*k.
        assert!(g.num_edges() <= 120);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn caveman_contains_dense_blocks() {
        let g = caveman(100, 8, 6, 10, 50, 3);
        // Average degree of community members should well exceed noise level.
        let max_deg = g.max_degree();
        assert!(
            max_deg >= 5,
            "expected dense communities, max degree {max_deg}"
        );
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(gnp(20, 0.3, 9), gnp(20, 0.3, 9));
        assert_eq!(gnm(20, 40, 9), gnm(20, 40, 9));
        assert_eq!(watts_strogatz(30, 2, 0.2, 9), watts_strogatz(30, 2, 0.2, 9));
        assert_eq!(caveman(50, 4, 5, 8, 20, 9), caveman(50, 4, 5, 8, 20, 9));
    }
}
