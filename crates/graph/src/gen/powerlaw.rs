//! Power-law / scale-free generators used as stand-ins for the SNAP social
//! and web graphs of Table 2.

use super::rng;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// existing vertices chosen proportionally to degree. Produces the heavy
/// degree tail characteristic of wiki-vote / soc-epinions style graphs.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m);
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is sampling proportional to degree.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Start from a star on m+1 vertices so early degrees are nonzero.
    for v in 1..=m as VertexId {
        edges.push((0, v));
        targets.push(0);
        targets.push(v);
    }
    for v in (m + 1) as VertexId..n as VertexId {
        let mut picked = Vec::with_capacity(m);
        let mut guard = 0;
        while picked.len() < m && guard < 50 * m {
            guard += 1;
            let t = targets[r.random_range(0..targets.len())];
            if t != v && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Holme–Kim power-law clustered graph: preferential attachment where each
/// attachment step is followed with probability `p_triangle` by a triad
/// closure (connect to a random neighbour of the previous target). This adds
/// the high local clustering of real social networks, which is what makes
/// large k-plexes exist at all.
pub fn powerlaw_cluster(n: usize, m: usize, p_triangle: f64, seed: u64) -> CsrGraph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut r = rng(seed);
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut targets: Vec<VertexId> = Vec::new();
    let add =
        |adj: &mut Vec<Vec<VertexId>>, targets: &mut Vec<VertexId>, u: VertexId, v: VertexId| {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            targets.push(u);
            targets.push(v);
        };
    for v in 1..=m as VertexId {
        add(&mut adj, &mut targets, 0, v);
    }
    for v in (m + 1) as VertexId..n as VertexId {
        let mut last_target: Option<VertexId> = None;
        let mut added = 0;
        let mut guard = 0;
        while added < m && guard < 100 * m {
            guard += 1;
            let do_triangle = last_target.is_some() && r.random_bool(p_triangle);
            let t = if do_triangle {
                let lt = last_target.unwrap();
                let nbrs = &adj[lt as usize];
                nbrs[r.random_range(0..nbrs.len())]
            } else {
                targets[r.random_range(0..targets.len())]
            };
            if t != v && !adj[v as usize].contains(&t) {
                add(&mut adj, &mut targets, v, t);
                last_target = Some(t);
                added += 1;
            }
        }
    }
    let mut edges = Vec::new();
    for (u, nbrs) in adj.iter().enumerate() {
        for &w in nbrs {
            if (u as VertexId) < w {
                edges.push((u as VertexId, w));
            }
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

/// Parameters of the recursive-matrix (R-MAT) generator, the model behind
/// many SNAP-style synthetic graphs. Probabilities must sum to ~1.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Number of (directed) edge samples; the undirected simple graph keeps
    /// fewer after dedup.
    pub edge_factor: usize,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // Graph500 defaults, skewed like web/internet topologies.
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale: 10,
            edge_factor: 16,
        }
    }
}

/// R-MAT generator: recursively partitions the adjacency matrix, landing each
/// sampled edge in quadrants with probabilities (a, b, c, 1-a-b-c). Produces
/// skewed, community-rich graphs similar to `as-skitter`/web crawls.
pub fn rmat(cfg: RmatConfig, seed: u64) -> CsrGraph {
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let mut r = rng(seed);
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d >= -1e-9, "quadrant probabilities exceed 1");
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..cfg.scale {
            let x: f64 = r.random();
            let (du, dv) = if x < cfg.a {
                (0, 0)
            } else if x < cfg.a + cfg.b {
                (0, 1)
            } else if x < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    CsrGraph::from_edges(n, edges).expect("in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_degree_tail_is_skewed() {
        let g = barabasi_albert(500, 3, 1);
        // Hub degree should far exceed the attachment parameter.
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
        // Every non-initial vertex attaches with m edges.
        assert!(g.num_edges() >= 3 * (500 - 4));
    }

    #[test]
    fn ba_is_connected_enough() {
        let g = barabasi_albert(100, 2, 7);
        assert_eq!(g.isolated_count(), 0);
    }

    #[test]
    fn powerlaw_cluster_has_triangles() {
        let g = powerlaw_cluster(300, 4, 0.8, 3);
        // Count triangles incident to the heaviest vertex.
        let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let nbrs = g.neighbors(hub);
        let mut tri = 0usize;
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                if g.has_edge(nbrs[i], nbrs[j]) {
                    tri += 1;
                }
            }
        }
        assert!(tri > 0, "expected clustering around hubs");
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(
            RmatConfig {
                scale: 8,
                edge_factor: 8,
                ..Default::default()
            },
            9,
        );
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 500);
        // Skew: the max degree should be much larger than average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 3.0 * avg);
    }

    #[test]
    fn powerlaw_generators_deterministic() {
        assert_eq!(barabasi_albert(200, 3, 5), barabasi_albert(200, 3, 5));
        assert_eq!(
            powerlaw_cluster(200, 3, 0.5, 5),
            powerlaw_cluster(200, 3, 0.5, 5)
        );
        let cfg = RmatConfig::default();
        assert_eq!(rmat(cfg, 5), rmat(cfg, 5));
    }
}
