//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 16 SNAP/LAW graphs which are not redistributable
//! here; these generators produce structural stand-ins (power-law social
//! graphs, overlapping-community collaboration graphs, locally dense web
//! graphs) at laptop scale. Every generator is a pure function of its
//! parameters and a `u64` seed, so all experiments are exactly repeatable.

mod classic;
mod lfr;
mod planted;
mod powerlaw;

pub use classic::{caveman, complete, cycle, empty, gnm, gnp, path, star, turan, watts_strogatz};
pub use lfr::{lfr, LfrConfig, LfrGraph};
pub use planted::{dense_blobs, planted_plexes, PlantedPlexConfig, PlantedReport};
pub use powerlaw::{barabasi_albert, powerlaw_cluster, rmat, RmatConfig};

use crate::csr::CsrGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the deterministic RNG used by all generators.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random graph drawn uniformly over simple graphs with exactly `m` edges
/// where every vertex additionally receives at least `min_degree` incident
/// edges if possible. Used as background noise around planted structures.
pub fn gnm_min_degree(n: usize, m: usize, min_degree: usize, seed: u64) -> CsrGraph {
    use rand::Rng;
    let mut r = rng(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m + n * min_degree);
    // First give each vertex `min_degree` random partners.
    for v in 0..n as u32 {
        for _ in 0..min_degree {
            let mut w = r.random_range(0..n as u32);
            if w == v {
                w = (w + 1) % n as u32;
            }
            if n > 1 {
                edges.push((v, w));
            }
        }
    }
    // Then top up with uniform random edges.
    while edges.len() < m {
        let u = r.random_range(0..n as u32);
        let v = r.random_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_min_degree_respects_floor() {
        let g = gnm_min_degree(50, 200, 2, 3);
        assert!(g.vertices().all(|v| g.degree(v) >= 2));
        assert!(g.num_edges() >= 100);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gnm_min_degree(40, 120, 1, 11);
        let b = gnm_min_degree(40, 120, 1, 11);
        assert_eq!(a, b);
    }
}
