//! # kplex-graph
//!
//! Graph substrate for the maximal k-plex enumeration system: CSR graphs,
//! core decomposition / degeneracy orderings, word-parallel bitsets and
//! adjacency matrices for dense seed subgraphs, two-hop extraction, synthetic
//! generators that stand in for the paper's SNAP/LAW datasets, and graph I/O.
//!
//! Everything in this crate is independent of the k-plex definition; it is
//! the layer the enumeration engine (in `kplex-core`) is built on.
//!
//! ```
//! use kplex_graph::{gen, GraphStats};
//!
//! // Deterministic generators: same parameters + seed, same graph.
//! let g = gen::complete(5);
//! assert_eq!((g.num_vertices(), g.num_edges()), (5, 10));
//! assert_eq!(gen::gnp(40, 0.3, 7), gen::gnp(40, 0.3, 7));
//!
//! let stats = GraphStats::compute(&g);
//! assert_eq!(stats.degeneracy, 4); // K5 is 4-degenerate
//! ```

#![deny(missing_docs)]

pub mod bitset;
pub mod components;
pub mod coreness;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod io_formats;
pub mod matrix;
pub mod stats;
pub mod store;
pub mod twohop;

pub use bitset::BitSet;
pub use components::{bfs_distances, connected_components, induced_diameter, Components};
pub use coreness::{
    core_decomposition, degeneracy_order_by_id, kcore_subgraph, kcore_vertices, CoreDecomposition,
};
pub use csr::{CsrGraph, GraphBuilder, VertexId};
pub use error::GraphError;
pub use matrix::{induced_matrix, AdjMatrix, RectBitMatrix};
pub use stats::GraphStats;
pub use store::{
    kcore_backend, write_kpx, CompressedBuilder, CompressedStore, CsrStore, GraphStore, MmapStore,
    StoreBackend, StoreKind,
};
pub use twohop::{Hop, TwoHopExtractor};
