//! Property-based tests for the graph substrate: the bitset against a
//! set-model oracle, CSR construction invariants, core decomposition
//! definitions, component labelling, I/O roundtrips, and the storage
//! backends (CSR / compressed / mmap) against each other.

use kplex_graph::{
    bfs_distances, connected_components, core_decomposition, degeneracy_order_by_id, io,
    io_formats, write_kpx, BitSet, CompressedStore, CsrGraph, GraphStore, StoreBackend,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

// --- bitset against a BTreeSet model ----------------------------------------

#[derive(Clone, Debug)]
enum BitOp {
    Insert(usize),
    Remove(usize),
    Clear,
}

fn arb_ops(universe: usize) -> impl Strategy<Value = Vec<BitOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..universe).prop_map(BitOp::Insert),
            (0..universe).prop_map(BitOp::Remove),
            Just(BitOp::Clear),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_behaves_like_btreeset(ops in arb_ops(200)) {
        let mut bits = BitSet::new(200);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                BitOp::Insert(i) => {
                    bits.insert(i);
                    model.insert(i);
                }
                BitOp::Remove(i) => {
                    bits.remove(i);
                    model.remove(&i);
                }
                BitOp::Clear => {
                    bits.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(bits.count(), model.len());
            prop_assert_eq!(bits.is_empty(), model.is_empty());
            prop_assert_eq!(bits.first(), model.iter().next().copied());
        }
        let collected: Vec<usize> = bits.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn bitset_algebra_matches_set_algebra(
        a in proptest::collection::btree_set(0usize..128, 0..40),
        b in proptest::collection::btree_set(0usize..128, 0..40),
    ) {
        let mut ba = BitSet::new(128);
        let mut bb = BitSet::new(128);
        for &x in &a { ba.insert(x); }
        for &x in &b { bb.insert(x); }
        prop_assert_eq!(ba.intersection_count(&bb), a.intersection(&b).count());
        prop_assert_eq!(ba.intersects(&bb), !a.is_disjoint(&b));
        prop_assert_eq!(ba.is_subset_of(&bb), a.is_subset(&b));
        let mut union = ba.clone();
        union.union_with(&bb);
        prop_assert_eq!(union.count(), a.union(&b).count());
        let mut diff = ba.clone();
        diff.difference_with(&bb);
        prop_assert_eq!(diff.count(), a.difference(&b).count());
    }
}

// --- CSR construction ---------------------------------------------------------

/// A unique scratch path per proptest case: cases run concurrently across
/// test threads, so a fixed name would race.
fn fresh_kpx_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    // ordering: a monotonically unique counter; no synchronization implied.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kplex-substrate-{}-{n}.kpx", std::process::id()))
}

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120)
            .prop_map(move |pairs| CsrGraph::from_edges(n, pairs).expect("in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_invariants_hold(g in arb_graph()) {
        g.check_invariants().expect("invariants");
        // Handshake lemma.
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // has_edge consistent with neighbour lists.
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                prop_assert!(g.has_edge(v, w));
                prop_assert!(g.has_edge(w, v));
                prop_assert_ne!(v, w);
            }
        }
    }

    #[test]
    fn core_numbers_satisfy_their_definition(g in arb_graph()) {
        let d = core_decomposition(&g);
        // Every vertex of the c-core subgraph has degree >= c within it.
        let dmax = d.degeneracy;
        for c in 1..=dmax {
            let members: Vec<u32> = g.vertices().filter(|&v| d.core[v as usize] >= c).collect();
            let set: BTreeSet<u32> = members.iter().copied().collect();
            for &v in &members {
                let inside = g.neighbors(v).iter().filter(|w| set.contains(w)).count();
                prop_assert!(
                    inside >= c as usize,
                    "vertex {v} has degree {inside} inside its {c}-core"
                );
            }
        }
        // Degeneracy ordering: every vertex has at most D later neighbours.
        for v in g.vertices() {
            let later = g.neighbors(v).iter().filter(|&&w| d.before(v, w)).count();
            prop_assert!(later <= d.degeneracy as usize);
        }
        // Both peeling implementations agree on core numbers.
        let d2 = degeneracy_order_by_id(&g);
        prop_assert_eq!(d.core, d2.core);
    }

    #[test]
    fn components_partition_and_respect_edges(g in arb_graph()) {
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.num_vertices());
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        // BFS from any vertex reaches exactly its component.
        if g.num_vertices() > 0 {
            let d = bfs_distances(&g, 0);
            for v in g.vertices() {
                prop_assert_eq!(
                    d[v as usize] != u32::MAX,
                    c.label[v as usize] == c.label[0]
                );
            }
        }
    }

    #[test]
    fn binary_and_text_roundtrips(g in arb_graph()) {
        let bytes = io::encode_binary(&g);
        prop_assert_eq!(&io::decode_binary(&bytes).expect("decode"), &g);

        let mut dimacs = Vec::new();
        io_formats::write_dimacs(&g, &mut dimacs).expect("write");
        prop_assert_eq!(&io_formats::parse_dimacs(dimacs.as_slice()).expect("parse"), &g);

        let mut metis = Vec::new();
        io_formats::write_metis(&g, &mut metis).expect("write");
        prop_assert_eq!(&io_formats::parse_metis(metis.as_slice()).expect("parse"), &g);
    }

    /// Every storage backend is an exact, byte-for-byte view of the same
    /// graph: identical vertex/edge counts, identical degrees, identical
    /// (sorted) neighbour rows, and an agreeing `has_edge` — for the
    /// compressed rows and for a `.kpx` file written and mapped back.
    #[test]
    fn storage_backends_agree_row_for_row(g in arb_graph()) {
        let compressed = CompressedStore::from_graph(&g);
        let path = fresh_kpx_path();
        write_kpx(&g, &path).expect("write .kpx");
        let mapped = StoreBackend::open_mmap(&path).expect("map .kpx");

        let stores: [&dyn GraphStore; 2] = [&compressed, &mapped];
        for s in stores {
            prop_assert_eq!(s.num_vertices(), g.num_vertices());
            prop_assert_eq!(s.num_edges(), g.num_edges());
            let mut scratch = Vec::new();
            for v in g.vertices() {
                prop_assert_eq!(s.degree(v), g.degree(v));
                prop_assert_eq!(s.row(v, &mut scratch), g.neighbors(v), "row of {}", v);
                for w in g.vertices() {
                    prop_assert_eq!(s.has_edge(v, w), g.has_edge(v, w));
                }
            }
            let d = core_decomposition(s);
            prop_assert_eq!(d.core, core_decomposition(&g).core);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(
        g in arb_graph(),
        selector in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let keep: Vec<u32> = g
            .vertices()
            .filter(|&v| selector.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, map) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.num_vertices(), keep.len());
        for a in 0..sub.num_vertices() as u32 {
            for b in 0..sub.num_vertices() as u32 {
                if a != b {
                    prop_assert_eq!(
                        sub.has_edge(a, b),
                        g.has_edge(map[a as usize], map[b as usize])
                    );
                }
            }
        }
    }
}
