//! Top-level sequential driver (Algorithm 2).
//!
//! `enumerate` wires the full pipeline together: shrink the input to its
//! (q−k)-core (Theorem 3.5), compute the degeneracy ordering, build one seed
//! subgraph per seed vertex, split it into initial sub-tasks, and run the
//! branch-and-bound searcher on each. The [`prepare`]/[`run_seed`] pieces are
//! public so the parallel runtime (crate `kplex-parallel`) and the baselines
//! can reuse them.

use crate::branch::Searcher;
use crate::config::{AlgoConfig, Params};
use crate::pairs::PairMatrix;
use crate::seed::{SeedBuilder, SeedGraph};
use crate::sink::{CollectSink, CountSink, PlexSink, SinkFlow};
use crate::stats::SearchStats;
use crate::subtask::collect_subtasks;
use kplex_graph::{
    core_decomposition, kcore_backend, CoreDecomposition, GraphStore, StoreBackend, VertexId,
};

/// The preprocessed problem: core-reduced graph plus its degeneracy ordering.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The (q−k)-core of the input, densely renumbered, resident as the
    /// backend the input's [`StoreKind::resident`] rule selects (CSR inputs
    /// stay CSR; compressed and mmap inputs keep the working set compressed).
    ///
    /// [`StoreKind::resident`]: kplex_graph::StoreKind::resident
    pub graph: StoreBackend,
    /// Reduced id -> original id (strictly increasing).
    pub map: Vec<VertexId>,
    /// Core decomposition of the reduced graph.
    pub decomp: CoreDecomposition,
}

/// Applies Theorem 3.5 and computes the degeneracy ordering. Accepts any
/// [`GraphStore`] backend; the reduced rows are streamed straight into the
/// resident form, so an out-of-core input is never copied uncompressed.
pub fn prepare<G: GraphStore + ?Sized>(g: &G, params: Params) -> Prepared {
    let shrink_to = (params.q - params.k) as u32;
    let (graph, map) = kcore_backend(g, shrink_to, g.kind());
    let decomp = core_decomposition(&graph);
    Prepared { graph, map, decomp }
}

/// A sink adapter translating reduced ids back to the caller's ids. The
/// reduction map is strictly increasing, so sortedness is preserved.
pub struct MapSink<'a> {
    inner: &'a mut dyn PlexSink,
    map: &'a [VertexId],
    buf: Vec<VertexId>,
}

impl<'a> MapSink<'a> {
    /// Wraps `inner` with the id translation `map`.
    pub fn new(inner: &'a mut dyn PlexSink, map: &'a [VertexId]) -> Self {
        Self {
            inner,
            map,
            buf: Vec::new(),
        }
    }
}

impl PlexSink for MapSink<'_> {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        self.buf.clear();
        self.buf
            .extend(vertices.iter().map(|&v| self.map[v as usize]));
        self.inner.report(&self.buf)
    }
}

/// Runs every sub-task of one seed graph sequentially. Returns `Stop` if the
/// sink aborted the enumeration.
pub fn run_seed(
    seed: &SeedGraph,
    params: Params,
    cfg: &AlgoConfig,
    sink: &mut dyn PlexSink,
    stats: &mut SearchStats,
) -> SinkFlow {
    stats.seed_graphs += 1;
    stats.seed_pruned_vertices += seed.pruned_vertices;
    let pairs = cfg.use_r2.then(|| PairMatrix::build(seed, params));
    let tasks = collect_subtasks(seed, params, cfg, pairs.as_ref(), stats);
    let mut searcher = Searcher::new(seed, params, cfg, pairs.as_ref());
    let mut flow = SinkFlow::Continue;
    for t in tasks {
        flow = searcher.run_task(t.p(), t.c(), t.x(), sink);
        if flow == SinkFlow::Stop {
            break;
        }
    }
    stats.merge(&searcher.stats);
    flow
}

/// Enumerates all maximal k-plexes of `g` with at least `q` vertices,
/// streaming them into `sink`. Returns the search statistics. Works over any
/// [`GraphStore`] backend.
pub fn enumerate<G: GraphStore + ?Sized>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
    sink: &mut dyn PlexSink,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let prep = prepare(g, params);
    let n = prep.graph.num_vertices();
    if n < params.q {
        return stats;
    }
    let mut builder = SeedBuilder::new(n);
    let mut msink = MapSink::new(sink, &prep.map);
    for &sv in &prep.decomp.order {
        let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) else {
            continue;
        };
        if run_seed(&seed, params, cfg, &mut msink, &mut stats) == SinkFlow::Stop {
            break;
        }
    }
    stats
}

/// Convenience: count results.
pub fn enumerate_count<G: GraphStore + ?Sized>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
) -> (u64, SearchStats) {
    let mut sink = CountSink::default();
    let stats = enumerate(g, params, cfg, &mut sink);
    (sink.count, stats)
}

/// Convenience: collect results in canonical (sorted) order.
pub fn enumerate_collect<G: GraphStore + ?Sized>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
) -> (Vec<Vec<VertexId>>, SearchStats) {
    let mut sink = CollectSink::default();
    let stats = enumerate(g, params, cfg, &mut sink);
    (sink.into_sorted(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{brute_force, naive_bron_kerbosch};
    use kplex_graph::gen;

    #[test]
    fn clique_enumeration() {
        let g = gen::complete(7);
        let params = Params::new(2, 4).unwrap();
        let (res, stats) = enumerate_collect(&g, params, &AlgoConfig::ours());
        assert_eq!(res, vec![vec![0, 1, 2, 3, 4, 5, 6]]);
        assert_eq!(stats.outputs, 1);
    }

    #[test]
    fn matches_brute_force_on_tiny_graphs() {
        for seed in 0..40 {
            let g = gen::gnp(12, 0.45, seed);
            for (k, q) in [(1, 3), (2, 3), (2, 4), (3, 5)] {
                let params = Params::new(k, q).unwrap();
                let expected = brute_force(&g, k, q);
                let (got, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
                assert_eq!(got, expected, "seed {seed} k {k} q {q}");
            }
        }
    }

    #[test]
    fn matches_naive_bk_on_mid_graphs() {
        for seed in 0..8 {
            let g = gen::gnp(28, 0.3, 100 + seed);
            for (k, q) in [(2, 4), (3, 5)] {
                let params = Params::new(k, q).unwrap();
                let expected = naive_bron_kerbosch(&g, k, q);
                let (got, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
                assert_eq!(got, expected, "seed {seed} k {k} q {q}");
            }
        }
    }

    #[test]
    fn all_variants_agree() {
        let variants = [
            AlgoConfig::ours(),
            AlgoConfig::ours_p(),
            AlgoConfig::ours_no_ub(),
            AlgoConfig::ours_fp_ub(),
            AlgoConfig::basic(),
            AlgoConfig::basic_r1(),
            AlgoConfig::basic_r2(),
        ];
        for seed in 0..6 {
            let g = gen::gnp(24, 0.4, 200 + seed);
            let params = Params::new(2, 4).unwrap();
            let (reference, _) = enumerate_collect(&g, params, &variants[0]);
            for (i, cfg) in variants.iter().enumerate().skip(1) {
                let (got, _) = enumerate_collect(&g, params, cfg);
                assert_eq!(got, reference, "variant {i} diverged on seed {seed}");
            }
        }
    }

    #[test]
    fn pruning_reduces_branch_calls() {
        let g = gen::powerlaw_cluster(150, 6, 0.7, 3);
        let params = Params::new(3, 6).unwrap();
        let (r_ours, s_ours) = enumerate_collect(&g, params, &AlgoConfig::ours());
        let (r_basic, s_basic) = enumerate_collect(&g, params, &AlgoConfig::basic());
        assert_eq!(r_ours, r_basic);
        assert!(
            s_ours.branch_calls <= s_basic.branch_calls,
            "pruning must not increase work: {} vs {}",
            s_ours.branch_calls,
            s_basic.branch_calls
        );
    }

    #[test]
    fn early_stop_via_sink() {
        let g = gen::gnp(20, 0.6, 5);
        let params = Params::new(2, 3).unwrap();
        let mut sink = crate::sink::FirstN::new(1);
        enumerate(&g, params, &AlgoConfig::ours(), &mut sink);
        assert_eq!(sink.plexes.len(), 1);
    }

    #[test]
    fn planted_plexes_are_found() {
        let bg = gen::gnm(120, 200, 9);
        let cfg = gen::PlantedPlexConfig {
            count: 4,
            size_lo: 9,
            size_hi: 11,
            missing: 1,
            overlap: false,
        };
        let (g, report) = gen::planted_plexes(&bg, &cfg, 77);
        let params = Params::new(2, 8).unwrap();
        let (res, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        // Every planted 2-plex must be contained in some reported plex.
        for planted in &report.plexes {
            let found = res.iter().any(|r| planted.iter().all(|v| r.contains(v)));
            assert!(found, "planted plex {planted:?} not covered by any result");
        }
    }

    #[test]
    fn empty_and_trivial_inputs() {
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        assert_eq!(enumerate_count(&gen::empty(0), params, &cfg).0, 0);
        assert_eq!(enumerate_count(&gen::empty(10), params, &cfg).0, 0);
        assert_eq!(enumerate_count(&gen::path(10), params, &cfg).0, 0);
    }
}
