//! k-plex predicates over the input graph (Definition 3.1), used by the
//! engine's output paths and by the test oracles.

use kplex_graph::{GraphStore, VertexId};

/// True iff `set` (distinct vertices) induces a k-plex in `g`: every member
/// is adjacent to all but at most `k` members (itself included).
pub fn is_kplex<G: GraphStore + ?Sized>(g: &G, set: &[VertexId], k: usize) -> bool {
    let need = set.len().saturating_sub(k);
    set.iter().all(|&u| degree_within(g, u, set) >= need)
}

/// Number of neighbours of `u` inside `set` (`u` itself not counted even if
/// present).
pub fn degree_within<G: GraphStore + ?Sized>(g: &G, u: VertexId, set: &[VertexId]) -> usize {
    // Iterate whichever side is smaller.
    if set.len() < g.degree(u) {
        set.iter().filter(|&&v| v != u && g.has_edge(u, v)).count()
    } else {
        let mut scratch = Vec::new();
        let row = g.row(u, &mut scratch);
        if set.windows(2).all(|w| w[0] < w[1]) {
            row.iter().filter(|w| set.binary_search(w).is_ok()).count()
        } else {
            let mut buf = set.to_vec();
            buf.sort_unstable();
            row.iter().filter(|w| buf.binary_search(w).is_ok()).count()
        }
    }
}

/// Finds a vertex outside `set` whose addition keeps the k-plex property, or
/// `None` if `set` is maximal. `set` must already be a k-plex.
pub fn find_extension<G: GraphStore + ?Sized>(
    g: &G,
    set: &[VertexId],
    k: usize,
) -> Option<VertexId> {
    debug_assert!(is_kplex(g, set, k));
    // A valid extension v must satisfy two conditions:
    //   (1) d_set(v) >= |set| + 1 - k,
    //   (2) v is adjacent to every saturated member (one already missing k).
    let saturated: Vec<VertexId> = set
        .iter()
        .copied()
        .filter(|&u| set.len() - degree_within(g, u, set) == k)
        .collect();
    let need = (set.len() + 1).saturating_sub(k);
    let mut in_set = vec![false; g.num_vertices()];
    for &u in set {
        in_set[u as usize] = true;
    }
    // Candidates must neighbour at least one member whenever need >= 1;
    // when need == 0 (tiny sets vs large k) every outside vertex qualifies
    // structurally, so scan all vertices in that case.
    let mut candidates: Vec<VertexId> = Vec::new();
    if need >= 1 {
        let mut scratch = Vec::new();
        for &u in set {
            candidates.extend_from_slice(g.row(u, &mut scratch));
        }
    } else {
        candidates.extend(0..g.num_vertices() as VertexId);
    }
    for v in candidates {
        if in_set[v as usize] {
            continue;
        }
        if degree_within(g, v, set) >= need && saturated.iter().all(|&u| g.has_edge(u, v)) {
            return Some(v);
        }
    }
    None
}

/// True iff `set` is a maximal k-plex in `g`.
pub fn is_maximal_kplex<G: GraphStore + ?Sized>(g: &G, set: &[VertexId], k: usize) -> bool {
    is_kplex(g, set, k) && find_extension(g, set, k).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_graph::gen;

    #[test]
    fn clique_is_kplex_for_all_k() {
        let g = gen::complete(5);
        let all: Vec<VertexId> = g.vertices().collect();
        for k in 1..=5 {
            assert!(is_kplex(&g, &all, k));
        }
        assert!(is_maximal_kplex(&g, &all, 1));
    }

    #[test]
    fn cycle_four_is_2plex_not_1plex() {
        let g = gen::cycle(4);
        let all = [0, 1, 2, 3];
        assert!(is_kplex(&g, &all, 2));
        assert!(!is_kplex(&g, &all, 1));
    }

    #[test]
    fn degree_within_handles_unsorted_sets() {
        let g = gen::complete(6);
        assert_eq!(degree_within(&g, 0, &[5, 3, 1]), 3);
        assert_eq!(degree_within(&g, 0, &[0, 1, 2]), 2);
    }

    #[test]
    fn extension_found_when_not_maximal() {
        let g = gen::complete(4);
        // {0,1,2} extends to {0,1,2,3} as a 1-plex.
        assert_eq!(find_extension(&g, &[0, 1, 2], 1), Some(3));
        assert!(!is_maximal_kplex(&g, &[0, 1, 2], 1));
    }

    #[test]
    fn saturated_member_blocks_extension() {
        // Path 0-1-2 plus vertex 3 adjacent to 1,2 only. {0,1,2} is a 2-plex
        // where 0 is saturated (misses 2 and itself). 3 is not adjacent to 0,
        // so {0,1,2} cannot take 3; it is maximal as a 2-plex iff no other
        // vertex extends it.
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert!(is_kplex(&g, &[0, 1, 2], 2));
        assert_eq!(find_extension(&g, &[0, 1, 2], 2), None);
        assert!(is_maximal_kplex(&g, &[0, 1, 2], 2));
    }

    use kplex_graph::CsrGraph;

    #[test]
    fn empty_and_singleton_sets() {
        let g = gen::path(3);
        assert!(is_kplex(&g, &[], 1));
        assert!(is_kplex(&g, &[1], 1));
        // Singleton {1} extends with 0 or 2 as a 1-plex? {1,0}: both need
        // degree >= 1 within the pair — edge exists, fine.
        assert!(find_extension(&g, &[1], 1).is_some());
    }

    #[test]
    fn need_zero_extension_scans_all_vertices() {
        // Two isolated vertices: {0} with k = 2 can absorb 1 even without an
        // edge (each misses one other + itself = 2 <= k).
        let g = CsrGraph::from_edges(2, []).unwrap();
        assert_eq!(find_extension(&g, &[0], 2), Some(1));
    }
}
