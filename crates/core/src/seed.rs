//! Seed subgraph construction (Algorithm 2 lines 4–6 and Corollary 5.2).
//!
//! For a seed vertex `v_i`, the seed subgraph `G_i` is the subgraph induced
//! by the vertices that (a) come at or after `v_i` in the degeneracy ordering
//! and (b) lie within two hops of `v_i` (Eq (1)). Because any k-plex of size
//! `>= q >= 2k-1` containing `v_i` has diameter at most two (Theorem 3.3),
//! `G_i` contains every plex whose η-minimal vertex is `v_i`.
//!
//! `G_i` is dense, so it is stored as an adjacency bitset matrix with local
//! ids (`0` is always the seed). Earlier vertices within two hops — needed
//! only as maximality witnesses — are kept outside the matrix as bitset rows
//! over the local columns (`xout`).

use crate::config::{AlgoConfig, Params};
use kplex_graph::matrix::AdjMatrix;
use kplex_graph::{BitSet, CoreDecomposition, GraphStore, RectBitMatrix, VertexId};

/// Encoding for exclusive-set entries: local vertices are plain indices,
/// outside vertices carry this flag over their `xout` row index.
pub const XOUT_FLAG: u32 = 1 << 31;

/// A fully materialised seed subgraph, ready for sub-task enumeration.
#[derive(Clone, Debug)]
pub struct SeedGraph {
    /// The seed vertex, as an id of the (reduced) input graph.
    pub seed: VertexId,
    /// Local id -> input-graph id; `verts[0] == seed`.
    pub verts: Vec<VertexId>,
    /// Local adjacency matrix of `G_i`.
    pub adj: AdjMatrix,
    /// Static degree `d_{G_i}(v)` of every local vertex.
    pub deg: Vec<u32>,
    /// Local ids adjacent to the seed (the initial candidate set `C_S`).
    pub hop1: Vec<u32>,
    /// Local ids at distance two from the seed within `G_i` — the pool the
    /// sub-task sets `S` are drawn from.
    pub hop2: Vec<u32>,
    /// Indicator of `hop1` over local ids.
    pub hop1_bits: BitSet,
    /// Earlier-ordered vertices within two hops (maximality witnesses only).
    pub xout: Vec<VertexId>,
    /// Adjacency of each `xout` vertex towards the local vertices.
    pub xout_rows: RectBitMatrix,
    /// Number of vertices Corollary 5.2 removed during construction.
    pub pruned_vertices: u64,
}

impl SeedGraph {
    /// Number of local vertices `|V_i|`.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True when only the seed itself remains.
    pub fn is_empty(&self) -> bool {
        self.verts.len() <= 1
    }
}

/// Reusable scratch for building seed subgraphs over one (reduced) graph.
///
/// Every per-build intermediate — the two-hop ball lists, the
/// pre-compaction adjacency matrix, the Corollary 5.2 pruning state — is
/// pooled here and recycled across builds, because on real workloads the
/// builder runs for thousands of eligible seeds that end up rejected: a
/// `malloc` per matrix row per attempt used to dominate the whole
/// sequential pipeline. Only the structures moved into the returned
/// [`SeedGraph`] are freshly allocated, and only for seeds that survive.
pub struct SeedBuilder {
    /// input id -> local id (u32::MAX = absent); reset after each build.
    map: Vec<u32>,
    touched: Vec<VertexId>,
    // --- pooled per-build scratch ---
    later: Vec<VertexId>,
    earlier: Vec<VertexId>,
    verts: Vec<VertexId>,
    adj: AdjMatrix,
    alive: BitSet,
    seed_row: BitSet,
    check: Vec<u32>,
    old_to_new: Vec<u32>,
    /// Input-graph-sized indicator of the seed's later neighbours, used by
    /// the pre-matrix common-neighbour gate. Cleared after every build.
    gate_mark: BitSet,
    /// Pooled row-decode scratch for [`GraphStore::row`]. Zero-copy backends
    /// never touch these; compressed backends decode into them, and pooling
    /// keeps that to at most two live rows with no per-build allocation.
    row_a: Vec<VertexId>,
    row_b: Vec<VertexId>,
}

impl SeedBuilder {
    /// Scratch for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            map: vec![u32::MAX; n],
            touched: Vec::new(),
            later: Vec::new(),
            earlier: Vec::new(),
            verts: Vec::new(),
            adj: AdjMatrix::new(0),
            alive: BitSet::new(0),
            seed_row: BitSet::new(0),
            check: Vec::new(),
            old_to_new: Vec::new(),
            gate_mark: BitSet::new(n),
            row_a: Vec::new(),
            row_b: Vec::new(),
        }
    }

    /// Builds the seed subgraph for `seed`, or `None` when it provably cannot
    /// host a plex of size `q` (too few vertices or too few seed neighbours).
    /// Accepts any [`GraphStore`] backend: each raw row the build touches is
    /// read (and, for compressed backends, decoded) exactly once, into the
    /// builder's pooled scratch.
    pub fn build<G: GraphStore + ?Sized>(
        &mut self,
        g: &G,
        decomp: &CoreDecomposition,
        seed: VertexId,
        params: Params,
        cfg: &AlgoConfig,
    ) -> Option<SeedGraph> {
        // Detach the row scratch so rows can stay borrowed while the rest of
        // the builder state is mutated.
        let mut row_a = std::mem::take(&mut self.row_a);
        let mut row_b = std::mem::take(&mut self.row_b);
        let out = self.build_inner(g, decomp, seed, params, cfg, &mut row_a, &mut row_b);
        self.row_a = row_a;
        self.row_b = row_b;
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn build_inner<G: GraphStore + ?Sized>(
        &mut self,
        g: &G,
        decomp: &CoreDecomposition,
        seed: VertexId,
        params: Params,
        cfg: &AlgoConfig,
        row_a: &mut Vec<VertexId>,
        row_b: &mut Vec<VertexId>,
    ) -> Option<SeedGraph> {
        let (k, q) = (params.k, params.q);
        // Cheap gate first: P must contain >= q - k seed neighbours (the
        // seed tolerates at most k - 1 non-neighbours besides itself), all
        // later in η. This rejects the vast majority of seeds in O(deg).
        let direct_later = g
            .row(seed, row_a)
            .iter()
            .filter(|&&w| decomp.before(seed, w))
            .count();
        if direct_later + k < q {
            return None;
        }

        // --- collect the two-hop ball, split by ordering position ---------
        // Two-hop expansion only walks through *later* hop-1 middles: any
        // plex member (or maximality witness) at distance two from the seed
        // shares a common neighbour *inside the plex*, and all plex members
        // other than the seed are later in η.
        let Self {
            map: mark,
            touched,
            later,
            earlier,
            ..
        } = self;
        later.clear();
        earlier.clear();
        mark[seed as usize] = 0;
        touched.push(seed);
        let mut visit = |v: VertexId| {
            if mark[v as usize] == u32::MAX {
                mark[v as usize] = 0; // provisional marker
                touched.push(v);
                if decomp.before(seed, v) {
                    later.push(v);
                } else {
                    earlier.push(v);
                }
            }
        };
        for &w in g.row(seed, row_a) {
            visit(w);
        }
        for &w in g.row(seed, row_a) {
            if !decomp.before(seed, w) {
                continue; // earlier middles cannot occur inside a plex
            }
            for &x in g.row(w, row_b) {
                if x != seed {
                    visit(x);
                }
            }
        }

        if 1 + self.later.len() < q {
            self.reset();
            return None;
        }

        self.later.sort_unstable();
        self.earlier.sort_unstable();

        // --- cheap common-neighbour gate (round 0 of Corollary 5.2) --------
        // Run against the raw CSR neighbourhoods *before* the local matrix
        // exists, so on hub seeds most of the ball dies before the
        // O(|ball|²) matrix build is paid. This reproduces the fixpoint's
        // first pass exactly — same thresholds, same ascending scan order,
        // and the same in-round cascade the matrix loop got from
        // `isolate`: a pruned seed neighbour stops counting as a common
        // neighbour for every vertex tested after it (`gate_mark` removal
        // below). Round-limited presets (FP, D2K use one threshold round)
        // therefore prune identically. Because the gate *is* round 0, the
        // matrix fixpoint starts at round 1 — outputs and pruning stats
        // are unchanged.
        let thr_adj = q as i64 - 2 * k as i64;
        let thr_two = q as i64 - 2 * k as i64 + 2;
        let mut pruned_vertices = 0u64;
        {
            let Self {
                gate_mark, later, ..
            } = self;
            for &w in g.row(seed, row_a) {
                if decomp.before(seed, w) {
                    gate_mark.insert(w as usize);
                }
            }
            let threshold_round = cfg.seed_prune_rounds > 0;
            let mut kept = 0;
            for i in 0..later.len() {
                let u = later[i];
                let adjacent = gate_mark.contains(u as usize);
                let common = g
                    .row(u, row_b)
                    .iter()
                    .filter(|&&w| gate_mark.contains(w as usize))
                    .count() as i64;
                let prune = if adjacent {
                    threshold_round && common < thr_adj
                } else {
                    k == 1 || common < 1 || (threshold_round && common < thr_two)
                };
                if prune {
                    pruned_vertices += 1;
                    gate_mark.remove(u as usize); // cascade within the round
                } else {
                    later[kept] = u;
                    kept += 1;
                }
            }
            later.truncate(kept);
            for &w in g.row(seed, row_a) {
                gate_mark.remove(w as usize);
            }
        }
        if 1 + self.later.len() < q {
            self.reset();
            return None;
        }

        // --- local matrix over {seed} ∪ later ------------------------------
        // Clear the provisional ball markers first so that earlier-ordered
        // vertices read as "absent" (u32::MAX) during the adjacency build.
        for &t in self.touched.iter() {
            self.map[t as usize] = u32::MAX;
        }
        self.verts.clear();
        self.verts.push(seed);
        self.verts.extend_from_slice(&self.later);
        for (i, &v) in self.verts.iter().enumerate() {
            self.map[v as usize] = i as u32;
        }
        let n_local = self.verts.len();
        self.adj.reset(n_local);
        for i in 0..n_local {
            let v = self.verts[i];
            for &w in g.row(v, row_a) {
                let j = self.map[w as usize];
                if j != u32::MAX && (j as usize) > i {
                    self.adj.add_edge(i, j as usize);
                }
            }
        }

        // --- Corollary 5.2 pruning to fixpoint -----------------------------
        // thresholds: adjacent to seed -> q - 2k; two hops -> q - 2k + 2.
        // Round 0 already ran as the pre-matrix gate above.
        self.alive.reset(n_local);
        self.alive.set_all();
        let mut round = 1usize;
        loop {
            let mut changed = false;
            // Current seed row restricted to alive.
            self.seed_row.assign_from(self.adj.row(0));
            self.seed_row.intersect_with(&self.alive);
            for u in 1..n_local {
                if !self.alive.contains(u) {
                    continue;
                }
                let adjacent = self.adj.has_edge(0, u);
                let common = self.adj.row(u).intersection_count(&self.seed_row) as i64;
                let prune = if adjacent {
                    // Structural: nothing extra (already at distance 1).
                    round < cfg.seed_prune_rounds && common < thr_adj
                } else {
                    // Structural: a two-hop vertex must share a later common
                    // neighbour with the seed (always required, Theorem 3.3),
                    // and for k = 1 plexes are cliques so two-hop vertices
                    // can never join the seed. Corollary 5.2 strengthens the
                    // threshold.
                    k == 1 || common < 1 || (round < cfg.seed_prune_rounds && common < thr_two)
                };
                if prune {
                    self.alive.remove(u);
                    self.adj.isolate(u);
                    pruned_vertices += 1;
                    changed = true;
                }
            }
            round += 1;
            if !changed {
                break;
            }
        }

        // --- compact into the final local numbering ------------------------
        self.check.clear();
        self.alive.collect_into(&mut self.check);
        let survivors = &self.check;
        debug_assert_eq!(survivors.first(), Some(&0), "seed must survive pruning");
        if survivors.len() < q {
            self.reset();
            return None;
        }
        let mut final_verts = Vec::with_capacity(survivors.len());
        self.old_to_new.clear();
        self.old_to_new.resize(n_local, u32::MAX);
        for (new, &old) in survivors.iter().enumerate() {
            self.old_to_new[old as usize] = new as u32;
            final_verts.push(self.verts[old as usize]);
        }
        let nf = final_verts.len();
        let mut fadj = AdjMatrix::new(nf);
        for (new, &old) in survivors.iter().enumerate() {
            for w in self.adj.row(old as usize).iter() {
                let nw = self.old_to_new[w];
                if nw != u32::MAX && (nw as usize) > new {
                    fadj.add_edge(new, nw as usize);
                }
            }
        }
        let deg: Vec<u32> = (0..nf).map(|v| fadj.degree(v) as u32).collect();
        let mut hop1 = Vec::new();
        let mut hop2 = Vec::new();
        let mut hop1_bits = BitSet::new(nf);
        for v in 1..nf {
            if fadj.has_edge(0, v) {
                hop1.push(v as u32);
                hop1_bits.insert(v);
            } else {
                hop2.push(v as u32);
            }
        }
        if hop1.len() + k < q {
            self.reset();
            return None;
        }

        // --- outside exclusive vertices ------------------------------------
        // Update the mark table to the final local numbering. Every touched
        // vertex (including the earlier-ordered ones, which carry the
        // provisional marker 0) must be cleared first, otherwise earlier
        // ball vertices masquerade as local id 0.
        for &v in self.touched.iter() {
            self.map[v as usize] = u32::MAX;
        }
        for (i, &v) in final_verts.iter().enumerate() {
            self.map[v as usize] = i as u32;
        }
        let mut xout: Vec<VertexId> = Vec::new();
        let mut rows: Vec<BitSet> = Vec::new();
        let need_deg = (q + 1).saturating_sub(k); // |N(x) ∩ P| >= q+1-k
        for xi in 0..self.earlier.len() {
            let x = self.earlier[xi];
            let mut row = BitSet::new(nf);
            for &w in g.row(x, row_a) {
                let lw = self.map[w as usize];
                if lw != u32::MAX {
                    row.insert(lw as usize);
                }
            }
            if cfg.prune_xout {
                if row.count() < need_deg {
                    continue;
                }
                let adjacent = row.contains(0);
                let common = row.intersection_count(&hop1_bits) as i64;
                let thr = if adjacent { thr_adj } else { thr_two };
                if common < thr.max(if adjacent { i64::MIN } else { 1 }) {
                    continue;
                }
            }
            xout.push(x);
            rows.push(row);
        }
        let mut xout_rows = RectBitMatrix::new(rows.len(), nf);
        for (r, row) in rows.iter().enumerate() {
            for c in row.iter() {
                xout_rows.set(r, c);
            }
        }

        self.reset();
        Some(SeedGraph {
            seed,
            verts: final_verts,
            adj: fadj,
            deg,
            hop1,
            hop2,
            hop1_bits,
            xout,
            xout_rows,
            pruned_vertices,
        })
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.map[v as usize] = u32::MAX;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_graph::{core_decomposition, gen, CsrGraph};

    fn build_all(g: &CsrGraph, params: Params, cfg: &AlgoConfig) -> Vec<SeedGraph> {
        let decomp = core_decomposition(g);
        let mut b = SeedBuilder::new(g.num_vertices());
        decomp
            .order
            .iter()
            .filter_map(|&s| b.build(g, &decomp, s, params, cfg))
            .collect()
    }

    #[test]
    fn clique_first_seed_contains_everything() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let first = decomp.order[0];
        let mut b = SeedBuilder::new(6);
        let sg = b.build(&g, &decomp, first, params, &cfg).unwrap();
        assert_eq!(sg.len(), 6);
        assert_eq!(sg.verts[0], first);
        assert_eq!(sg.hop1.len(), 5);
        assert!(sg.hop2.is_empty());
        assert!(sg.xout.is_empty());
        assert_eq!(sg.deg[0], 5);
    }

    #[test]
    fn later_seeds_keep_earlier_vertices_as_xout() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(6);
        // The second seed sees 4 later vertices + itself; the first seed is
        // an outside witness.
        let sg = b.build(&g, &decomp, decomp.order[1], params, &cfg);
        // |V_i| = 5 >= q = 4, so it builds.
        let sg = sg.unwrap();
        assert_eq!(sg.len(), 5);
        assert_eq!(sg.xout.len(), 1);
        assert_eq!(sg.xout[0], decomp.order[0]);
        // The witness is adjacent to every local vertex (clique).
        assert_eq!(sg.xout_rows.row(0).count(), 5);
    }

    #[test]
    fn small_seeds_are_rejected() {
        let g = gen::path(10);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        assert!(build_all(&g, params, &cfg).is_empty());
    }

    #[test]
    fn two_hop_vertices_without_common_neighbor_are_dropped() {
        // Star with center 8 (late id so the leaves come first in η? use
        // explicit construction): seed 0 adjacent to 1; 1 adjacent to 2; 2 is
        // two hops from 0 with exactly one common neighbour (vertex 1).
        // With q = 3, k = 1: thr_two = 3 - 2 + 2 = 3 > 1, so vertex 2 gets
        // pruned from seed 0's subgraph; the subgraph then dies (< q).
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let params = Params::new(1, 3).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(3);
        for s in g.vertices() {
            assert!(b.build(&g, &decomp, s, params, &cfg).is_none());
        }
    }

    #[test]
    fn pruning_disabled_keeps_structural_filter_only() {
        // Triangle 0-1-2 plus 2-3: vertex 3 is two hops from 0 via 2.
        // q = 3, k = 2: thr_two = 1, so even full pruning keeps 3 iff it has
        // one common neighbour — it does (vertex 2).
        let g = CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
        let params = Params::new(2, 3).unwrap();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(4);
        // The pendant vertex 3 peels first, so its seed graph holds all four
        // vertices: hop1 = {2}, hop2 = {0, 1} (each shares neighbour 2).
        let mut found = false;
        for s in g.vertices() {
            if let Some(sg) = b.build(&g, &decomp, s, params, &AlgoConfig::ours()) {
                if sg.len() == 4 {
                    found = true;
                    assert_eq!(sg.hop1.len(), 1);
                    assert_eq!(sg.hop2.len(), 2);
                }
            }
        }
        assert!(found, "expected one 4-vertex seed subgraph");
    }

    #[test]
    fn seed_graphs_cover_later_two_hop_ball() {
        let g = gen::gnp(40, 0.25, 3);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig {
            seed_prune_rounds: 0,
            prune_xout: false,
            ..AlgoConfig::ours()
        };
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(40);
        for s in g.vertices() {
            let Some(sg) = b.build(&g, &decomp, s, params, &cfg) else {
                continue;
            };
            // Every kept local vertex is later than the seed and within two
            // hops in G_i (hop1 or hop2 with a hop1 neighbour).
            assert_eq!(sg.verts[0], s);
            for (i, &v) in sg.verts.iter().enumerate().skip(1) {
                assert!(decomp.before(s, v));
                let i = i as u32;
                assert!(sg.hop1.contains(&i) || sg.hop2.contains(&i));
            }
            for &h2 in &sg.hop2 {
                let row = sg.adj.row(h2 as usize);
                assert!(row.intersection_count(&sg.hop1_bits) >= 1);
            }
            // Degrees match the matrix.
            for i in 0..sg.len() {
                assert_eq!(sg.deg[i] as usize, sg.adj.degree(i));
            }
        }
    }

    #[test]
    fn builder_scratch_is_clean_between_seeds() {
        let g = gen::gnm(30, 90, 1);
        let params = Params::new(2, 3).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b1 = SeedBuilder::new(30);
        for s in g.vertices() {
            let a = b1.build(&g, &decomp, s, params, &cfg);
            // A fresh builder only ever builds this seed; results must agree.
            let mut fresh = SeedBuilder::new(30);
            let c = fresh.build(&g, &decomp, s, params, &cfg);
            assert_eq!(a.map(|x| x.verts), c.map(|x| x.verts));
        }
    }
}
