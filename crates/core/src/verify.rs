//! Result-set verification.
//!
//! Independent validation of an enumeration output against the definition:
//! every set must be a k-plex, meet the size threshold, be maximal in the
//! input graph, satisfy the diameter-2 property of Theorem 3.3, and appear
//! exactly once. For small graphs the verifier can additionally certify
//! *completeness* against the naive Bron–Kerbosch oracle.
//!
//! This is the machinery behind `kplex verify` in the CLI and the deep
//! assertions in the integration tests; it deliberately shares no code with
//! the search engine.

use crate::naive::naive_bron_kerbosch;
use crate::plex::{degree_within, find_extension, is_kplex};
use kplex_graph::{induced_diameter, GraphStore, VertexId};
use std::collections::HashSet;

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The set has fewer than q vertices.
    TooSmall {
        /// Index in the result list.
        index: usize,
        /// Actual size.
        size: usize,
    },
    /// The set contains a repeated or out-of-range vertex.
    MalformedSet {
        /// Index in the result list.
        index: usize,
    },
    /// The set is not a k-plex: some member misses too many links.
    NotAPlex {
        /// Index in the result list.
        index: usize,
        /// The offending member.
        vertex: VertexId,
        /// Its in-set degree.
        degree: usize,
    },
    /// The set can be extended by `witness` and is therefore not maximal.
    NotMaximal {
        /// Index in the result list.
        index: usize,
        /// A vertex whose addition keeps the k-plex property.
        witness: VertexId,
    },
    /// The induced subgraph is disconnected or has diameter above two.
    DiameterViolation {
        /// Index in the result list.
        index: usize,
    },
    /// The same set appears twice.
    Duplicate {
        /// Index of the second occurrence.
        index: usize,
    },
    /// A maximal k-plex of size >= q is missing (completeness check only).
    Missing {
        /// The plex the result set failed to contain.
        plex: Vec<VertexId>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TooSmall { index, size } => {
                write!(f, "result #{index}: only {size} vertices")
            }
            Violation::MalformedSet { index } => {
                write!(f, "result #{index}: repeated or out-of-range vertex")
            }
            Violation::NotAPlex {
                index,
                vertex,
                degree,
            } => {
                write!(f, "result #{index}: vertex {vertex} has in-set degree {degree}, violating the k-plex bound")
            }
            Violation::NotMaximal { index, witness } => {
                write!(f, "result #{index}: extensible by vertex {witness}")
            }
            Violation::DiameterViolation { index } => {
                write!(
                    f,
                    "result #{index}: induced diameter exceeds 2 (or disconnected)"
                )
            }
            Violation::Duplicate { index } => write!(f, "result #{index}: duplicate set"),
            Violation::Missing { plex } => write!(f, "missing maximal k-plex {plex:?}"),
        }
    }
}

/// Verifies soundness of `results` (validity, maximality, dedup, diameter).
/// Returns all violations found (empty = verified).
pub fn verify_results<G: GraphStore + ?Sized>(
    g: &G,
    k: usize,
    q: usize,
    results: &[Vec<VertexId>],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut seen: HashSet<Vec<VertexId>> = HashSet::with_capacity(results.len() * 2);
    for (index, set) in results.iter().enumerate() {
        let mut canonical = set.clone();
        canonical.sort_unstable();
        canonical.dedup();
        if canonical.len() != set.len() || canonical.iter().any(|&v| v as usize >= g.num_vertices())
        {
            violations.push(Violation::MalformedSet { index });
            continue;
        }
        if !seen.insert(canonical.clone()) {
            violations.push(Violation::Duplicate { index });
            continue;
        }
        if set.len() < q {
            violations.push(Violation::TooSmall {
                index,
                size: set.len(),
            });
        }
        if !is_kplex(g, &canonical, k) {
            let (&vertex, degree) = canonical
                .iter()
                .map(|v| (v, degree_within(g, *v, &canonical)))
                .min_by_key(|&(_, d)| d)
                .expect("nonempty set");
            violations.push(Violation::NotAPlex {
                index,
                vertex,
                degree,
            });
            continue; // maximality is meaningless for a non-plex
        }
        if let Some(witness) = find_extension(g, &canonical, k) {
            violations.push(Violation::NotMaximal { index, witness });
        }
        if set.len() >= 2 * k - 1 && !matches!(induced_diameter(g, &canonical), Some(d) if d <= 2) {
            // None (disconnected) also violates Theorem 3.3 at this size.
            violations.push(Violation::DiameterViolation { index });
        }
    }
    violations
}

/// Verifies soundness *and completeness* by recomputing the answer with the
/// naive oracle. Only feasible for small graphs; panics above the cap.
pub fn verify_complete<G: GraphStore + ?Sized>(
    g: &G,
    k: usize,
    q: usize,
    results: &[Vec<VertexId>],
) -> Vec<Violation> {
    assert!(
        g.num_vertices() <= 200,
        "completeness verification is oracle-based; graph too large"
    );
    let mut violations = verify_results(g, k, q, results);
    let expected = naive_bron_kerbosch(g, k, q);
    let have: HashSet<Vec<VertexId>> = results
        .iter()
        .map(|s| {
            let mut c = s.clone();
            c.sort_unstable();
            c
        })
        .collect();
    for plex in expected {
        if !have.contains(&plex) {
            violations.push(Violation::Missing { plex });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::enumerate::enumerate_collect;
    use crate::Params;
    use kplex_graph::gen;

    #[test]
    fn engine_output_verifies_clean() {
        let g = gen::powerlaw_cluster(80, 4, 0.8, 3);
        let params = Params::new(2, 5).unwrap();
        let (res, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        assert!(!res.is_empty());
        let v = verify_complete(&g, 2, 5, &res);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn detects_non_maximal_sets() {
        let g = gen::complete(5);
        let v = verify_results(&g, 1, 3, &[vec![0, 1, 2]]);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::NotMaximal { witness, .. } if *witness < 5)));
    }

    #[test]
    fn detects_non_plexes() {
        let g = gen::path(5);
        let v = verify_results(&g, 1, 3, &[vec![0, 2, 4]]);
        assert!(v.iter().any(|x| matches!(x, Violation::NotAPlex { .. })));
    }

    #[test]
    fn detects_too_small_duplicates_and_malformed() {
        let g = gen::complete(6);
        let all: Vec<u32> = (0..6).collect();
        let v = verify_results(
            &g,
            1,
            7,
            &[all.clone(), all.clone(), vec![0, 0, 1], vec![99]],
        );
        assert!(v.iter().any(|x| matches!(x, Violation::TooSmall { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Duplicate { index: 1 })));
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::MalformedSet { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn detects_missing_results() {
        let g = gen::complete(6);
        // Claim there are no plexes: completeness flags the missing clique.
        let v = verify_complete(&g, 2, 4, &[]);
        assert!(matches!(&v[0], Violation::Missing { plex } if plex.len() == 6));
    }

    #[test]
    fn violations_have_readable_messages() {
        let g = gen::path(5);
        for v in verify_results(&g, 1, 3, &[vec![0, 2, 4]]) {
            assert!(!v.to_string().is_empty());
        }
    }
}
