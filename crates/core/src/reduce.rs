//! CTCP-style global graph reduction (an extension; the technique is due to
//! kPlexS \[12], reviewed in Section 2 of the paper).
//!
//! Theorem 3.5 already shrinks the input to its (q−k)-core. The second-order
//! property (Theorem 5.1, case ii) allows more: an edge can only appear
//! *inside* a k-plex with `>= q` vertices when its endpoints share at least
//! `q − 2k` common neighbours. CTCP alternates edge pruning on that rule
//! with core peeling until a fixpoint, producing a subgraph no larger than
//! the plain core reduction — often much smaller at high q.
//!
//! Subtlety: removing an edge is only sound when the *endpoint pair* cannot
//! co-occur, and a maximality witness outside a plex still needs the edge…
//! it does not: a witness x for plex P means P ∪ {x} is itself a plex with
//! `>= q + 1` vertices, so every pair inside P ∪ {x} satisfies the same
//! thresholds. Hence mining on the CTCP-reduced graph reports exactly the
//! maximal k-plexes of the original graph (validated against the oracle in
//! the tests below).

use crate::config::Params;
use kplex_graph::{
    core_decomposition, kcore_vertices, GraphBuilder, GraphStore, StoreBackend, VertexId,
};

/// Outcome of the reduction.
#[derive(Clone, Debug)]
pub struct CtcpReduction {
    /// The reduced, densely renumbered graph, resident as the backend the
    /// input's [`StoreKind::resident`] rule selects.
    ///
    /// [`StoreKind::resident`]: kplex_graph::StoreKind::resident
    pub graph: StoreBackend,
    /// Reduced id -> original id (strictly increasing).
    pub map: Vec<VertexId>,
    /// Rounds until fixpoint.
    pub rounds: usize,
    /// Edges removed by the common-neighbour rule (across all rounds).
    pub edges_removed: usize,
}

/// Applies CTCP to `g` for the given parameters. Accepts any [`GraphStore`]
/// backend: the initial core peel streams each raw row once, so only the
/// (q−k)-core working set is ever materialised uncompressed — never a full
/// copy of an out-of-core input.
pub fn ctcp_reduce<G: GraphStore + ?Sized>(g: &G, params: Params) -> CtcpReduction {
    let k = params.k as i64;
    let q = params.q as i64;
    let core_floor = (q - k).max(0) as u32;
    let edge_thr = q - 2 * k; // common neighbours required under an edge

    // Round 0: peel straight off the backend before the in-RAM working copy
    // exists. The fixpoint loop below re-peels from scratch each round, so
    // starting from the already-peeled core changes nothing but peak memory.
    let keep = kcore_vertices(g, core_floor);
    let mut remap = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        remap[old as usize] = new as u32;
    }
    let mut current = {
        let mut b = GraphBuilder::new(keep.len());
        let mut scratch = Vec::new();
        for (new, &old) in keep.iter().enumerate() {
            for &w in g.row(old, &mut scratch) {
                let nw = remap[w as usize];
                if nw != u32::MAX && (new as u32) < nw {
                    b.add_edge(new as u32, nw).expect("ids in range");
                }
            }
        }
        b.build()
    };
    // map composition: current id -> original id.
    let mut map: Vec<VertexId> = keep;
    let mut rounds = 0usize;
    let mut edges_removed = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;

        // --- core peeling ------------------------------------------------
        let decomp = core_decomposition(&current);
        let keep: Vec<VertexId> = current
            .vertices()
            .filter(|&v| decomp.core[v as usize] >= core_floor)
            .collect();
        if keep.len() < current.num_vertices() {
            let (sub, submap) = current.induced_subgraph(&keep);
            map = submap.iter().map(|&v| map[v as usize]).collect();
            current = sub;
            changed = true;
        }

        // --- second-order edge pruning ------------------------------------
        if edge_thr > 0 {
            let mut b = GraphBuilder::new(current.num_vertices());
            let mut removed_here = 0usize;
            for (u, v) in current.edges() {
                // Sorted-list intersection.
                let (mut i, mut j, mut common) = (0usize, 0usize, 0i64);
                let nu = current.neighbors(u);
                let nv = current.neighbors(v);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            common += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if common >= edge_thr {
                    b.add_edge(u, v).expect("ids in range");
                } else {
                    removed_here += 1;
                }
            }
            if removed_here > 0 {
                current = b.build();
                edges_removed += removed_here;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    CtcpReduction {
        graph: StoreBackend::from_graph(current, g.kind()),
        map,
        rounds,
        edges_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::enumerate::enumerate_collect;
    use kplex_graph::{gen, CsrGraph};

    /// Mines on the reduced graph and maps ids back.
    fn mine_reduced(g: &CsrGraph, params: Params) -> Vec<Vec<VertexId>> {
        let red = ctcp_reduce(g, params);
        let (res, _) = enumerate_collect(&red.graph, params, &AlgoConfig::ours());
        let mut mapped: Vec<Vec<VertexId>> = res
            .into_iter()
            .map(|p| p.iter().map(|&v| red.map[v as usize]).collect())
            .collect();
        mapped.sort();
        mapped
    }

    #[test]
    fn reduction_is_lossless_on_random_graphs() {
        for seed in 0..10 {
            let g = gen::gnp(25, 0.4, 700 + seed);
            for (k, q) in [(2usize, 5usize), (3, 6)] {
                let params = Params::new(k, q).unwrap();
                let (direct, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
                let via_ctcp = mine_reduced(&g, params);
                assert_eq!(via_ctcp, direct, "seed {seed} k {k} q {q}");
            }
        }
    }

    #[test]
    fn reduction_shrinks_sparse_graphs() {
        // A big sparse graph with one dense pocket: CTCP should strip nearly
        // everything outside the pocket.
        let bg = gen::gnm(500, 700, 9);
        let cfg = gen::PlantedPlexConfig {
            count: 1,
            size_lo: 12,
            size_hi: 12,
            missing: 1,
            overlap: false,
        };
        let (g, _) = gen::planted_plexes(&bg, &cfg, 4);
        let params = Params::new(2, 10).unwrap();
        let red = ctcp_reduce(&g, params);
        assert!(
            red.graph.num_vertices() <= 60,
            "expected strong reduction, kept {}",
            red.graph.num_vertices()
        );
        // And the planted plex survives.
        let via = mine_reduced(&g, params);
        assert!(!via.is_empty());
    }

    #[test]
    fn reduction_never_beats_correctness_at_low_q() {
        // q = 2k - 1 means edge_thr <= 0: only core peeling applies.
        let g = gen::powerlaw_cluster(80, 4, 0.7, 5);
        let params = Params::new(2, 3).unwrap();
        let red = ctcp_reduce(&g, params);
        assert_eq!(red.edges_removed, 0);
        let (direct, _) = enumerate_collect(&g, params, &AlgoConfig::ours());
        assert_eq!(mine_reduced(&g, params), direct);
    }

    #[test]
    fn map_points_into_original_ids() {
        let g = gen::gnm(60, 200, 2);
        let params = Params::new(2, 6).unwrap();
        let red = ctcp_reduce(&g, params);
        assert!(red.map.windows(2).all(|w| w[0] < w[1]));
        for &orig in &red.map {
            assert!((orig as usize) < g.num_vertices());
        }
        // Edges of the reduced graph exist in the original (a CSR input
        // keeps its reduction resident as CSR).
        for (u, v) in red.graph.as_csr().expect("csr input").edges() {
            assert!(g.has_edge(red.map[u as usize], red.map[v as usize]));
        }
    }

    #[test]
    fn empty_result_when_core_dies() {
        let g = gen::path(40);
        let params = Params::new(2, 6).unwrap();
        let red = ctcp_reduce(&g, params);
        assert_eq!(red.graph.num_vertices(), 0);
    }
}
