//! The branch-and-bound search procedure (Algorithm 3), allocation-free
//! branch kernel.
//!
//! One engine implements every variant of the paper: the pivot selection of
//! lines 7–10, the re-picking of lines 15–16 (`Ours`), the FaPlexen multi-way
//! branching Eq (4)–(6) (`Ours_P` / ListPlex), the Eq (3) upper bound, the
//! FP sorting bound, and the pair-matrix filtering of rule R2. Flags on
//! [`AlgoConfig`] choose the combination.
//!
//! # The arena kernel
//!
//! The paper's speedups depend on the branch loop staying cheap inside the
//! dense seed subgraphs (Section 4), so the searcher's dynamic state lives in
//! **depth-indexed scratch arenas** with an undo journal instead of the
//! per-branch `Vec` clones of the legacy kernel (kept for comparison in
//! [`crate::branch_ref`]):
//!
//! * the candidate set `C` is a compact ascending array — the top segment of
//!   `c_arena` — mirrored by the `c_bits` indicator, which is kept in sync
//!   incrementally (pivot removals) and snapshotted word-wise into
//!   `bits_arena` whenever a frame tightens, so unwinding is a `memcpy`;
//! * the exclusive set `X` is a segmented stack in `x_arena`: tightening
//!   pushes a filtered child segment, exclude steps append the pivot to the
//!   current segment, and frame exit truncates;
//! * the lines 2–3 tightening pass is **word-parallel**: the candidate words
//!   are intersected with the saturated members' adjacency rows and the R2
//!   [`PairMatrix`] rows of the newly added vertices
//!   ([`kplex_graph::BitSet::intersect_rows`]), leaving only the per-vertex
//!   degree threshold as a scalar check;
//! * `added` vertex lists and multi-way `W`-lists live in their own arenas
//!   (`added_arena`, `w_arena`).
//!
//! Heap allocation therefore happens only when a branch is actually deferred
//! into a [`SavedTask`] (one buffer per save); the steady-state
//! include/exclude recursion allocates nothing, which
//! `crates/bench/tests/alloc_free.rs` asserts with a counting allocator. The
//! [`SearchStats::arena_recursions`] and [`SearchStats::tighten_words`]
//! counters expose the kernel's work.
//!
//! The searcher also supports the parallel runtime's straggler timeout
//! (Section 6): when a time budget is armed and exceeded, recursion sites
//! stop descending and instead package their child branches as [`SavedTask`]
//! values for re-queueing. The deadline clock is polled on the first and
//! every 64th recursion (and latched once hit), so small τ budgets do not
//! degenerate into an `Instant::now` per branch.

use crate::bounds::{ub_fp_sorting, ub_support, BoundScratch};
use crate::config::{AlgoConfig, BranchingKind, Params, UpperBoundKind};
use crate::pairs::PairMatrix;
use crate::seed::{SeedGraph, XOUT_FLAG};
use crate::sink::{PlexSink, SinkFlow};
use crate::stats::SearchStats;
use kplex_graph::{BitSet, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The deadline clock is polled on the first and every `DEADLINE_STRIDE`-th
/// recursion; once it fires, the hit is latched and every further recursion
/// defers without touching the clock again.
const DEADLINE_STRIDE: u32 = 64;

/// An external stop flag ([`Searcher::set_stop_flag`]) is polled on every
/// `STOP_STRIDE`-th recursion, in addition to the always-on check in the
/// report path. Keeps cancellation latency bounded inside result-free
/// subtrees without paying an atomic load per branch.
const STOP_STRIDE: u32 = 64;

/// A branch packaged for deferred execution (timeout splitting, Section 6)
/// or initial sub-task dispatch.
///
/// The three sets share **one** heap buffer (`[P | C | X]`), so saving or
/// re-queueing a task costs a single allocation — tasks are cheap POD
/// snapshots. All ids are local to the seed subgraph; [`SavedTask::p`] lists
/// the full current plex, `X` entries may carry [`XOUT_FLAG`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedTask {
    buf: Vec<u32>,
    p_len: u32,
    c_len: u32,
}

impl SavedTask {
    /// Packs ⟨P, C, X⟩ into one buffer (single allocation).
    pub fn new(p: &[u32], c: &[u32], x: &[u32]) -> Self {
        let mut buf = Vec::with_capacity(p.len() + c.len() + x.len());
        buf.extend_from_slice(p);
        buf.extend_from_slice(c);
        buf.extend_from_slice(x);
        Self {
            buf,
            p_len: p.len() as u32,
            c_len: c.len() as u32,
        }
    }

    /// Wraps an already-packed `[P | C | X]` buffer.
    pub(crate) fn from_buf(buf: Vec<u32>, p_len: u32, c_len: u32) -> Self {
        debug_assert!((p_len + c_len) as usize <= buf.len());
        Self { buf, p_len, c_len }
    }

    /// The plex built so far (local ids, includes the seed).
    #[inline]
    pub fn p(&self) -> &[u32] {
        &self.buf[..self.p_len as usize]
    }

    /// Remaining candidates (ascending local ids).
    #[inline]
    pub fn c(&self) -> &[u32] {
        &self.buf[self.p_len as usize..(self.p_len + self.c_len) as usize]
    }

    /// Exclusive set (local ids, or `XOUT_FLAG`-tagged outside row indices).
    #[inline]
    pub fn x(&self) -> &[u32] {
        &self.buf[(self.p_len + self.c_len) as usize..]
    }
}

/// Undo record for one arena frame: every length the frame extended and the
/// segment starts it replaced. Dropping the frame is truncate + `memcpy`.
struct FrameUndo {
    c_arena_len: usize,
    x_arena_len: usize,
    bits_len: usize,
    prev_c_start: usize,
    prev_x_start: usize,
}

/// Recursive searcher over one seed subgraph.
pub struct Searcher<'a> {
    seed: &'a SeedGraph,
    params: Params,
    cfg: &'a AlgoConfig,
    pairs: Option<&'a PairMatrix>,
    // Dynamic search state.
    p: Vec<u32>,
    d_p: Vec<u32>,
    p_bits: BitSet,
    /// Indicator of the current candidate segment (always in sync with it).
    c_bits: BitSet,
    pc_bits: BitSet,
    sat: Vec<u32>,
    scratch: BoundScratch,
    out_buf: Vec<VertexId>,
    // Depth-indexed arenas (see the module docs).
    c_arena: Vec<u32>,
    x_arena: Vec<u32>,
    added_arena: Vec<u32>,
    w_arena: Vec<u32>,
    /// Undo journal: word snapshots of `c_bits`, one per tightened frame.
    bits_arena: Vec<u64>,
    /// Start of the current candidate segment in `c_arena`.
    c_start: usize,
    /// Start of the current exclusive segment in `x_arena`.
    x_start: usize,
    // Word-parallel tighten scratch.
    tight_keep: BitSet,
    tight_pair: BitSet,
    /// Counters for this searcher (merge into run totals when done).
    pub stats: SearchStats,
    stop: bool,
    // Cooperative external cancellation (service jobs, global result caps).
    stop_flag: Option<Arc<AtomicBool>>,
    stop_tick: u32,
    // Timeout splitting.
    budget: Option<Duration>,
    deadline: Option<Instant>,
    deadline_tick: u32,
    deadline_hit: bool,
    saved: Vec<SavedTask>,
    /// When set, deferred branches are published here the moment they are
    /// split off instead of accumulating in `saved` — the parallel engine
    /// uses this to hand work to idle workers mid-task.
    spawn_hook: Option<Box<dyn FnMut(SavedTask) + 'a>>,
}

impl<'a> Searcher<'a> {
    /// Creates a searcher; `pairs` must be `Some` when `cfg.use_r2` is set.
    pub fn new(
        seed: &'a SeedGraph,
        params: Params,
        cfg: &'a AlgoConfig,
        pairs: Option<&'a PairMatrix>,
    ) -> Self {
        debug_assert!(!cfg.use_r2 || pairs.is_some(), "R2 requires a pair matrix");
        let n = seed.len();
        Self {
            seed,
            params,
            cfg,
            pairs: if cfg.use_r2 { pairs } else { None },
            p: Vec::with_capacity(64),
            d_p: vec![0; n],
            p_bits: BitSet::new(n),
            c_bits: BitSet::new(n),
            pc_bits: BitSet::new(n),
            sat: Vec::new(),
            scratch: BoundScratch::new(n),
            out_buf: Vec::new(),
            c_arena: Vec::with_capacity(4 * n),
            x_arena: Vec::with_capacity(4 * n),
            added_arena: Vec::with_capacity(n),
            w_arena: Vec::with_capacity(n),
            bits_arena: Vec::with_capacity(4 * n.div_ceil(64)),
            c_start: 0,
            x_start: 0,
            tight_keep: BitSet::new(n),
            tight_pair: BitSet::new(n),
            stats: SearchStats::default(),
            stop: false,
            stop_flag: None,
            stop_tick: 0,
            budget: None,
            deadline: None,
            deadline_tick: 0,
            deadline_hit: false,
            saved: Vec::new(),
            spawn_hook: None,
        }
    }

    /// Arms the straggler timeout: subsequent tasks split once they run
    /// longer than `budget` (`None` disables splitting).
    pub fn set_time_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
    }

    /// Arms an external stop flag: when raised (by another thread — a
    /// cancelled job, a globally capped sink), the search aborts
    /// cooperatively. The flag is checked on every report (so no result is
    /// delivered after cancellation) and polled every `STOP_STRIDE`-th
    /// recursion (so result-free subtrees also stop promptly, not only at
    /// task boundaries).
    pub fn set_stop_flag(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.stop_flag = flag;
    }

    /// Raises the size threshold q mid-search (used by maximum-k-plex
    /// solving: once a plex of size s is known, only plexes with at least
    /// s + 1 vertices are of interest). Lowering q is rejected — candidate
    /// sets may already have been pruned under the old threshold.
    pub fn raise_q(&mut self, q: usize) {
        assert!(q >= self.params.q, "q can only be tightened");
        self.params.q = q;
    }

    /// Current size threshold (see [`Searcher::raise_q`]).
    pub fn params_q(&self) -> usize {
        self.params.q
    }

    /// Takes the branches deferred by timeout splitting since the last call.
    /// Empty while a spawn hook is installed — deferred branches go to the
    /// hook instead.
    pub fn take_saved(&mut self) -> Vec<SavedTask> {
        std::mem::take(&mut self.saved)
    }

    /// Routes deferred branches to `hook` as they are split off, instead of
    /// accumulating them for [`Searcher::take_saved`]. The parallel engine
    /// installs a hook that publishes the branch to its scheduler
    /// immediately, so parked workers can pick a straggler's spill-off up
    /// *while the straggler is still running* rather than after its task
    /// ends. `None` restores the accumulate-and-take behaviour.
    pub fn set_spawn_hook(&mut self, hook: Option<Box<dyn FnMut(SavedTask) + 'a>>) {
        self.spawn_hook = hook;
    }

    /// Runs one task ⟨P, C, X⟩. `init_p` is the full plex-so-far (e.g.
    /// `{seed} ∪ S` for an initial sub-task, or a [`SavedTask::p`]); `c`
    /// must be strictly ascending (the set-enumeration order every task
    /// producer in this crate emits).
    pub fn run_task(
        &mut self,
        init_p: &[u32],
        c: &[u32],
        x: &[u32],
        sink: &mut dyn PlexSink,
    ) -> SinkFlow {
        debug_assert!(self.p.is_empty(), "searcher state must be clean");
        debug_assert!(
            c.windows(2).all(|w| w[0] < w[1]),
            "candidates must be strictly ascending"
        );
        // timing: one clock read per search entry to arm the deadline.
        self.deadline = self.budget.map(|b| Instant::now() + b);
        self.deadline_tick = 0;
        self.deadline_hit = false;
        // Seed the arenas: segment 0 is the task input.
        self.c_arena.clear();
        self.c_arena.extend_from_slice(c);
        self.x_arena.clear();
        self.x_arena.extend_from_slice(x);
        self.c_start = 0;
        self.x_start = 0;
        self.c_bits.clear();
        for &v in c {
            self.c_bits.insert(v as usize);
        }
        self.added_arena.clear();
        self.added_arena.extend_from_slice(init_p);
        self.branch(0, sink);
        self.added_arena.clear();
        debug_assert!(self.p.is_empty(), "unbalanced push/pop");
        debug_assert!(self.bits_arena.is_empty(), "unbalanced undo journal");
        if self.stop {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }

    // --- dynamic state maintenance -----------------------------------------

    fn push_p(&mut self, v: u32) {
        debug_assert!(!self.p_bits.contains(v as usize));
        self.p.push(v);
        self.p_bits.insert(v as usize);
        for w in self.seed.adj.row(v as usize).iter() {
            self.d_p[w] += 1;
        }
    }

    fn pop_p(&mut self, v: u32) {
        debug_assert_eq!(self.p.last(), Some(&v));
        self.p.pop();
        self.p_bits.remove(v as usize);
        for w in self.seed.adj.row(v as usize).iter() {
            self.d_p[w] -= 1;
        }
    }

    fn pop_added(&mut self, added_start: usize, added_len: usize) {
        for i in (0..added_len).rev() {
            let v = self.added_arena[added_start + i];
            self.pop_p(v);
        }
    }

    /// Rebuilds `self.sat` = saturated members of P (those already missing k).
    fn collect_saturated(&mut self) {
        self.sat.clear();
        let psz = self.p.len();
        let k = self.params.k;
        for &u in &self.p {
            if psz - self.d_p[u as usize] as usize == k {
                self.sat.push(u);
            }
        }
    }

    /// Lines 2–3: snapshot `c_bits` into the undo journal, then filter `C`
    /// into a fresh compact segment. Two equivalent paths, chosen by a cost
    /// model per frame:
    ///
    /// * **word-parallel** (large C): intersect the candidate words with the
    ///   saturated members' adjacency rows and the added vertices' R2 rows,
    ///   leaving only the scalar degree threshold per surviving bit;
    /// * **scalar** (small C, the deep-tree common case): the per-vertex
    ///   admission test over the parent's compact segment, dropping losers
    ///   from `c_bits` individually — word work stays O(snapshot).
    ///
    /// Both test degree → saturation → R2 in the legacy order, so
    /// `pair_pruned` is identical either way. `X` is filtered per-entry (it
    /// is small) into a new segment. Returns the undo record.
    fn tighten(&mut self, added_start: usize) -> FrameUndo {
        let undo = FrameUndo {
            c_arena_len: self.c_arena.len(),
            x_arena_len: self.x_arena.len(),
            bits_len: self.bits_arena.len(),
            prev_c_start: self.c_start,
            prev_x_start: self.x_start,
        };
        self.collect_saturated();
        let need = (self.p.len() + 1).saturating_sub(self.params.k);
        // Journal the parent's candidate indicator (restored by memcpy).
        self.bits_arena.extend_from_slice(self.c_bits.words());
        // Cost model: the scalar path probes every parent candidate against
        // each saturation/R2 row; the word path touches every word of those
        // rows plus three full mask passes. Pick whichever reads less.
        let c_len = undo.c_arena_len - self.c_start;
        let nwords = self.c_bits.words().len();
        let rows = self.sat.len()
            + if self.pairs.is_some() {
                self.added_arena.len() - added_start
            } else {
                0
            };
        if c_len * (1 + rows) > nwords * (3 + rows) {
            let Self {
                c_bits,
                tight_keep,
                tight_pair,
                sat,
                seed,
                pairs,
                added_arena,
                c_arena,
                d_p,
                stats,
                ..
            } = self;
            // keep-mask: candidates adjacent to every saturated member.
            tight_keep.copy_from(c_bits);
            let mut words = 2 * nwords;
            words += tight_keep.intersect_rows(sat.iter().map(|&u| seed.adj.row(u as usize)));
            // pair-mask: additionally R2-compatible with every added vertex.
            tight_pair.copy_from(tight_keep);
            if let Some(pm) = *pairs {
                words += tight_pair
                    .intersect_rows(added_arena[added_start..].iter().map(|&a| pm.row(a)));
            }
            stats.tighten_words += words as u64;
            // Rebuild the compact segment (ascending) and its indicator,
            // applying the scalar degree threshold; candidates that pass the
            // degree and saturation gates but fail R2 are the pair-pruned
            // ones (the legacy kernel tested in exactly this order).
            c_bits.copy_from(tight_pair);
            for wi in 0..nwords {
                let mut w = tight_keep.words()[wi];
                let pw = tight_pair.words()[wi];
                while w != 0 {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    let v = wi * 64 + b as usize;
                    if (d_p[v] as usize) < need {
                        if (pw >> b) & 1 != 0 {
                            c_bits.remove(v);
                        }
                        continue;
                    }
                    if (pw >> b) & 1 != 0 {
                        c_arena.push(v as u32);
                    } else {
                        stats.pair_pruned += 1;
                    }
                }
            }
        } else {
            // Scalar path: same admission test the exclusive set uses. The
            // parent's compact segment may still list vertices its frame
            // already moved out of C (an included pivot, staged multi-way
            // removals) — the indicator is authoritative, so skip those.
            self.stats.tighten_words += nwords as u64; // the journal snapshot
            for i in self.c_start..undo.c_arena_len {
                let v = self.c_arena[i];
                if !self.c_bits.contains(v as usize) {
                    continue;
                }
                if self.keep_local(v, need, added_start) {
                    self.c_arena.push(v);
                } else {
                    self.c_bits.remove(v as usize);
                }
            }
        }
        // X: per-entry admission test into a fresh segment.
        let x_end = undo.x_arena_len;
        for i in self.x_start..x_end {
            let e = self.x_arena[i];
            if self.keep_x(e, need, added_start) {
                self.x_arena.push(e);
            }
        }
        self.c_start = undo.c_arena_len;
        self.x_start = x_end;
        undo
    }

    /// Unwinds one tightened frame: truncate the arenas and restore the
    /// parent's candidate indicator from the journal snapshot.
    fn untighten(&mut self, undo: FrameUndo) {
        self.c_arena.truncate(undo.c_arena_len);
        self.x_arena.truncate(undo.x_arena_len);
        self.c_start = undo.prev_c_start;
        self.x_start = undo.prev_x_start;
        let Self {
            c_bits, bits_arena, ..
        } = self;
        c_bits
            .words_mut()
            .copy_from_slice(&bits_arena[undo.bits_len..]);
        bits_arena.truncate(undo.bits_len);
    }

    /// k-plex admission test for a local vertex against the current P,
    /// plus R2 pair filtering against the newly added vertices. Used for the
    /// (small) exclusive set; candidates go through the word-parallel path.
    fn keep_local(&mut self, v: u32, need: usize, added_start: usize) -> bool {
        if (self.d_p[v as usize] as usize) < need {
            return false;
        }
        for &u in &self.sat {
            if !self.seed.adj.has_edge(u as usize, v as usize) {
                return false;
            }
        }
        if let Some(pm) = self.pairs {
            for i in added_start..self.added_arena.len() {
                let a = self.added_arena[i];
                if !pm.allowed(a, v) {
                    self.stats.pair_pruned += 1;
                    return false;
                }
            }
        }
        true
    }

    /// Same admission test for an exclusive-set entry (local or outside).
    fn keep_x(&mut self, entry: u32, need: usize, added_start: usize) -> bool {
        if entry & XOUT_FLAG == 0 {
            return self.keep_local(entry, need, added_start);
        }
        let row = self.seed.xout_rows.row((entry & !XOUT_FLAG) as usize);
        if row.intersection_count(&self.p_bits) < need {
            return false;
        }
        self.sat.iter().all(|&u| row.contains(u as usize))
    }

    /// Degree of a local vertex within P ∪ C (C given by `c_bits`).
    #[inline]
    fn deg_pc(&self, v: u32) -> usize {
        self.d_p[v as usize] as usize
            + self
                .seed
                .adj
                .row(v as usize)
                .intersection_count(&self.c_bits)
    }

    /// Removes `v` from the compact candidate segment, preserving the
    /// ascending order (`v` must be present). `c_bits` is updated by the
    /// caller, which may need the bit cleared earlier (include branch).
    fn remove_from_c_segment(&mut self, v: u32) {
        let pos = self.c_arena[self.c_start..]
            .binary_search(&v)
            .expect("pivot must be a candidate");
        self.c_arena.remove(self.c_start + pos);
    }

    // --- output paths -------------------------------------------------------

    /// Reports P (plus the whole candidate segment when `with_candidates`)
    /// through the sink, in input-graph ids.
    fn emit(&mut self, with_candidates: bool, sink: &mut dyn PlexSink) {
        let Self {
            out_buf,
            p,
            c_bits,
            seed,
            ..
        } = self;
        out_buf.clear();
        out_buf.extend(p.iter().map(|&v| seed.verts[v as usize]));
        if with_candidates {
            out_buf.extend(c_bits.iter().map(|i| seed.verts[i]));
        }
        out_buf.sort_unstable();
        // Report-path cancellation check: once the external flag is raised,
        // no further result leaves the kernel.
        if let Some(flag) = &self.stop_flag {
            // ordering: cancellation latch polled as a hint on the report
            // path; no data is transferred through the flag.
            if flag.load(Ordering::Relaxed) {
                self.stop = true;
                return;
            }
        }
        self.stats.outputs += 1;
        if sink.report(&self.out_buf) == SinkFlow::Stop {
            self.stop = true;
        }
    }

    // --- the branch procedure (Algorithm 3) ---------------------------------

    /// One branch frame: push the added vertices, tighten (when the frame
    /// grew P), run the kernel, then unwind the arenas and P. `added_start`
    /// indexes the segment of `added_arena` the caller pushed.
    fn branch(&mut self, added_start: usize, sink: &mut dyn PlexSink) {
        if self.stop || self.external_stop_due() {
            return;
        }
        self.stats.branch_calls += 1;
        let added_len = self.added_arena.len() - added_start;
        for i in 0..added_len {
            let v = self.added_arena[added_start + i];
            self.push_p(v);
        }
        // Lines 2–3 only strengthen when P grows, so exclude-only frames
        // (added empty) skip the pass — and need no undo record: their
        // in-place mutations are unwound by the nearest tightened ancestor.
        let undo = (added_len > 0).then(|| self.tighten(added_start));
        self.branch_kernel(sink);
        if let Some(u) = undo {
            self.untighten(u);
        }
        self.pop_added(added_start, added_len);
    }

    /// Lines 4–20, operating on the current arena segments.
    fn branch_kernel(&mut self, sink: &mut dyn PlexSink) {
        let k = self.params.k;
        let q = self.params.q;
        let psz = self.p.len();
        let c_len = self.c_arena.len() - self.c_start;

        // Lines 4–6: no candidates left.
        if c_len == 0 {
            if self.x_arena.len() == self.x_start && psz >= q {
                self.emit(false, sink);
            }
            return;
        }

        // Lines 7–10: pivot = min degree in G[P ∪ C], tie-broken by maximal
        // non-neighbour count in P, preferring P-side vertices. Ablation
        // configurations weaken the rule (see `PivotKind`); the minimum
        // degree itself is always tracked because the whole-set k-plex check
        // below depends on it.
        let mut best_key = (usize::MAX, i64::MIN, 2u8);
        let mut min_deg_pc = usize::MAX;
        let mut pivot = u32::MAX;
        let mut pivot_in_p = false;
        for idx in 0..psz + c_len {
            let (v, side) = if idx < psz {
                (self.p[idx], 0u8)
            } else {
                (self.c_arena[self.c_start + idx - psz], 1u8)
            };
            let d = self.deg_pc(v);
            min_deg_pc = min_deg_pc.min(d);
            let key = match self.cfg.pivot {
                crate::config::PivotKind::SaturationTieBreak => {
                    let dbar = psz as i64 - self.d_p[v as usize] as i64;
                    (d, -dbar, side)
                }
                // No saturation tie-break: keep the first min-degree vertex
                // of the P-then-C scan.
                crate::config::PivotKind::MinDegree => (d, 0, side),
                crate::config::PivotKind::FirstCandidate => (d, 0, side),
            };
            if key < best_key {
                best_key = key;
                pivot = v;
                pivot_in_p = side == 0;
            }
        }
        if self.cfg.pivot == crate::config::PivotKind::FirstCandidate {
            // Ignore the computed pivot entirely; branch on the first
            // candidate. The min-degree scan above still feeds the check.
            pivot = self.c_arena[self.c_start];
            pivot_in_p = false;
        }
        let pivot_orig = pivot;

        // Lines 11–14: if even the min-degree vertex tolerates P ∪ C, the
        // whole set is a k-plex — check maximality and stop this branch.
        if min_deg_pc + k >= psz + c_len {
            self.stats.whole_set_plex += 1;
            if psz + c_len >= q && self.whole_is_maximal() {
                self.emit(true, sink);
            }
            return;
        }

        // Lines 15–16 (or the Ours_P / ListPlex multi-way alternative).
        if pivot_in_p {
            if self.cfg.branching == BranchingKind::MultiWay {
                let w_start = self.w_arena.len();
                self.branch_multiway(pivot, w_start, sink);
                self.w_arena.truncate(w_start);
                return;
            }
            pivot = self.repick(pivot);
        }

        // Line 17: upper bound of any plex extending P ∪ {pivot} (Eq (3)).
        let ub = match self.cfg.upper_bound {
            UpperBoundKind::None => usize::MAX,
            UpperBoundKind::Ours => {
                let a = ub_support(
                    self.seed,
                    k,
                    &self.p,
                    &self.d_p,
                    pivot,
                    &self.c_bits,
                    &mut self.scratch,
                );
                a.min(self.seed.deg[pivot_orig as usize] as usize + k)
            }
            UpperBoundKind::FpSorting => {
                let a = ub_fp_sorting(
                    self.seed,
                    k,
                    &self.p,
                    &self.d_p,
                    pivot,
                    &self.c_bits,
                    &mut self.scratch,
                );
                a.min(self.seed.deg[pivot_orig as usize] as usize + k)
            }
        };

        // The pivot leaves C in both children (the indicator first — the
        // include child rebuilds its own segment from it; the compact
        // segment follows before the exclude child, which reads it raw).
        self.c_bits.remove(pivot as usize);

        // Lines 18–19: include branch (pruned when the bound falls below q).
        if ub >= q {
            let a_start = self.added_arena.len();
            self.added_arena.push(pivot);
            self.recurse_or_save(a_start, sink);
            self.added_arena.truncate(a_start);
        } else {
            self.stats.ub_pruned += 1;
        }

        // Line 20: exclude branch — a tail frame: it mutates the current
        // segments in place and is unwound by the nearest tightened
        // ancestor's `untighten`.
        if !self.stop {
            self.remove_from_c_segment(pivot);
            self.x_arena.push(pivot);
            let a_start = self.added_arena.len();
            self.recurse_or_save(a_start, sink);
        }
    }

    /// Lines 15–16: re-pick the pivot among the P-pivot's non-neighbours in
    /// C, with the same (min degree, max saturation) rule.
    fn repick(&self, p_pivot: u32) -> u32 {
        let psz = self.p.len();
        let mut best_key = (usize::MAX, i64::MIN);
        let mut best = u32::MAX;
        for i in self.c_start..self.c_arena.len() {
            let w = self.c_arena[i];
            if self.seed.adj.has_edge(p_pivot as usize, w as usize) {
                continue;
            }
            let d = self.deg_pc(w);
            let dbar = psz as i64 - self.d_p[w as usize] as i64;
            let key = (d, -dbar);
            if key < best_key {
                best_key = key;
                best = w;
            }
        }
        debug_assert_ne!(
            best,
            u32::MAX,
            "P-pivot must have a candidate non-neighbour"
        );
        best
    }

    /// FaPlexen branching Eq (4)–(6) for a pivot inside P. `w_start` marks
    /// the caller's `w_arena` watermark (the caller truncates it back).
    fn branch_multiway(&mut self, pivot: u32, w_start: usize, sink: &mut dyn PlexSink) {
        let k = self.params.k;
        let psz = self.p.len();
        let s_budget = k - (psz - self.d_p[pivot as usize] as usize);
        // W = non-neighbours of the pivot among the candidates, ascending.
        for i in self.c_start..self.c_arena.len() {
            let w = self.c_arena[i];
            if !self.seed.adj.has_edge(pivot as usize, w as usize) {
                self.w_arena.push(w);
            }
        }
        let w_len = self.w_arena.len() - w_start;
        debug_assert!(s_budget >= 1, "saturated P-pivots are caught earlier");
        debug_assert!(w_len > s_budget, "otherwise P ∪ C would have been a k-plex");
        // Branch i (1-based): include W[..i-1], exclude W[i-1]. A branch is
        // only viable if P ∪ W[..i-1] is still a k-plex; once a prefix turns
        // infeasible every later branch (which contains it) is empty, by the
        // hereditary property.
        for i in 1..=s_budget {
            if self.stop {
                return;
            }
            if i >= 2 && !self.prefix_is_plex(w_start, i - 1) {
                return;
            }
            let wi = self.w_arena[w_start + i - 1];
            // Branch i's candidate set is C \ W[..i]: drop w_i cumulatively.
            self.c_bits.remove(wi as usize);
            if i == 1 {
                // This child adds nothing to P, so it consumes the compact
                // segments directly — give it private arena copies and a
                // journal snapshot, exactly like a tightened frame.
                let undo = self.push_sibling_frame(wi);
                let a_start = self.added_arena.len();
                self.recurse_or_save(a_start, sink);
                self.untighten(undo);
            } else {
                // The child re-tightens from the indicator, so only `c_bits`
                // and the X segment top need to be staged.
                self.x_arena.push(wi);
                let a_start = self.added_arena.len();
                for j in 0..i - 1 {
                    let w = self.w_arena[w_start + j];
                    self.added_arena.push(w);
                }
                self.recurse_or_save(a_start, sink);
                self.added_arena.truncate(a_start);
                self.x_arena.pop();
            }
        }
        if self.stop || !self.prefix_is_plex(w_start, s_budget) {
            return;
        }
        // Final branch: include W[..s_budget]; the rest of W can never join
        // (the pivot saturates) and cannot witness non-maximality either.
        for j in s_budget..w_len {
            let w = self.w_arena[w_start + j];
            self.c_bits.remove(w as usize);
        }
        let a_start = self.added_arena.len();
        for j in 0..s_budget {
            let w = self.w_arena[w_start + j];
            self.added_arena.push(w);
        }
        self.recurse_or_save(a_start, sink);
        self.added_arena.truncate(a_start);
    }

    /// Pushes a private frame for a sibling branch that grows X but not P:
    /// copies of the current segments with `exclude` moved from C to X, plus
    /// a journal snapshot of the (already updated) candidate indicator.
    /// Undone with [`Searcher::untighten`].
    fn push_sibling_frame(&mut self, exclude: u32) -> FrameUndo {
        let undo = FrameUndo {
            c_arena_len: self.c_arena.len(),
            x_arena_len: self.x_arena.len(),
            bits_len: self.bits_arena.len(),
            prev_c_start: self.c_start,
            prev_x_start: self.x_start,
        };
        self.bits_arena.extend_from_slice(self.c_bits.words());
        for i in self.c_start..undo.c_arena_len {
            let v = self.c_arena[i];
            if v != exclude {
                self.c_arena.push(v);
            }
        }
        self.x_arena
            .extend_from_within(self.x_start..undo.x_arena_len);
        self.x_arena.push(exclude);
        self.c_start = undo.c_arena_len;
        self.x_start = undo.x_arena_len;
        undo
    }

    /// True iff `P ∪ W[w_start .. w_start + len]` is a k-plex. The prefix is
    /// small (at most k vertices), so the quadratic part is negligible.
    fn prefix_is_plex(&self, w_start: usize, len: usize) -> bool {
        let k = self.params.k;
        let prefix = &self.w_arena[w_start..w_start + len];
        for &u in &self.p {
            let mut miss = self.p.len() - self.d_p[u as usize] as usize; // self + P
            for &w in prefix {
                if !self.seed.adj.has_edge(u as usize, w as usize) {
                    miss += 1;
                }
            }
            if miss > k {
                return false;
            }
        }
        for (j, &w) in prefix.iter().enumerate() {
            let mut miss = 1 + (self.p.len() - self.d_p[w as usize] as usize);
            for (j2, &y) in prefix.iter().enumerate() {
                if j2 != j && !self.seed.adj.has_edge(w as usize, y as usize) {
                    miss += 1;
                }
            }
            if miss > k {
                return false;
            }
        }
        true
    }

    /// Maximality check of P ∪ C against X (Algorithm 3 line 12), over the
    /// current arena segments (`pc_bits = p_bits | c_bits`, word-parallel).
    fn whole_is_maximal(&mut self) -> bool {
        let k = self.params.k;
        let psz = self.p.len();
        let total = psz + (self.c_arena.len() - self.c_start);
        self.pc_bits.copy_from(&self.p_bits);
        self.pc_bits.union_with(&self.c_bits);
        // Saturated members of P ∪ C.
        self.sat.clear();
        for idx in 0..total {
            let v = if idx < psz {
                self.p[idx]
            } else {
                self.c_arena[self.c_start + idx - psz]
            };
            let d = self
                .seed
                .adj
                .row(v as usize)
                .intersection_count(&self.pc_bits);
            if total - d == k {
                self.sat.push(v);
            }
        }
        let need = (total + 1).saturating_sub(k);
        for i in self.x_start..self.x_arena.len() {
            let e = self.x_arena[i];
            let fits = if e & XOUT_FLAG == 0 {
                let d = self
                    .seed
                    .adj
                    .row(e as usize)
                    .intersection_count(&self.pc_bits);
                d >= need
                    && self
                        .sat
                        .iter()
                        .all(|&u| self.seed.adj.has_edge(u as usize, e as usize))
            } else {
                let row = self.seed.xout_rows.row((e & !XOUT_FLAG) as usize);
                row.intersection_count(&self.pc_bits) >= need
                    && self.sat.iter().all(|&u| row.contains(u as usize))
            };
            if fits {
                return false; // e extends P ∪ C: not maximal
            }
        }
        true
    }

    /// Recurse, unless the timeout budget is spent — then defer the branch
    /// as a [`SavedTask`] snapshot of the current arena state (the one
    /// allocation site of the search loop).
    fn recurse_or_save(&mut self, added_start: usize, sink: &mut dyn PlexSink) {
        if self.deadline_due() {
            self.save_current(added_start);
            return;
        }
        self.stats.arena_recursions += 1;
        self.branch(added_start, sink);
    }

    /// Amortized external-cancellation poll: load the shared flag on every
    /// [`STOP_STRIDE`]-th recursion and latch it into `self.stop`.
    #[inline]
    fn external_stop_due(&mut self) -> bool {
        let Some(flag) = &self.stop_flag else {
            return false;
        };
        self.stop_tick = self.stop_tick.wrapping_add(1);
        // ordering: cancellation latch polled every STOP_STRIDE recursions;
        // a slightly stale read only delays the stop by one stride.
        if self.stop_tick & (STOP_STRIDE - 1) == 0 && flag.load(Ordering::Relaxed) {
            self.stop = true;
            return true;
        }
        false
    }

    /// Amortized deadline test: poll the clock on the first and every
    /// [`DEADLINE_STRIDE`]-th recursion, and latch once hit.
    #[inline]
    fn deadline_due(&mut self) -> bool {
        let Some(dl) = self.deadline else {
            return false;
        };
        if self.deadline_hit {
            return true;
        }
        self.deadline_tick = self.deadline_tick.wrapping_add(1);
        // timing: amortized clock poll, one read per DEADLINE_STRIDE.
        if self.deadline_tick & (DEADLINE_STRIDE - 1) == 1 && Instant::now() > dl {
            self.deadline_hit = true;
            return true;
        }
        false
    }

    /// Packages the child branch ⟨P ∪ added, C, X⟩ at the current arena
    /// state into a single-buffer [`SavedTask`].
    fn save_current(&mut self, added_start: usize) {
        let added_len = self.added_arena.len() - added_start;
        let p_len = self.p.len() + added_len;
        let c_len = self.c_bits.count();
        let x_len = self.x_arena.len() - self.x_start;
        let mut buf = Vec::with_capacity(p_len + c_len + x_len);
        buf.extend_from_slice(&self.p);
        buf.extend_from_slice(&self.added_arena[added_start..]);
        self.c_bits.collect_into(&mut buf);
        buf.extend_from_slice(&self.x_arena[self.x_start..]);
        let snap = SavedTask::from_buf(buf, p_len as u32, c_len as u32);
        match &mut self.spawn_hook {
            Some(hook) => hook(snap),
            None => self.saved.push(snap),
        }
        self.stats.timeout_splits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Params;
    use crate::seed::{SeedBuilder, SeedGraph};
    use crate::sink::CollectSink;
    use kplex_graph::{core_decomposition, gen};
    use proptest::prelude::*;

    /// Minimal end-to-end run over one seed graph of a clique.
    #[test]
    fn clique_single_seed_finds_the_clique() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(6);
        let sg = b.build(&g, &decomp, decomp.order[0], params, &cfg).unwrap();
        let pm = PairMatrix::build(&sg, params);
        let mut searcher = Searcher::new(&sg, params, &cfg, Some(&pm));
        let mut sink = CollectSink::default();
        // Initial task: P = {seed}, C = hop1, X = hop2 (none) + xout (none).
        searcher.run_task(&[0], &sg.hop1, &[], &mut sink);
        let res = sink.into_sorted();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].len(), 6);
        assert_eq!(searcher.stats.outputs, 1);
        assert!(searcher.stats.arena_recursions > 0 || searcher.stats.branch_calls == 1);
    }

    #[test]
    fn timeout_splitting_defers_branches() {
        let g = gen::gnp(40, 0.4, 3);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(40);
        let Some(sg) = decomp
            .order
            .iter()
            .find_map(|&s| b.build(&g, &decomp, s, params, &cfg))
        else {
            return;
        };
        let pm = PairMatrix::build(&sg, params);
        let mut searcher = Searcher::new(&sg, params, &cfg, Some(&pm));
        searcher.set_time_budget(Some(Duration::from_nanos(1)));
        let mut sink = CollectSink::default();
        searcher.run_task(&[0], &sg.hop1.clone(), &[], &mut sink);
        // With a 1ns budget the first *polled* recursion (the very first,
        // by the stride-64 schedule) defers and the hit is latched, so every
        // later recursion defers too.
        let saved = searcher.take_saved();
        assert!(
            !saved.is_empty() || searcher.stats.branch_calls <= 2,
            "expected deferred branches"
        );
        for t in &saved {
            assert!(!t.p().is_empty());
            // The packed snapshot round-trips through its accessors.
            assert_eq!(
                t.p().len() + t.c().len() + t.x().len(),
                t.buf.len(),
                "buffer fully covered"
            );
        }
    }

    #[test]
    fn raised_stop_flag_suppresses_all_reports() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(6);
        let sg = b.build(&g, &decomp, decomp.order[0], params, &cfg).unwrap();
        let pm = PairMatrix::build(&sg, params);
        let mut searcher = Searcher::new(&sg, params, &cfg, Some(&pm));
        let flag = Arc::new(AtomicBool::new(true));
        searcher.set_stop_flag(Some(flag));
        let mut sink = CollectSink::default();
        let flow = searcher.run_task(&[0], &sg.hop1, &[], &mut sink);
        assert_eq!(flow, SinkFlow::Stop);
        assert!(sink.plexes.is_empty(), "no result may pass a raised flag");
        assert_eq!(searcher.stats.outputs, 0);
    }

    #[test]
    fn saved_task_accessors_partition_the_buffer() {
        let t = SavedTask::new(&[0, 3], &[5, 7, 9], &[2, 1 | XOUT_FLAG]);
        assert_eq!(t.p(), &[0, 3]);
        assert_eq!(t.c(), &[5, 7, 9]);
        assert_eq!(t.x(), &[2, 1 | XOUT_FLAG]);
    }

    /// Builds the first usable seed graph of a G(n, p) instance.
    fn any_seed(n: usize, p: f64, rng_seed: u64, params: Params) -> Option<SeedGraph> {
        let g = gen::gnp(n, p, rng_seed);
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(n);
        decomp
            .order
            .iter()
            .find_map(|&s| b.build(&g, &decomp, s, params, &cfg))
    }

    /// Full observable snapshot of the searcher's dynamic state.
    #[allow(clippy::type_complexity)]
    fn state_snapshot(
        s: &Searcher<'_>,
    ) -> (
        Vec<u32>,
        Vec<u32>,
        Vec<u32>,
        Vec<u32>,
        BitSet,
        BitSet,
        usize,
        usize,
        usize,
    ) {
        (
            s.p.clone(),
            s.d_p.clone(),
            s.c_arena.clone(),
            s.x_arena.clone(),
            s.p_bits.clone(),
            s.c_bits.clone(),
            s.c_start,
            s.x_start,
            s.bits_arena.len(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]
        /// The frame round-trip is exact: pushing an arbitrary candidate
        /// prefix into P, tightening, then unwinding restores `C`, `X`,
        /// `d_p`, both indicator bitsets, the segment starts and the undo
        /// journal bit-for-bit.
        fn push_tighten_undo_roundtrip(
            n in 10usize..32,
            p in 0.25f64..0.6,
            rng_seed in 0u64..500,
            take in 1usize..4,
        ) {
            let params = Params::new(2, 4).unwrap();
            let Some(sg) = any_seed(n, p, rng_seed, params) else {
                return Ok(());
            };
            let cfg = AlgoConfig::ours();
            let pm = PairMatrix::build(&sg, params);
            let mut s = Searcher::new(&sg, params, &cfg, Some(&pm));
            // Seed the arenas exactly like run_task for the initial task.
            s.c_arena.extend_from_slice(&sg.hop1);
            for &v in &sg.hop1 {
                s.c_bits.insert(v as usize);
            }
            s.x_arena.extend_from_slice(&sg.hop2);
            s.push_p(0);
            let before = state_snapshot(&s);

            // Frame: add up to `take` candidates to P, tighten, undo.
            let added_start = s.added_arena.len();
            let grab: Vec<u32> = sg.hop1.iter().copied().take(take).collect();
            for &v in &grab {
                s.added_arena.push(v);
                s.push_p(v);
            }
            let undo = s.tighten(added_start);
            // The tightened segments must mirror the indicator.
            prop_assert_eq!(
                s.c_arena[s.c_start..].to_vec(),
                s.c_bits.to_vec()
            );
            s.untighten(undo);
            s.pop_added(added_start, grab.len());
            s.added_arena.truncate(added_start);

            let after = state_snapshot(&s);
            prop_assert_eq!(before, after);
        }
    }
}
