//! Initial sub-task generation (Algorithm 2 lines 7–9).
//!
//! For each seed subgraph the search space splits into disjoint sub-tasks
//! `T_{ {v_i} ∪ S }`, one per subset `S` of the seed's two-hop vertices with
//! `|S| ≤ k−1`: the plexes of a sub-task contain all of `S` and no other
//! two-hop vertex. `S` is itself enumerated over a set-enumeration tree, with
//! Theorem 5.13 pruning extension candidates and Theorem 5.14 shrinking the
//! candidate set incrementally; Theorem 5.7 (rule R1) then discards
//! hopeless sub-tasks before any branching happens.

use crate::bounds::{ub_subtask, BoundScratch};
use crate::branch::SavedTask;
use crate::config::{AlgoConfig, Params};
use crate::pairs::PairMatrix;
use crate::seed::{SeedGraph, XOUT_FLAG};
use crate::stats::SearchStats;

/// Generates all initial sub-tasks ⟨P_S, C_S, X_S⟩ of a seed graph (in
/// seed-local encoding, `P_S = {seed} ∪ S` with the seed first), applying
/// R1/R2 as configured. Each task is one [`SavedTask`] POD snapshot —
/// a single buffer per task, the same shape the timeout splitter and the
/// parallel engine's re-queue path use. Returns them in deterministic order
/// (S-sets in set-enumeration order over ascending local ids).
pub fn collect_subtasks(
    seed: &SeedGraph,
    params: Params,
    cfg: &AlgoConfig,
    pairs: Option<&PairMatrix>,
    stats: &mut SearchStats,
) -> Vec<SavedTask> {
    let pairs = if cfg.use_r2 { pairs } else { None };
    let mut out = Vec::new();
    let mut scratch = BoundScratch::new(seed.len());
    let mut gen = SubtaskGen {
        seed,
        params,
        cfg,
        pairs,
        stats,
        scratch: &mut scratch,
        out: &mut out,
        s: Vec::new(),
    };
    let ext: Vec<u32> = seed.hop2.clone();
    let c0: Vec<u32> = seed.hop1.clone();
    gen.recurse(&ext, &c0);
    out
}

struct SubtaskGen<'a> {
    seed: &'a SeedGraph,
    params: Params,
    cfg: &'a AlgoConfig,
    pairs: Option<&'a PairMatrix>,
    stats: &'a mut SearchStats,
    scratch: &'a mut BoundScratch,
    out: &'a mut Vec<SavedTask>,
    s: Vec<u32>,
}

impl SubtaskGen<'_> {
    fn recurse(&mut self, ext: &[u32], c_s: &[u32]) {
        self.emit(c_s);
        if self.s.len() + 1 >= self.params.k {
            return; // |S| ≤ k − 1
        }
        for (i, &u) in ext.iter().enumerate() {
            if !self.s_addition_valid(u) {
                continue;
            }
            self.s.push(u);
            // Theorem 5.13: only pair-compatible two-hop vertices can extend
            // S further; Theorem 5.14: shrink C_S by compatibility with u.
            let (ext2, c2): (Vec<u32>, Vec<u32>) = match self.pairs {
                Some(pm) => (
                    ext[i + 1..]
                        .iter()
                        .copied()
                        .filter(|&w| pm.allowed(u, w))
                        .collect(),
                    c_s.iter().copied().filter(|&w| pm.allowed(u, w)).collect(),
                ),
                None => (ext[i + 1..].to_vec(), c_s.to_vec()),
            };
            self.recurse(&ext2, &c2);
            self.s.pop();
        }
    }

    /// `{seed} ∪ S ∪ {u}` must remain a k-plex.
    fn s_addition_valid(&self, u: u32) -> bool {
        let k = self.params.k;
        // u misses the seed and itself, plus its non-neighbours within S.
        let mut miss_u = 2usize;
        for &w in &self.s {
            if !self.seed.adj.has_edge(u as usize, w as usize) {
                miss_u += 1;
                // w gains one more missing link; check its budget: w misses
                // the seed, itself, and its non-neighbours in S ∪ {u}.
                let mut miss_w = 3usize; // seed + self + u
                for &y in &self.s {
                    if y != w && !self.seed.adj.has_edge(w as usize, y as usize) {
                        miss_w += 1;
                    }
                }
                if miss_w > k {
                    return false;
                }
            }
        }
        miss_u <= k
    }

    fn emit(&mut self, c_s: &[u32]) {
        self.stats.subtasks += 1;
        // R1 (Theorem 5.7): only defined for nonempty S.
        if self.cfg.use_r1 && !self.s.is_empty() {
            let ub = ub_subtask(self.seed, self.params.k, &self.s, c_s, self.scratch);
            if ub < self.params.q {
                self.stats.r1_pruned += 1;
                return;
            }
        }
        // Pack [P_S | C_S | X_S] into one buffer: P_S = {seed} ∪ S, then the
        // candidates, then every outside witness + the unused hop-2 vertices.
        let p_len = 1 + self.s.len();
        let x_len = self.seed.xout.len() + self.seed.hop2.len() - self.s.len();
        let mut buf = Vec::with_capacity(p_len + c_s.len() + x_len);
        buf.push(0u32);
        buf.extend_from_slice(&self.s);
        buf.extend_from_slice(c_s);
        for i in 0..self.seed.xout.len() {
            buf.push(i as u32 | XOUT_FLAG);
        }
        for &h in &self.seed.hop2 {
            if !self.s.contains(&h) {
                buf.push(h);
            }
        }
        self.out
            .push(SavedTask::from_buf(buf, p_len as u32, c_s.len() as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::SeedBuilder;
    use kplex_graph::{core_decomposition, gen, CsrGraph};

    fn seed_of(g: &CsrGraph, params: Params, cfg: &AlgoConfig) -> Option<SeedGraph> {
        let decomp = core_decomposition(g);
        let mut b = SeedBuilder::new(g.num_vertices());
        decomp
            .order
            .iter()
            .find_map(|&s| b.build(g, &decomp, s, params, cfg))
    }

    #[test]
    fn clique_yields_single_empty_s_task() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let sg = seed_of(&g, params, &cfg).unwrap();
        let mut stats = SearchStats::default();
        let tasks = collect_subtasks(&sg, params, &cfg, None, &mut stats);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].p(), &[0]);
        assert_eq!(tasks[0].c().len(), sg.hop1.len());
        assert!(tasks[0].x().len() == sg.xout.len());
    }

    #[test]
    fn s_sets_bounded_by_k_minus_one() {
        // Build a graph with plenty of two-hop structure.
        let g = gen::gnp(30, 0.3, 7);
        for k in 2..=4usize {
            let params = Params::new(k, 2 * k - 1).unwrap();
            let cfg = AlgoConfig {
                use_r1: false,
                use_r2: false,
                ..AlgoConfig::ours()
            };
            let Some(sg) = seed_of(&g, params, &cfg) else {
                continue;
            };
            let mut stats = SearchStats::default();
            let tasks = collect_subtasks(&sg, params, &cfg, None, &mut stats);
            for t in &tasks {
                assert!(t.p().len() <= k, "|P_S| = 1 + |S| must be ≤ k");
                assert_eq!(t.p()[0], 0);
                // S vertices must be hop2 vertices.
                for &v in &t.p()[1..] {
                    assert!(sg.hop2.contains(&v));
                }
                // X covers all unused hop2 vertices.
                let used: Vec<u32> = t.p()[1..].to_vec();
                for &h in &sg.hop2 {
                    if !used.contains(&h) {
                        assert!(t.x().contains(&h));
                    }
                }
            }
            // S-sets are pairwise distinct.
            let mut sets: Vec<Vec<u32>> = tasks.iter().map(|t| t.p().to_vec()).collect();
            sets.sort();
            let before = sets.len();
            sets.dedup();
            assert_eq!(before, sets.len());
        }
    }

    #[test]
    fn r1_prunes_hopeless_subtasks() {
        // A sparse graph with high q: most S-subtasks cannot reach q.
        let g = gen::gnp(40, 0.25, 13);
        let params = Params::new(3, 6).unwrap();
        let with_r1 = AlgoConfig::ours();
        let without = AlgoConfig {
            use_r1: false,
            ..AlgoConfig::ours()
        };
        let Some(sg) = seed_of(&g, params, &with_r1) else {
            return;
        };
        let pm = PairMatrix::build(&sg, params);
        let mut s1 = SearchStats::default();
        let t1 = collect_subtasks(&sg, params, &with_r1, Some(&pm), &mut s1);
        let mut s2 = SearchStats::default();
        let t2 = collect_subtasks(&sg, params, &without, Some(&pm), &mut s2);
        assert!(t1.len() <= t2.len());
        assert_eq!(s1.r1_pruned as usize, t2.len() - t1.len());
    }

    #[test]
    fn invalid_s_additions_are_rejected() {
        // Star-of-triangles: the seed's two-hop vertices are mutually far
        // apart; with k = 3 an S of two non-adjacent two-hop vertices needs
        // each to miss seed+self+other = 3 ≤ k, boundary case exercised.
        let g = gen::powerlaw_cluster(60, 3, 0.9, 5);
        let params = Params::new(3, 5).unwrap();
        let cfg = AlgoConfig {
            use_r1: false,
            use_r2: false,
            ..AlgoConfig::ours()
        };
        let Some(sg) = seed_of(&g, params, &cfg) else {
            return;
        };
        let mut stats = SearchStats::default();
        let tasks = collect_subtasks(&sg, params, &cfg, None, &mut stats);
        // Every emitted P_S must be a valid k-plex in the seed subgraph.
        for t in &tasks {
            for &u in t.p() {
                let mut miss = 1usize; // self
                for &w in t.p() {
                    if w != u && !sg.adj.has_edge(u as usize, w as usize) {
                        miss += 1;
                    }
                }
                assert!(miss <= 3, "P_S {:?} violates the 3-plex bound", t.p());
            }
        }
    }
}
