//! Search statistics.
//!
//! Counters are cheap (plain integer bumps in already-branchy code) and are
//! what the ablation tests assert on: disabling a pruning rule must leave the
//! result set unchanged while strictly increasing the visited-branch count.

/// Counters collected during one enumeration run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Seed subgraphs actually searched (non-empty after pruning).
    pub seed_graphs: u64,
    /// Initial sub-tasks ⟨P_S, C_S, X_S⟩ generated (Algorithm 2 line 7).
    pub subtasks: u64,
    /// Sub-tasks pruned by Theorem 5.7 before branching (R1).
    pub r1_pruned: u64,
    /// Invocations of the branch procedure (Algorithm 3).
    pub branch_calls: u64,
    /// Branches pruned because the upper bound fell below q (line 18).
    pub ub_pruned: u64,
    /// Candidate/exclusive entries removed by the pair matrix (R2).
    pub pair_pruned: u64,
    /// Vertices removed from seed subgraphs by Corollary 5.2.
    pub seed_pruned_vertices: u64,
    /// Maximal k-plexes reported.
    pub outputs: u64,
    /// Early-termination events where P ∪ C formed a k-plex (line 11).
    pub whole_set_plex: u64,
    /// Tasks re-queued by the parallel timeout mechanism.
    pub timeout_splits: u64,
    /// Branch recursions served from the searcher's depth-indexed arena
    /// without heap allocation — each was two to three `Vec` clones in the
    /// legacy kernel (`branch_ref`), so this counts avoided allocations.
    pub arena_recursions: u64,
    /// `u64` words read or written by the word-parallel tighten kernels
    /// (candidate-set snapshot, saturation rows, R2 rows).
    pub tighten_words: u64,
}

impl SearchStats {
    /// Accumulates `other` into `self` (used to merge per-thread stats).
    pub fn merge(&mut self, other: &SearchStats) {
        self.seed_graphs += other.seed_graphs;
        self.subtasks += other.subtasks;
        self.r1_pruned += other.r1_pruned;
        self.branch_calls += other.branch_calls;
        self.ub_pruned += other.ub_pruned;
        self.pair_pruned += other.pair_pruned;
        self.seed_pruned_vertices += other.seed_pruned_vertices;
        self.outputs += other.outputs;
        self.whole_set_plex += other.whole_set_plex;
        self.timeout_splits += other.timeout_splits;
        self.arena_recursions += other.arena_recursions;
        self.tighten_words += other.tighten_words;
    }

    /// The pruning/traversal fingerprint of a run: the counters that must be
    /// byte-identical across branch-kernel implementations (the legacy
    /// clone-based kernel and the arena kernel walk the same tree). Used by
    /// the kernel-equivalence suite.
    pub fn kernel_fingerprint(&self) -> [u64; 5] {
        [
            self.branch_calls,
            self.ub_pruned,
            self.pair_pruned,
            self.outputs,
            self.whole_set_plex,
        ]
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seeds={} subtasks={} (r1-pruned {}) branches={} (ub-pruned {}) outputs={}",
            self.seed_graphs,
            self.subtasks,
            self.r1_pruned,
            self.branch_calls,
            self.ub_pruned,
            self.outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = SearchStats {
            branch_calls: 3,
            outputs: 1,
            ..Default::default()
        };
        let b = SearchStats {
            branch_calls: 7,
            subtasks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.branch_calls, 10);
        assert_eq!(a.subtasks, 2);
        assert_eq!(a.outputs, 1);
    }

    #[test]
    fn merge_adds_kernel_counters() {
        let mut a = SearchStats {
            arena_recursions: 5,
            tighten_words: 100,
            ..Default::default()
        };
        a.merge(&SearchStats {
            arena_recursions: 7,
            tighten_words: 23,
            ..Default::default()
        });
        assert_eq!(a.arena_recursions, 12);
        assert_eq!(a.tighten_words, 123);
    }

    #[test]
    fn fingerprint_tracks_traversal_counters() {
        let s = SearchStats {
            branch_calls: 1,
            ub_pruned: 2,
            pair_pruned: 3,
            outputs: 4,
            whole_set_plex: 5,
            arena_recursions: 99, // kernel-specific: not part of the print
            ..Default::default()
        };
        assert_eq!(s.kernel_fingerprint(), [1, 2, 3, 4, 5]);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = SearchStats {
            outputs: 42,
            ..Default::default()
        };
        assert!(s.to_string().contains("outputs=42"));
    }
}
