//! # kplex-core
//!
//! Branch-and-bound enumeration of all maximal k-plexes with at least `q`
//! vertices — the primary contribution of *"Efficient Enumeration of Large
//! Maximal k-Plexes"* (EDBT 2025).
//!
//! The pipeline (Algorithm 2 of the paper):
//! 1. shrink the input to its (q−k)-core ([`enumerate::prepare`]);
//! 2. walk seed vertices in degeneracy order, building one dense
//!    [`seed::SeedGraph`] per seed (Eq (1) + Corollary 5.2);
//! 3. split each seed graph into disjoint initial sub-tasks over subsets of
//!    its two-hop vertices ([`subtask::collect_subtasks`], Theorems 5.7 and
//!    5.13/5.14 pruning);
//! 4. run the branch-and-bound [`branch::Searcher`] on every sub-task
//!    (Algorithm 3, upper bounds of Theorems 5.3/5.5, pair rule 5.15).
//!
//! Entry points: [`enumerate::enumerate`], [`enumerate::enumerate_count`],
//! [`enumerate::enumerate_collect`].
//!
//! ```
//! use kplex_core::{enumerate_count, AlgoConfig, Params};
//! use kplex_graph::gen;
//!
//! // K6: the only maximal 2-plex with at least 5 vertices is K6 itself.
//! let g = gen::complete(6);
//! let params = Params::new(2, 5).unwrap();
//! let (count, stats) = enumerate_count(&g, params, &AlgoConfig::ours());
//! assert_eq!(count, 1);
//! assert_eq!(stats.outputs, 1);
//! ```

#![deny(missing_docs)]

pub mod bounds;
pub mod branch;
pub mod branch_ref;
pub mod config;
pub mod enumerate;
pub mod maximum;
pub mod naive;
pub mod pairs;
pub mod plex;
pub mod reduce;
pub mod seed;
pub mod sink;
pub mod stats;
pub mod subtask;
pub mod verify;

pub use branch::{SavedTask, Searcher};
pub use branch_ref::RefSearcher;
pub use config::{AlgoConfig, BranchingKind, ParamError, Params, PivotKind, UpperBoundKind};
pub use enumerate::{enumerate, enumerate_collect, enumerate_count, prepare, MapSink, Prepared};
pub use maximum::{maximum_kplex, MaximumResult};
pub use pairs::PairMatrix;
pub use reduce::{ctcp_reduce, CtcpReduction};
pub use seed::{SeedBuilder, SeedGraph, XOUT_FLAG};
pub use sink::{ChannelSink, CollectSink, CountSink, FirstN, FnSink, LargestN, PlexSink, SinkFlow};
pub use stats::SearchStats;
pub use subtask::collect_subtasks;
pub use verify::{verify_complete, verify_results, Violation};
