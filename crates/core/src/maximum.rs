//! Maximum k-plex finding (the companion problem surveyed in Section 2).
//!
//! Built on top of the enumeration engine with *dynamic threshold
//! tightening*: the search starts at `q_min = max(q_floor, 2k-1)` and every
//! time a plex of size `s` is reported the engine's threshold rises to
//! `s + 1`, so the upper-bound pruning (Theorems 5.3/5.5/5.7) immediately
//! discards branches that cannot beat the incumbent — the same
//! best-so-far pruning used by the dedicated maximum-k-plex solvers the
//! paper cites (BS, kPlexS, Maplex).

use crate::branch::Searcher;
use crate::config::{AlgoConfig, Params};
use crate::enumerate::{prepare, MapSink};
use crate::pairs::PairMatrix;
use crate::seed::SeedBuilder;
use crate::sink::{PlexSink, SinkFlow};
use crate::stats::SearchStats;
use crate::subtask::collect_subtasks;
use kplex_graph::{GraphStore, VertexId};

/// Result of a maximum k-plex search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaximumResult {
    /// A maximum k-plex with at least `q_floor` vertices, if one exists.
    pub plex: Option<Vec<VertexId>>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Sink that keeps the largest plex and signals the driver to tighten q.
struct BestSink {
    best: Option<Vec<VertexId>>,
}

impl PlexSink for BestSink {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        let better = self.best.as_ref().is_none_or(|b| vertices.len() > b.len());
        if better {
            self.best = Some(vertices.to_vec());
        }
        SinkFlow::Continue
    }
}

/// Finds one maximum k-plex of `g` among those with at least `q_floor`
/// vertices (`q_floor` is clamped up to `2k - 1`, the connectivity bound the
/// engine requires). Returns `None` in [`MaximumResult::plex`] when no plex
/// reaches the floor.
pub fn maximum_kplex<G: GraphStore + ?Sized>(
    g: &G,
    k: usize,
    q_floor: usize,
    cfg: &AlgoConfig,
) -> MaximumResult {
    let q0 = q_floor.max(2 * k - 1).max(1);
    let params0 = Params::new(k, q0).expect("q clamped to the valid range");
    let mut stats = SearchStats::default();
    let prep = prepare(g, params0);
    let n = prep.graph.num_vertices();
    let mut best = BestSink { best: None };
    if n < q0 {
        return MaximumResult { plex: None, stats };
    }
    let mut builder = SeedBuilder::new(n);
    // Current threshold: one more than the incumbent size.
    let mut q = q0;
    for &sv in &prep.decomp.order {
        // Rising q makes later seed graphs cheaper to build (stronger
        // Corollary 5.2 thresholds and size gates).
        let params = Params::new(k, q).expect("valid");
        let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) else {
            continue;
        };
        stats.seed_graphs += 1;
        let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
        let tasks = collect_subtasks(&seed, params, cfg, pairs.as_ref(), &mut stats);
        let mut searcher = Searcher::new(&seed, params, cfg, pairs.as_ref());
        for t in tasks {
            let mut msink = MapSink::new(&mut best, &prep.map);
            searcher.run_task(t.p(), t.c(), t.x(), &mut msink);
            // Tighten the engine's threshold to beat the incumbent.
            if let Some(b) = &best.best {
                let want = b.len() + 1;
                if want > q {
                    q = want;
                }
                if want > searcher.params_q() {
                    searcher.raise_q(want);
                }
            }
        }
        stats.merge(&searcher.stats);
    }
    MaximumResult {
        plex: best.best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::brute_force;
    use kplex_graph::{gen, CsrGraph};

    fn brute_maximum(g: &CsrGraph, k: usize, q: usize) -> Option<usize> {
        brute_force(g, k, q).iter().map(Vec::len).max()
    }

    #[test]
    fn clique_maximum_is_everything() {
        let g = gen::complete(8);
        let r = maximum_kplex(&g, 2, 4, &AlgoConfig::ours());
        assert_eq!(r.plex.unwrap().len(), 8);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..25 {
            let g = gen::gnp(13, 0.5, 400 + seed);
            for k in 1..=3usize {
                let q = 2 * k - 1;
                let expected = brute_maximum(&g, k, q.max(3));
                let got = maximum_kplex(&g, k, q.max(3), &AlgoConfig::ours());
                assert_eq!(got.plex.map(|p| p.len()), expected, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn result_is_a_valid_kplex() {
        let g = gen::powerlaw_cluster(150, 5, 0.8, 7);
        let r = maximum_kplex(&g, 2, 5, &AlgoConfig::ours());
        let p = r.plex.expect("dense graph has 2-plexes of size 5");
        assert!(crate::plex::is_kplex(&g, &p, 2));
        assert!(crate::plex::is_maximal_kplex(&g, &p, 2));
        // Nothing larger exists: re-run the enumerator at q = |p| + 1.
        let params = Params::new(2, p.len() + 1).unwrap();
        let (bigger, _) = crate::enumerate::enumerate_count(&g, params, &AlgoConfig::ours());
        assert_eq!(bigger, 0);
    }

    #[test]
    fn floor_filters_small_answers() {
        // A triangle has maximum 1-plex of size 3; with a floor of 4 the
        // search reports none.
        let g = gen::complete(3);
        let r = maximum_kplex(&g, 1, 4, &AlgoConfig::ours());
        assert!(r.plex.is_none());
        let r = maximum_kplex(&g, 1, 3, &AlgoConfig::ours());
        assert_eq!(r.plex.unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn planted_largest_plex_is_found() {
        let bg = gen::gnm(200, 400, 3);
        let cfg = gen::PlantedPlexConfig {
            count: 3,
            size_lo: 12,
            size_hi: 12,
            missing: 1,
            overlap: false,
        };
        let (g, _) = gen::planted_plexes(&bg, &cfg, 9);
        let r = maximum_kplex(&g, 2, 4, &AlgoConfig::ours());
        // The planted 12-vertex 2-plexes dominate the background.
        assert!(r.plex.unwrap().len() >= 12);
    }

    #[test]
    fn tightening_prunes_aggressively() {
        // The dynamic-q search should visit far fewer branches than full
        // enumeration at the floor threshold.
        let g = gen::powerlaw_cluster(200, 6, 0.7, 11);
        let max_r = maximum_kplex(&g, 2, 5, &AlgoConfig::ours());
        let params = Params::new(2, 5).unwrap();
        let (_, enum_stats) = crate::enumerate::enumerate_count(&g, params, &AlgoConfig::ours());
        assert!(
            max_r.stats.branch_calls <= enum_stats.branch_calls,
            "dynamic tightening explored more than full enumeration"
        );
    }
}
