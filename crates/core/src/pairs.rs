//! Vertex-pair pruning (R2): Theorems 5.13, 5.14 and 5.15.
//!
//! For each seed subgraph a boolean matrix `T` records, for every pair of
//! local vertices, whether the two can co-occur in a k-plex of size at least
//! `q` (that necessarily also contains the seed). The thresholds compare the
//! pair's common-neighbour count inside the initial candidate set
//! `C_S = N_{G_i}(v_i)` against lower bounds derived from Lemma 5.12.
//!
//! Two deliberate deviations from the paper's *statement* text, both
//! validated by the oracle cross-checks in `tests/`:
//! * Theorem 5.14, adjacent case: the statement prints
//!   `q − 2k − 2·max{k−2,0}` but its proof (Appendix A.9) derives
//!   `q − 2k − max{k−2,0}`; we implement the proof's (stronger, still sound)
//!   threshold.
//! * Structural infeasibility: two hop-2 vertices can only co-occur if both
//!   sit in `S`, which needs `|S| ≤ k−1 ≥ 2`, i.e. `k ≥ 3` (and `k ≥ 2` for
//!   a single hop-2 vertex). The theorems implicitly assume this; we encode
//!   it explicitly so the matrix is correct for small `k` as well.

use crate::config::Params;
use crate::seed::SeedGraph;
use kplex_graph::BitSet;

/// Symmetric co-occurrence matrix: `allowed(u, v)` is false when `u` and `v`
/// provably cannot both belong to a k-plex of size `>= q` in this seed graph.
///
/// Rows are stored as [`BitSet`]s over the local vertex ids so that they
/// serve double duty: scalar `allowed` probes during sub-task generation,
/// and word-parallel masks in the branch searcher's tighten kernel (the
/// candidate words are intersected with [`PairMatrix::row`] of every newly
/// added vertex instead of probing pairs one at a time).
#[derive(Clone, Debug)]
pub struct PairMatrix {
    rows: Vec<BitSet>,
    /// Number of pairs ruled out (diagnostics).
    pub disallowed_pairs: u64,
}

impl PairMatrix {
    /// True when the pair may co-occur (always true for the seed itself and
    /// for the diagonal).
    #[inline]
    pub fn allowed(&self, u: u32, v: u32) -> bool {
        self.rows[u as usize].contains(v as usize)
    }

    /// The row of vertices compatible with `u`.
    #[inline]
    pub fn row(&self, u: u32) -> &BitSet {
        &self.rows[u as usize]
    }

    /// Builds the matrix for a seed subgraph.
    pub fn build(seed: &SeedGraph, params: Params) -> Self {
        let n = seed.len();
        let (k, q) = (params.k as i64, params.q as i64);
        let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
        let mut disallowed = 0u64;

        // Hop classification per local id (seed = 0 is neither).
        let mut is_hop1 = vec![false; n];
        for &h in &seed.hop1 {
            is_hop1[h as usize] = true;
        }

        let thr_22_adj = q - k - 2 * (k - 2).max(0);
        let thr_22_non = q - k - 2 * (k - 3).max(0);
        let thr_12_adj = q - 2 * k - (k - 2).max(0); // proof version (A.9)
        let thr_12_non = q - k - (k - 2).max(0) - (k - 2).max(1);
        let thr_11_adj = q - 3 * k;
        let thr_11_non = q - k - 2 * (k - 1).max(1);

        for u in 1..n {
            for v in (u + 1)..n {
                let adjacent = seed.adj.has_edge(u, v);
                let hops = (is_hop1[u], is_hop1[v]);
                // Structural gates: hop-2 vertices live in S, |S| <= k-1.
                let structurally_impossible = match hops {
                    (false, false) => k < 3,
                    (true, false) | (false, true) => k < 2,
                    (true, true) => false,
                };
                let threshold = match (hops, adjacent) {
                    ((false, false), true) => thr_22_adj,
                    ((false, false), false) => thr_22_non,
                    ((true, false), _) | ((false, true), _) => {
                        if adjacent {
                            thr_12_adj
                        } else {
                            thr_12_non
                        }
                    }
                    ((true, true), true) => thr_11_adj,
                    ((true, true), false) => thr_11_non,
                };
                let prune = structurally_impossible || {
                    threshold > 0 && {
                        let common = seed.adj.common_neighbors_in(u, v, &seed.hop1_bits) as i64;
                        common < threshold
                    }
                };
                if prune {
                    rows[u].remove(v);
                    rows[v].remove(u);
                    disallowed += 1;
                }
            }
        }
        Self {
            rows,
            disallowed_pairs: disallowed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::seed::SeedBuilder;
    use kplex_graph::{core_decomposition, gen, CsrGraph};

    fn first_seed(g: &CsrGraph, params: Params) -> Option<SeedGraph> {
        let decomp = core_decomposition(g);
        let mut b = SeedBuilder::new(g.num_vertices());
        let cfg = AlgoConfig::ours();
        decomp
            .order
            .iter()
            .find_map(|&s| b.build(g, &decomp, s, params, &cfg))
    }

    #[test]
    fn clique_pairs_all_allowed() {
        let g = gen::complete(8);
        let params = Params::new(2, 5).unwrap();
        let sg = first_seed(&g, params).unwrap();
        let pm = PairMatrix::build(&sg, params);
        assert_eq!(pm.disallowed_pairs, 0);
        for u in 0..sg.len() as u32 {
            for v in 0..sg.len() as u32 {
                assert!(pm.allowed(u, v));
            }
        }
    }

    #[test]
    fn sparse_pairs_get_ruled_out() {
        // Two (q-1)-cliques sharing only vertex 0. With vertex 0 forced to be
        // the first seed (identity ordering), cross-clique candidate pairs
        // are non-adjacent and share zero common neighbours inside C_S, so
        // Theorem 5.15 rules them out (threshold q - k - 2(k-1) = 1).
        let mut edges = Vec::new();
        // Clique A = {0..5}, clique B = {0, 6..10} (0 shared).
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let b: Vec<u32> = std::iter::once(0).chain(6..11).collect();
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                edges.push((b[i], b[j]));
            }
        }
        let g = CsrGraph::from_edges(11, edges).unwrap();
        let params = Params::new(2, 5).unwrap();
        // Identity ordering makes every other vertex "later" than seed 0.
        let n = g.num_vertices();
        let decomp = kplex_graph::CoreDecomposition {
            core: vec![0; n],
            order: (0..n as u32).collect(),
            position: (0..n as u32).collect(),
            degeneracy: 0,
        };
        let mut builder = SeedBuilder::new(n);
        let sg = builder
            .build(&g, &decomp, 0, params, &AlgoConfig::ours())
            .expect("seed 0 must build");
        let pm = PairMatrix::build(&sg, params);
        assert!(
            pm.disallowed_pairs > 0,
            "expected cross-clique pairs pruned"
        );
        // Concretely: locals of 1 and 6 must be incompatible.
        let l1 = sg.verts.iter().position(|&v| v == 1).unwrap() as u32;
        let l6 = sg.verts.iter().position(|&v| v == 6).unwrap() as u32;
        assert!(!pm.allowed(l1, l6));
        // Same-clique pairs stay allowed.
        let l2 = sg.verts.iter().position(|&v| v == 2).unwrap() as u32;
        assert!(pm.allowed(l1, l2));
    }

    #[test]
    fn matrix_is_symmetric_and_diagonal_true() {
        let g = gen::gnp(30, 0.35, 5);
        let params = Params::new(3, 5).unwrap();
        if let Some(sg) = first_seed(&g, params) {
            let pm = PairMatrix::build(&sg, params);
            for u in 0..sg.len() as u32 {
                assert!(pm.allowed(u, u));
                assert!(pm.allowed(0, u), "seed row must stay allowed");
                for v in 0..sg.len() as u32 {
                    assert_eq!(pm.allowed(u, v), pm.allowed(v, u));
                }
            }
        }
    }

    #[test]
    fn small_k_disallows_hop2_pairs() {
        // For k = 2, two hop-2 vertices can never co-occur (|S| <= 1).
        let g = gen::gnp(40, 0.3, 11);
        let params = Params::new(2, 4).unwrap();
        if let Some(sg) = first_seed(&g, params) {
            let pm = PairMatrix::build(&sg, params);
            for (i, &u) in sg.hop2.iter().enumerate() {
                for &v in &sg.hop2[i + 1..] {
                    assert!(!pm.allowed(u, v), "hop2 pair {u},{v} must be pruned at k=2");
                }
            }
        }
    }
}
