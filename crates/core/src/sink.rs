//! Result sinks.
//!
//! Enumerations can produce hundreds of millions of k-plexes (Table 3 of the
//! paper reports result counts beyond 3·10^9), so materialising results is
//! opt-in: the engine pushes each maximal plex to a [`PlexSink`], and callers
//! choose whether to count, collect, stream, or stop early.

use kplex_graph::VertexId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Whether enumeration should continue after a reported plex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkFlow {
    /// Keep enumerating.
    Continue,
    /// Stop the whole enumeration as soon as practical.
    Stop,
}

/// Receiver for maximal k-plexes. `vertices` is sorted ascending and uses the
/// vertex ids of the *input* graph.
pub trait PlexSink {
    /// Called once per maximal k-plex.
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow;
}

/// Counts results without storing them.
#[derive(Clone, Debug, Default)]
pub struct CountSink {
    /// Number of plexes reported so far.
    pub count: u64,
    /// Largest plex size seen.
    pub max_size: usize,
}

impl PlexSink for CountSink {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        self.count += 1;
        self.max_size = self.max_size.max(vertices.len());
        SinkFlow::Continue
    }
}

/// Stores every result.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// All reported plexes, in discovery order.
    pub plexes: Vec<Vec<VertexId>>,
}

impl CollectSink {
    /// Results in a canonical order (sorted lexicographically) for
    /// set-equality comparisons across algorithms.
    pub fn into_sorted(mut self) -> Vec<Vec<VertexId>> {
        self.plexes.sort();
        self.plexes
    }
}

impl PlexSink for CollectSink {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        self.plexes.push(vertices.to_vec());
        SinkFlow::Continue
    }
}

/// Stops after `limit` results, keeping them.
#[derive(Clone, Debug)]
pub struct FirstN {
    /// Collected plexes (at most `limit`).
    pub plexes: Vec<Vec<VertexId>>,
    limit: usize,
}

impl FirstN {
    /// Collect at most `limit` plexes, then stop enumeration.
    pub fn new(limit: usize) -> Self {
        Self {
            plexes: Vec::new(),
            limit,
        }
    }
}

impl PlexSink for FirstN {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        self.plexes.push(vertices.to_vec());
        if self.plexes.len() >= self.limit {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }
}

/// Keeps only the `n` largest plexes seen (ties broken lexicographically,
/// smallest first). Useful for "show me the top communities" workflows.
#[derive(Clone, Debug)]
pub struct LargestN {
    /// The current top plexes, largest first.
    pub plexes: Vec<Vec<VertexId>>,
    n: usize,
}

impl LargestN {
    /// Keeps the `n` largest results.
    pub fn new(n: usize) -> Self {
        Self {
            plexes: Vec::new(),
            n,
        }
    }

    /// The single largest plex, if any was reported.
    pub fn best(&self) -> Option<&[VertexId]> {
        self.plexes.first().map(Vec::as_slice)
    }
}

impl PlexSink for LargestN {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        let pos = self.plexes.partition_point(|p| {
            p.len() > vertices.len() || (p.len() == vertices.len() && p.as_slice() <= vertices)
        });
        self.plexes.insert(pos, vertices.to_vec());
        self.plexes.truncate(self.n);
        SinkFlow::Continue
    }
}

/// Streams every result over an [`mpsc`](std::sync::mpsc) channel — the network
/// seam: enumeration workers send, a consumer thread (e.g. a service job
/// drainer) receives. The sink is `Send` and cheap to clone per worker.
///
/// Reporting stops (`SinkFlow::Stop`) when the shared `stop` flag is raised
/// (cooperative cancellation: a result cap, a client cancel, a deadline) or
/// when the receiver hung up. The flag is checked *before* sending, so no
/// result is delivered after cancellation is observed.
#[derive(Clone, Debug)]
pub struct ChannelSink {
    tx: Sender<Vec<VertexId>>,
    stop: Arc<AtomicBool>,
}

impl ChannelSink {
    /// Streams into `tx` until `stop` is raised or the receiver disconnects.
    pub fn new(tx: Sender<Vec<VertexId>>, stop: Arc<AtomicBool>) -> Self {
        Self { tx, stop }
    }

    /// The shared cancellation flag.
    pub fn stop_flag(&self) -> &Arc<AtomicBool> {
        &self.stop
    }
}

impl PlexSink for ChannelSink {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        // ordering: the stop flag is a latch polled as a hint; the channel
        // send supplies the actual synchronization for delivered results.
        if self.stop.load(Ordering::Relaxed) || self.tx.send(vertices.to_vec()).is_err() {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(&[VertexId]) -> SinkFlow>(pub F);

impl<F: FnMut(&[VertexId]) -> SinkFlow> PlexSink for FnSink<F> {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        (self.0)(vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_counts_and_tracks_max() {
        let mut s = CountSink::default();
        assert_eq!(s.report(&[1, 2, 3]), SinkFlow::Continue);
        assert_eq!(s.report(&[4, 5]), SinkFlow::Continue);
        assert_eq!(s.count, 2);
        assert_eq!(s.max_size, 3);
    }

    #[test]
    fn collect_sink_sorts_canonically() {
        let mut s = CollectSink::default();
        s.report(&[3, 4]);
        s.report(&[1, 2]);
        assert_eq!(s.into_sorted(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn first_n_stops() {
        let mut s = FirstN::new(2);
        assert_eq!(s.report(&[1]), SinkFlow::Continue);
        assert_eq!(s.report(&[2]), SinkFlow::Stop);
        assert_eq!(s.plexes.len(), 2);
    }

    #[test]
    fn largest_n_keeps_top_results() {
        let mut s = LargestN::new(2);
        s.report(&[1, 2, 3]);
        s.report(&[4, 5]);
        s.report(&[1, 2, 3, 4]);
        s.report(&[7, 8, 9]);
        assert_eq!(s.plexes.len(), 2);
        assert_eq!(s.best(), Some(&[1, 2, 3, 4][..]));
        assert_eq!(s.plexes[1], vec![1, 2, 3]);
    }

    #[test]
    fn largest_n_tie_break_is_lexicographic() {
        let mut s = LargestN::new(3);
        s.report(&[5, 6]);
        s.report(&[1, 2]);
        s.report(&[3, 4]);
        assert_eq!(s.plexes, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn channel_sink_streams_until_stopped() {
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let mut s = ChannelSink::new(tx, stop.clone());
        assert_eq!(s.report(&[1, 2]), SinkFlow::Continue);
        // ordering: single-threaded test; the flag is read on this thread.
        stop.store(true, Ordering::Relaxed);
        // No result is delivered once the flag is observed.
        assert_eq!(s.report(&[3, 4]), SinkFlow::Stop);
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![vec![1, 2]]);
    }

    #[test]
    fn channel_sink_stops_on_hangup() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut s = ChannelSink::new(tx, Arc::new(AtomicBool::new(false)));
        drop(rx);
        assert_eq!(s.report(&[1]), SinkFlow::Stop);
    }

    #[test]
    fn fn_sink_delegates() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|v: &[VertexId]| {
                seen.push(v.len());
                SinkFlow::Continue
            });
            s.report(&[9, 9, 9]);
        }
        assert_eq!(seen, vec![3]);
    }
}
