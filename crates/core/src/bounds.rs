//! Upper bounds on the largest k-plex extending the current partial solution.
//!
//! * [`ub_support`] — Theorem 5.5 computed by Algorithm 4: a support-number
//!   greedy over the pivot's candidate neighbours, O(|C|·|P|) with bitset
//!   adjacency, no sorting.
//! * [`ub_subtask`] — Theorem 5.7, the specialisation used to prune whole
//!   initial sub-tasks (rule R1), combined with the Theorem 5.3 degree bound.
//! * [`ub_fp_sorting`] — the FP baseline's bound [16, Lemma 5]: a budget
//!   prefix over candidates sorted by non-neighbour cost. Requires a sort per
//!   invocation, which is exactly the overhead the Table 5 ablation measures.
//!
//! All three return an upper bound on `|P_m|` for any k-plex `P_m ⊇ P ∪
//! {pivot}` drawn from the current candidates; pruning compares against `q`.

use crate::seed::SeedGraph;
use kplex_graph::BitSet;

/// Scratch buffers shared by bound computations, sized once per seed graph.
#[derive(Clone, Debug)]
pub struct BoundScratch {
    sup: Vec<i64>,
    costs: Vec<u32>,
}

impl BoundScratch {
    /// Scratch for a seed graph with `n` local vertices.
    pub fn new(n: usize) -> Self {
        Self {
            sup: vec![0; n],
            costs: Vec::with_capacity(n),
        }
    }
}

/// Theorem 5.5 via Algorithm 4.
///
/// `p` is the current plex (local ids), `d_p[v] = |N(v) ∩ P|` for every local
/// vertex, `pivot` is the candidate about to be added (must not be in `p`),
/// and `c_bits` marks the remaining candidates (including the pivot; the
/// pivot's own bit is ignored because it is not its own neighbour).
pub fn ub_support(
    seed: &SeedGraph,
    k: usize,
    p: &[u32],
    d_p: &[u32],
    pivot: u32,
    c_bits: &BitSet,
    scratch: &mut BoundScratch,
) -> usize {
    let psz = p.len();
    // Pivot support: non-neighbours inside P (pivot not counted).
    let sup_pivot = k as i64 - (psz as i64 - d_p[pivot as usize] as i64);
    debug_assert!(sup_pivot >= 1, "pivot must be addable to P");
    for &u in p {
        // Self-inclusive non-neighbour count for members: |P| - d_P(u).
        scratch.sup[u as usize] = k as i64 - (psz as i64 - d_p[u as usize] as i64);
        debug_assert!(scratch.sup[u as usize] >= 0, "P must be a k-plex");
    }
    let mut ub = psz as i64 + sup_pivot;
    // Walk the pivot's neighbours among the candidates (the set K of the
    // theorem starts as N_C(v_p)). Word-at-a-time via the bitset
    // intersection iterator, no allocation.
    let pivot_row = seed.adj.row(pivot as usize);
    for cand in pivot_row.intersection_iter(c_bits) {
        if cand == pivot as usize {
            continue;
        }
        // u_m = the non-neighbour of `cand` in P with minimum support.
        let mut min_sup = i64::MAX;
        let mut um = u32::MAX;
        for &u in p {
            if !seed.adj.has_edge(u as usize, cand) {
                let s = scratch.sup[u as usize];
                if s < min_sup {
                    min_sup = s;
                    um = u;
                }
            }
        }
        if um == u32::MAX {
            ub += 1; // unconstrained candidate
        } else if min_sup > 0 {
            // Charge the tightest member and admit the candidate.
            scratch.sup[um as usize] -= 1;
            ub += 1;
        }
        // else: some non-neighbour is exhausted; cand leaves K.
    }
    ub.max(0) as usize
}

/// Theorem 5.7 combined with Theorem 5.3: upper bound for the initial
/// sub-task `P_S = {v_i} ∪ S` with candidate set `c_s ⊆ N_{G_i}(v_i)`.
/// Used for rule R1: if the result is `< q` the entire sub-task is pruned.
pub fn ub_subtask(
    seed: &SeedGraph,
    k: usize,
    s: &[u32],
    c_s: &[u32],
    scratch: &mut BoundScratch,
) -> usize {
    // P_S member supports (self-inclusive). The seed's support is forced to 0
    // (no candidate is a seed non-neighbour: C_S ⊆ N(v_i)).
    let psz = 1 + s.len();
    scratch.sup[0] = 0;
    for &u in s {
        // d̄_{P_S}(u) = 1 (seed) + 1 (self) + non-neighbours within S.
        let mut nn = 2i64;
        for &w in s {
            if w != u && !seed.adj.has_edge(u as usize, w as usize) {
                nn += 1;
            }
        }
        scratch.sup[u as usize] = k as i64 - nn;
        debug_assert!(scratch.sup[u as usize] >= 0, "P_S must be a k-plex");
    }
    let mut ksize = 0i64;
    for &w in c_s {
        let mut min_sup = i64::MAX;
        let mut min_u = u32::MAX;
        // Non-neighbours of w inside P_S: the seed never qualifies.
        for &u in s {
            if !seed.adj.has_edge(u as usize, w as usize) {
                let sv = scratch.sup[u as usize];
                if sv < min_sup {
                    min_sup = sv;
                    min_u = u;
                }
            }
        }
        if min_u == u32::MAX {
            ksize += 1;
        } else if min_sup > 0 {
            scratch.sup[min_u as usize] -= 1;
            ksize += 1;
        }
    }
    let ub1 = psz as i64 + ksize;
    // Theorem 5.3: min static degree over P_S, plus k.
    let min_deg = std::iter::once(0u32)
        .chain(s.iter().copied())
        .map(|u| seed.deg[u as usize])
        .min()
        .unwrap_or(0) as i64;
    ub1.min(min_deg + k as i64).max(0) as usize
}

/// FP's sorting-based upper bound [16, Lemma 5], adapted to bound extensions
/// of `P ∪ {pivot}`.
///
/// Every candidate pays a "cost" equal to its non-neighbour count inside
/// `P ∪ {pivot}`; the total budget is the summed slack of the members.
/// Sorting costs ascending, the longest affordable prefix (plus the free
/// candidates) bounds how many candidates can still join.
pub fn ub_fp_sorting(
    seed: &SeedGraph,
    k: usize,
    p: &[u32],
    d_p: &[u32],
    pivot: u32,
    c_bits: &BitSet,
    scratch: &mut BoundScratch,
) -> usize {
    let psz1 = p.len() + 1; // |P ∪ {pivot}|
                            // Budget: sum of supports of P ∪ {pivot} w.r.t. P ∪ {pivot}.
    let mut budget = 0i64;
    for &u in p {
        let d = d_p[u as usize] as i64 + i64::from(seed.adj.has_edge(u as usize, pivot as usize));
        let slack = k as i64 - (psz1 as i64 - d);
        debug_assert!(slack >= 0);
        budget += slack;
    }
    {
        let d = d_p[pivot as usize] as i64;
        let slack = k as i64 - (psz1 as i64 - d);
        debug_assert!(slack >= 0);
        budget += slack;
    }
    // Candidate costs.
    scratch.costs.clear();
    let mut free = 0usize;
    for cand in c_bits.iter() {
        if cand == pivot as usize {
            continue;
        }
        let d = d_p[cand] as i64 + i64::from(seed.adj.has_edge(cand, pivot as usize));
        let cost = psz1 as i64 - d;
        debug_assert!(cost >= 0);
        if cost == 0 {
            free += 1;
        } else {
            scratch.costs.push(cost as u32);
        }
    }
    // The deliberate O(|C| log |C|) step.
    scratch.costs.sort_unstable();
    let mut admitted = 0usize;
    let mut spent = 0i64;
    for &c in &scratch.costs {
        spent += c as i64;
        if spent > budget {
            break;
        }
        admitted += 1;
    }
    psz1 + free + admitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlgoConfig, Params};
    use crate::seed::SeedBuilder;
    use kplex_graph::{core_decomposition, gen};

    /// Builds the seed graph of a clique's first seed and a default scratch.
    fn clique_seed(n: usize, k: usize, q: usize) -> (SeedGraph, BoundScratch) {
        let g = gen::complete(n);
        let params = Params::new(k, q).unwrap();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(n);
        let sg = b
            .build(&g, &decomp, decomp.order[0], params, &AlgoConfig::ours())
            .unwrap();
        let scratch = BoundScratch::new(sg.len());
        (sg, scratch)
    }

    #[test]
    fn support_bound_on_clique_allows_everything() {
        let (sg, mut scratch) = clique_seed(8, 2, 5);
        // P = {seed}; pivot = any hop1 vertex; C = all hop1.
        let p = [0u32];
        let mut d_p = vec![1u32; sg.len()]; // everyone adjacent to the seed
        d_p[0] = 0;
        let mut c_bits = BitSet::new(sg.len());
        for &h in &sg.hop1 {
            c_bits.insert(h as usize);
        }
        let pivot = sg.hop1[0];
        let ub = ub_support(&sg, 2, &p, &d_p, pivot, &c_bits, &mut scratch);
        // The whole clique (8 vertices) must remain admissible.
        assert!(ub >= 8, "ub = {ub}");
    }

    #[test]
    fn support_bound_is_tight_for_star() {
        // Star around the seed: hop1 vertices pairwise non-adjacent.
        // A 2-plex containing the seed and two leaves: each leaf misses the
        // other leaf + itself = 2 = k, so at most... bound should be small.
        let g = gen::star(8);
        let params = Params::new(2, 3).unwrap();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(8);
        // Center is peeled last so seeds are leaves first; find the center's
        // seed graph via explicit construction: only the center yields a
        // non-trivial subgraph (leaves have degree 1 < q - k).
        let mut built = None;
        for s in g.vertices() {
            if let Some(sg) = b.build(&g, &decomp, s, params, &AlgoConfig::ours()) {
                built = Some(sg);
            }
        }
        let Some(sg) = built else {
            // Star is too sparse for q=3 after gates; acceptable.
            return;
        };
        let mut scratch = BoundScratch::new(sg.len());
        let p = [0u32];
        let mut d_p = vec![0u32; sg.len()];
        for &h in &sg.hop1 {
            d_p[h as usize] = 1;
        }
        let mut c_bits = BitSet::new(sg.len());
        for &h in &sg.hop1 {
            c_bits.insert(h as usize);
        }
        let pivot = sg.hop1[0];
        let ub = ub_support(&sg, 2, &p, &d_p, pivot, &c_bits, &mut scratch);
        // {seed, pivot, one more leaf} is the largest 2-plex: ub >= 3 but
        // should not exceed |P| + sup + |K| = 1 + 2 + 0 = 3.
        assert_eq!(ub, 3);
    }

    #[test]
    fn subtask_bound_on_clique() {
        let (sg, mut scratch) = clique_seed(7, 2, 5);
        let c_s: Vec<u32> = sg.hop1.clone();
        // S empty: bound = min(1 + |K|, deg(seed) + k) = min(1+6, 6+2) = 7.
        let ub = ub_subtask(&sg, 2, &[], &c_s, &mut scratch);
        assert_eq!(ub, 7);
    }

    #[test]
    fn fp_bound_on_clique_allows_everything() {
        let (sg, mut scratch) = clique_seed(8, 2, 5);
        let p = [0u32];
        let mut d_p = vec![1u32; sg.len()];
        d_p[0] = 0;
        let mut c_bits = BitSet::new(sg.len());
        for &h in &sg.hop1 {
            c_bits.insert(h as usize);
        }
        let pivot = sg.hop1[0];
        let ub = ub_fp_sorting(&sg, 2, &p, &d_p, pivot, &c_bits, &mut scratch);
        assert!(ub >= 8, "ub = {ub}");
    }

    #[test]
    fn fp_bound_never_below_support_feasibility() {
        // Both bounds must be valid upper bounds; on random graphs the FP
        // bound is usually looser (larger or equal in the tight spots where
        // pruning matters). We check both stay above the true extension.
        let g = gen::gnp(25, 0.5, 3);
        let params = Params::new(2, 4).unwrap();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(25);
        for s in g.vertices() {
            let Some(sg) = b.build(&g, &decomp, s, params, &AlgoConfig::ours()) else {
                continue;
            };
            let mut scratch = BoundScratch::new(sg.len());
            let p = [0u32];
            let mut d_p = vec![0u32; sg.len()];
            for (v, d) in d_p.iter_mut().enumerate().skip(1) {
                *d = u32::from(sg.adj.has_edge(0, v));
            }
            let mut c_bits = BitSet::new(sg.len());
            for &h in &sg.hop1 {
                c_bits.insert(h as usize);
            }
            for &pivot in sg.hop1.iter().take(3) {
                let u1 = ub_support(&sg, 2, &p, &d_p, pivot, &c_bits, &mut scratch);
                let u2 = ub_fp_sorting(&sg, 2, &p, &d_p, pivot, &c_bits, &mut scratch);
                // Sanity floor: P ∪ {pivot} itself always extends.
                assert!(u1 >= 2);
                assert!(u2 >= 2);
            }
        }
    }
}
