//! The legacy clone-based branch kernel, kept as a *reference semantics*
//! implementation.
//!
//! This is the Algorithm-3 searcher exactly as it shipped before the
//! arena/undo-journal rewrite of [`crate::branch`]: every include / exclude /
//! multi-way step clones fresh `Vec<u32>` candidate and exclusive sets, and
//! the lines 2–3 tightening pass tests candidates one vertex at a time. It is
//! deliberately simple and allocation-heavy.
//!
//! It exists for two reasons:
//! * the kernel-equivalence suite (`tests/kernel_equivalence.rs`) asserts
//!   that the production arena kernel visits a byte-identical search tree
//!   (`branch_calls`, `ub_pruned`, `pair_pruned`, `outputs`, …) on the
//!   differential grid;
//! * the `substrate` bench compares the two kernels head-to-head, which is
//!   the "old vs new" cell behind the `BENCH_2.json` snapshot.
//!
//! Do not extend this module with new features; it tracks the legacy
//! behaviour, not the production searcher.

use crate::bounds::{ub_fp_sorting, ub_support, BoundScratch};
use crate::branch::SavedTask;
use crate::config::{AlgoConfig, BranchingKind, Params, UpperBoundKind};
use crate::pairs::PairMatrix;
use crate::seed::{SeedGraph, XOUT_FLAG};
use crate::sink::{PlexSink, SinkFlow};
use crate::stats::SearchStats;
use kplex_graph::{BitSet, VertexId};
use std::time::{Duration, Instant};

/// The legacy recursive searcher over one seed subgraph (clone-based).
pub struct RefSearcher<'a> {
    seed: &'a SeedGraph,
    params: Params,
    cfg: &'a AlgoConfig,
    pairs: Option<&'a PairMatrix>,
    // Dynamic search state.
    p: Vec<u32>,
    d_p: Vec<u32>,
    p_bits: BitSet,
    c_bits: BitSet,
    pc_bits: BitSet,
    sat: Vec<u32>,
    scratch: BoundScratch,
    out_buf: Vec<VertexId>,
    /// Counters for this searcher (merge into run totals when done).
    pub stats: SearchStats,
    stop: bool,
    // Timeout splitting (legacy: the clock is polled on every recursion).
    budget: Option<Duration>,
    deadline: Option<Instant>,
    saved: Vec<SavedTask>,
}

impl<'a> RefSearcher<'a> {
    /// Creates a searcher; `pairs` must be `Some` when `cfg.use_r2` is set.
    pub fn new(
        seed: &'a SeedGraph,
        params: Params,
        cfg: &'a AlgoConfig,
        pairs: Option<&'a PairMatrix>,
    ) -> Self {
        debug_assert!(!cfg.use_r2 || pairs.is_some(), "R2 requires a pair matrix");
        let n = seed.len();
        Self {
            seed,
            params,
            cfg,
            pairs: if cfg.use_r2 { pairs } else { None },
            p: Vec::with_capacity(64),
            d_p: vec![0; n],
            p_bits: BitSet::new(n),
            c_bits: BitSet::new(n),
            pc_bits: BitSet::new(n),
            sat: Vec::new(),
            scratch: BoundScratch::new(n),
            out_buf: Vec::new(),
            stats: SearchStats::default(),
            stop: false,
            budget: None,
            deadline: None,
            saved: Vec::new(),
        }
    }

    /// Arms the straggler timeout (see [`crate::branch::Searcher`]).
    pub fn set_time_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
    }

    /// Takes the branches deferred by timeout splitting since the last call.
    pub fn take_saved(&mut self) -> Vec<SavedTask> {
        std::mem::take(&mut self.saved)
    }

    /// Runs one task ⟨P, C, X⟩ (same contract as
    /// [`crate::branch::Searcher::run_task`]).
    pub fn run_task(
        &mut self,
        init_p: &[u32],
        c: &[u32],
        x: &[u32],
        sink: &mut dyn PlexSink,
    ) -> SinkFlow {
        debug_assert!(self.p.is_empty(), "searcher state must be clean");
        self.deadline = self.budget.map(|b| Instant::now() + b);
        self.branch(init_p, c.to_vec(), x.to_vec(), sink);
        debug_assert!(self.p.is_empty(), "unbalanced push/pop");
        if self.stop {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }

    // --- dynamic state maintenance -----------------------------------------

    fn push_p(&mut self, v: u32) {
        debug_assert!(!self.p_bits.contains(v as usize));
        self.p.push(v);
        self.p_bits.insert(v as usize);
        for w in self.seed.adj.row(v as usize).iter() {
            self.d_p[w] += 1;
        }
    }

    fn pop_p(&mut self, v: u32) {
        debug_assert_eq!(self.p.last(), Some(&v));
        self.p.pop();
        self.p_bits.remove(v as usize);
        for w in self.seed.adj.row(v as usize).iter() {
            self.d_p[w] -= 1;
        }
    }

    fn pop_added(&mut self, added: &[u32]) {
        for &v in added.iter().rev() {
            self.pop_p(v);
        }
    }

    /// Rebuilds `self.sat` = saturated members of P (those already missing k).
    fn collect_saturated(&mut self) {
        self.sat.clear();
        let psz = self.p.len();
        let k = self.params.k;
        for &u in &self.p {
            if psz - self.d_p[u as usize] as usize == k {
                self.sat.push(u);
            }
        }
    }

    /// k-plex admission test for a local vertex against the current P,
    /// plus R2 pair filtering against the newly added vertices.
    fn keep_local(&mut self, v: u32, need: usize, added: &[u32]) -> bool {
        if (self.d_p[v as usize] as usize) < need {
            return false;
        }
        for &u in &self.sat {
            if !self.seed.adj.has_edge(u as usize, v as usize) {
                return false;
            }
        }
        if let Some(pm) = self.pairs {
            for &a in added {
                if !pm.allowed(a, v) {
                    self.stats.pair_pruned += 1;
                    return false;
                }
            }
        }
        true
    }

    /// Same admission test for an exclusive-set entry (local or outside).
    fn keep_x(&mut self, entry: u32, need: usize, added: &[u32]) -> bool {
        if entry & XOUT_FLAG == 0 {
            return self.keep_local(entry, need, added);
        }
        let row = self.seed.xout_rows.row((entry & !XOUT_FLAG) as usize);
        if row.intersection_count(&self.p_bits) < need {
            return false;
        }
        self.sat.iter().all(|&u| row.contains(u as usize))
    }

    /// Degree of a local vertex within P ∪ C (C given by `c_bits`).
    #[inline]
    fn deg_pc(&self, v: u32) -> usize {
        self.d_p[v as usize] as usize
            + self
                .seed
                .adj
                .row(v as usize)
                .intersection_count(&self.c_bits)
    }

    // --- output paths -------------------------------------------------------

    fn emit(&mut self, extra: &[u32], sink: &mut dyn PlexSink) {
        self.out_buf.clear();
        self.out_buf
            .extend(self.p.iter().map(|&v| self.seed.verts[v as usize]));
        self.out_buf
            .extend(extra.iter().map(|&v| self.seed.verts[v as usize]));
        self.out_buf.sort_unstable();
        self.stats.outputs += 1;
        if sink.report(&self.out_buf) == SinkFlow::Stop {
            self.stop = true;
        }
    }

    // --- the branch procedure (Algorithm 3) ---------------------------------

    fn branch(&mut self, added: &[u32], mut c: Vec<u32>, mut x: Vec<u32>, sink: &mut dyn PlexSink) {
        if self.stop {
            return;
        }
        self.stats.branch_calls += 1;
        for &v in added {
            self.push_p(v);
        }
        let k = self.params.k;
        let q = self.params.q;

        // Lines 2–3: tighten C and X, one candidate at a time.
        if !added.is_empty() {
            self.collect_saturated();
            let need = (self.p.len() + 1).saturating_sub(k);
            let mut w = 0;
            for r in 0..c.len() {
                let v = c[r];
                if self.keep_local(v, need, added) {
                    c[w] = v;
                    w += 1;
                }
            }
            c.truncate(w);
            let mut w = 0;
            for r in 0..x.len() {
                let e = x[r];
                if self.keep_x(e, need, added) {
                    x[w] = e;
                    w += 1;
                }
            }
            x.truncate(w);
        }

        // Lines 4–6: no candidates left.
        if c.is_empty() {
            if x.is_empty() && self.p.len() >= q {
                self.emit(&[], sink);
            }
            self.pop_added(added);
            return;
        }

        // Lines 7–10: pivot selection (see the production kernel for the
        // rule description).
        self.c_bits.clear();
        for &v in &c {
            self.c_bits.insert(v as usize);
        }
        let psz = self.p.len();
        let mut best_key = (usize::MAX, i64::MIN, 2u8);
        let mut min_deg_pc = usize::MAX;
        let mut pivot = u32::MAX;
        let mut pivot_in_p = false;
        for (&v, side) in self
            .p
            .iter()
            .map(|v| (v, 0u8))
            .chain(c.iter().map(|v| (v, 1u8)))
        {
            let d = self.deg_pc(v);
            min_deg_pc = min_deg_pc.min(d);
            let key = match self.cfg.pivot {
                crate::config::PivotKind::SaturationTieBreak => {
                    let dbar = psz as i64 - self.d_p[v as usize] as i64;
                    (d, -dbar, side)
                }
                crate::config::PivotKind::MinDegree => (d, 0, side),
                crate::config::PivotKind::FirstCandidate => (d, 0, side),
            };
            if key < best_key {
                best_key = key;
                pivot = v;
                pivot_in_p = side == 0;
            }
        }
        if self.cfg.pivot == crate::config::PivotKind::FirstCandidate {
            pivot = c[0];
            pivot_in_p = false;
        }
        let pivot_orig = pivot;

        // Lines 11–14: whole-set k-plex check.
        if min_deg_pc + k >= psz + c.len() {
            self.stats.whole_set_plex += 1;
            if psz + c.len() >= q && self.whole_is_maximal(&c, &x) {
                self.emit(&c, sink);
            }
            self.pop_added(added);
            return;
        }

        // Lines 15–16 (or the multi-way alternative).
        if pivot_in_p {
            if self.cfg.branching == BranchingKind::MultiWay {
                self.branch_multiway(pivot, c, x, sink);
                self.pop_added(added);
                return;
            }
            pivot = self.repick(pivot, &c);
        }

        // Line 17: upper bound of any plex extending P ∪ {pivot} (Eq (3)).
        let ub = match self.cfg.upper_bound {
            UpperBoundKind::None => usize::MAX,
            UpperBoundKind::Ours => {
                let a = ub_support(
                    self.seed,
                    k,
                    &self.p,
                    &self.d_p,
                    pivot,
                    &self.c_bits,
                    &mut self.scratch,
                );
                a.min(self.seed.deg[pivot_orig as usize] as usize + k)
            }
            UpperBoundKind::FpSorting => {
                let a = ub_fp_sorting(
                    self.seed,
                    k,
                    &self.p,
                    &self.d_p,
                    pivot,
                    &self.c_bits,
                    &mut self.scratch,
                );
                a.min(self.seed.deg[pivot_orig as usize] as usize + k)
            }
        };

        // Lines 18–19: include branch — the per-branch clone churn the arena
        // kernel eliminates.
        if ub >= q {
            let c_child: Vec<u32> = c.iter().copied().filter(|&w| w != pivot).collect();
            let x_child = x.clone();
            self.recurse_or_save(&[pivot], c_child, x_child, sink);
        } else {
            self.stats.ub_pruned += 1;
        }

        // Line 20: exclude branch.
        if !self.stop {
            c.retain(|&w| w != pivot);
            x.push(pivot);
            self.recurse_or_save(&[], c, x, sink);
        }
        self.pop_added(added);
    }

    /// Lines 15–16: re-pick the pivot among the P-pivot's non-neighbours in
    /// C, with the same (min degree, max saturation) rule.
    fn repick(&self, p_pivot: u32, c: &[u32]) -> u32 {
        let psz = self.p.len();
        let mut best_key = (usize::MAX, i64::MIN);
        let mut best = u32::MAX;
        for &w in c {
            if self.seed.adj.has_edge(p_pivot as usize, w as usize) {
                continue;
            }
            let d = self.deg_pc(w);
            let dbar = psz as i64 - self.d_p[w as usize] as i64;
            let key = (d, -dbar);
            if key < best_key {
                best_key = key;
                best = w;
            }
        }
        debug_assert_ne!(
            best,
            u32::MAX,
            "P-pivot must have a candidate non-neighbour"
        );
        best
    }

    /// FaPlexen branching Eq (4)–(6) for a pivot inside P.
    fn branch_multiway(&mut self, pivot: u32, c: Vec<u32>, x: Vec<u32>, sink: &mut dyn PlexSink) {
        let k = self.params.k;
        let psz = self.p.len();
        let s_budget = k - (psz - self.d_p[pivot as usize] as usize);
        let w_list: Vec<u32> = c
            .iter()
            .copied()
            .filter(|&w| !self.seed.adj.has_edge(pivot as usize, w as usize))
            .collect();
        debug_assert!(s_budget >= 1, "saturated P-pivots are caught earlier");
        debug_assert!(
            w_list.len() > s_budget,
            "otherwise P ∪ C would have been a k-plex"
        );
        for i in 1..=s_budget {
            if self.stop {
                return;
            }
            if i >= 2 && !self.prefix_is_plex(&w_list[..i - 1]) {
                return;
            }
            let removed = &w_list[..i];
            let c_i: Vec<u32> = c.iter().copied().filter(|w| !removed.contains(w)).collect();
            let mut x_i = x.clone();
            x_i.push(w_list[i - 1]);
            let included = w_list[..i - 1].to_vec();
            self.recurse_or_save(&included, c_i, x_i, sink);
        }
        if self.stop || !self.prefix_is_plex(&w_list[..s_budget]) {
            return;
        }
        let c_f: Vec<u32> = c.iter().copied().filter(|w| !w_list.contains(w)).collect();
        let included = w_list[..s_budget].to_vec();
        self.recurse_or_save(&included, c_f, x, sink);
    }

    /// True iff `P ∪ prefix` is a k-plex.
    fn prefix_is_plex(&self, prefix: &[u32]) -> bool {
        let k = self.params.k;
        for &u in &self.p {
            let mut miss = self.p.len() - self.d_p[u as usize] as usize; // self + P
            for &w in prefix {
                if !self.seed.adj.has_edge(u as usize, w as usize) {
                    miss += 1;
                }
            }
            if miss > k {
                return false;
            }
        }
        for (j, &w) in prefix.iter().enumerate() {
            let mut miss = 1 + (self.p.len() - self.d_p[w as usize] as usize);
            for (j2, &y) in prefix.iter().enumerate() {
                if j2 != j && !self.seed.adj.has_edge(w as usize, y as usize) {
                    miss += 1;
                }
            }
            if miss > k {
                return false;
            }
        }
        true
    }

    /// Maximality check of P ∪ C against X (Algorithm 3 line 12).
    fn whole_is_maximal(&mut self, c: &[u32], x: &[u32]) -> bool {
        let k = self.params.k;
        let total = self.p.len() + c.len();
        self.pc_bits.copy_from(&self.p_bits);
        for &v in c {
            self.pc_bits.insert(v as usize);
        }
        self.sat.clear();
        for &v in self.p.iter().chain(c.iter()) {
            let d = self
                .seed
                .adj
                .row(v as usize)
                .intersection_count(&self.pc_bits);
            if total - d == k {
                self.sat.push(v);
            }
        }
        let need = (total + 1).saturating_sub(k);
        for &e in x {
            let fits = if e & XOUT_FLAG == 0 {
                let d = self
                    .seed
                    .adj
                    .row(e as usize)
                    .intersection_count(&self.pc_bits);
                d >= need
                    && self
                        .sat
                        .iter()
                        .all(|&u| self.seed.adj.has_edge(u as usize, e as usize))
            } else {
                let row = self.seed.xout_rows.row((e & !XOUT_FLAG) as usize);
                row.intersection_count(&self.pc_bits) >= need
                    && self.sat.iter().all(|&u| row.contains(u as usize))
            };
            if fits {
                return false; // e extends P ∪ C: not maximal
            }
        }
        true
    }

    /// Recurse, unless the timeout budget is spent — then defer the branch.
    /// Legacy behaviour: `Instant::now()` on every single recursion.
    fn recurse_or_save(
        &mut self,
        added_next: &[u32],
        c: Vec<u32>,
        x: Vec<u32>,
        sink: &mut dyn PlexSink,
    ) {
        if let Some(dl) = self.deadline {
            if Instant::now() > dl {
                let mut p_full = self.p.clone();
                p_full.extend_from_slice(added_next);
                self.saved.push(SavedTask::new(&p_full, &c, &x));
                self.stats.timeout_splits += 1;
                return;
            }
        }
        self.branch(added_next, c, x, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Params;
    use crate::seed::SeedBuilder;
    use crate::sink::CollectSink;
    use kplex_graph::{core_decomposition, gen};

    #[test]
    fn reference_kernel_finds_the_clique() {
        let g = gen::complete(6);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let decomp = core_decomposition(&g);
        let mut b = SeedBuilder::new(6);
        let sg = b.build(&g, &decomp, decomp.order[0], params, &cfg).unwrap();
        let pm = PairMatrix::build(&sg, params);
        let mut searcher = RefSearcher::new(&sg, params, &cfg, Some(&pm));
        let mut sink = CollectSink::default();
        searcher.run_task(&[0], &sg.hop1.clone(), &[], &mut sink);
        let res = sink.into_sorted();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].len(), 6);
        assert_eq!(searcher.stats.outputs, 1);
    }
}
