//! Problem parameters and algorithm configuration.
//!
//! Every named variant in the paper's evaluation (`Ours`, `Ours_P`,
//! `Ours\ub`, `Ours\ub+fp`, `Basic`, `Basic+R1`, `Basic+R2`) is a different
//! [`AlgoConfig`] over the same search engine, which is what makes the
//! ablation studies of Tables 5 and 6 exact apples-to-apples comparisons.

use std::fmt;

/// The problem instance parameters of Definition 3.4: enumerate all maximal
/// k-plexes with at least `q` vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Params {
    /// Plex slack: every member may miss up to `k` links (itself included).
    pub k: usize,
    /// Minimum output size; must satisfy `q >= 2k - 1` (Theorem 3.3) so that
    /// results are connected with diameter at most two.
    pub q: usize,
}

/// Parameter validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `k` must be at least 1.
    KTooSmall,
    /// `q < 2k - 1` breaks the diameter-2 property the search relies on.
    QTooSmall {
        /// Provided q.
        q: usize,
        /// Minimum admissible q for the provided k.
        min_q: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::KTooSmall => write!(f, "k must be >= 1"),
            ParamError::QTooSmall { q, min_q } => {
                write!(
                    f,
                    "q = {q} too small: the algorithm requires q >= 2k-1 = {min_q}"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Validated constructor.
    pub fn new(k: usize, q: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::KTooSmall);
        }
        let min_q = 2 * k - 1;
        if q < min_q {
            return Err(ParamError::QTooSmall { q, min_q });
        }
        Ok(Self { k, q })
    }
}

/// Which upper bound is applied at line 17 of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpperBoundKind {
    /// No upper-bound pruning (the `Ours\ub` ablation).
    None,
    /// The paper's Eq (3): min of Theorem 5.5 (Algorithm 4) and Theorem 5.3.
    #[default]
    Ours,
    /// FP's sorting-based bound [16, Lemma 5] (the `Ours\ub+fp` ablation).
    FpSorting,
}

/// How the pivot vertex is selected (Algorithm 3 lines 7–10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PivotKind {
    /// The paper's rule: minimum degree in G[P ∪ C], ties broken towards
    /// the most saturated vertex, preferring P-side pivots (lines 7–10).
    #[default]
    SaturationTieBreak,
    /// Minimum degree only, no saturation tie-break — FaPlexen/ListPlex's
    /// "less effective pivoting" the paper improves on.
    MinDegree,
    /// No pivot intelligence: branch on the first candidate (D2K-style
    /// simple pivoting).
    FirstCandidate,
}

/// How a pivot that lands inside `P` is handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BranchingKind {
    /// Re-pick a pivot among the P-pivot's candidate non-neighbours
    /// (Algorithm 3 lines 15–16) and branch binarily — the default `Ours`.
    #[default]
    RepickPivot,
    /// FaPlexen's multi-way branching Eq (4)–(6) — `Ours_P` and ListPlex.
    MultiWay,
}

/// Full algorithm configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgoConfig {
    /// Pivot selection rule.
    pub pivot: PivotKind,
    /// Upper bound used for branch pruning.
    pub upper_bound: UpperBoundKind,
    /// R1: prune initial sub-tasks via Theorem 5.7.
    pub use_r1: bool,
    /// R2: vertex-pair pruning via Theorems 5.13–5.15 (the T matrix).
    pub use_r2: bool,
    /// Branching scheme for P-side pivots.
    pub branching: BranchingKind,
    /// Rounds of Corollary 5.2 seed-subgraph pruning (0 disables; 2+ gives
    /// the cascade effect; usize::MAX iterates to fixpoint).
    pub seed_prune_rounds: usize,
    /// Also prune outside exclusive-set vertices with Theorem 5.1 thresholds.
    pub prune_xout: bool,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        Self::ours()
    }
}

impl AlgoConfig {
    /// The paper's default algorithm `Ours`.
    pub fn ours() -> Self {
        Self {
            pivot: PivotKind::SaturationTieBreak,
            upper_bound: UpperBoundKind::Ours,
            use_r1: true,
            use_r2: true,
            branching: BranchingKind::RepickPivot,
            seed_prune_rounds: usize::MAX,
            prune_xout: true,
        }
    }

    /// The `Ours_P` variant: multi-way branching instead of pivot re-picking.
    pub fn ours_p() -> Self {
        Self {
            branching: BranchingKind::MultiWay,
            ..Self::ours()
        }
    }

    /// `Ours\ub` — upper-bound pruning disabled (Table 5).
    pub fn ours_no_ub() -> Self {
        Self {
            upper_bound: UpperBoundKind::None,
            ..Self::ours()
        }
    }

    /// `Ours\ub+fp` — FP's sorting-based upper bound (Table 5).
    pub fn ours_fp_ub() -> Self {
        Self {
            upper_bound: UpperBoundKind::FpSorting,
            ..Self::ours()
        }
    }

    /// `Basic` — no R1, no R2 (Table 6).
    pub fn basic() -> Self {
        Self {
            use_r1: false,
            use_r2: false,
            ..Self::ours()
        }
    }

    /// `Basic+R1` (Table 6).
    pub fn basic_r1() -> Self {
        Self {
            use_r1: true,
            use_r2: false,
            ..Self::ours()
        }
    }

    /// `Basic+R2` (Table 6).
    pub fn basic_r2() -> Self {
        Self {
            use_r1: false,
            use_r2: true,
            ..Self::ours()
        }
    }

    /// Pivot ablation: the paper's algorithm with the saturation tie-break
    /// removed (plain minimum-degree pivoting).
    pub fn ours_min_degree_pivot() -> Self {
        Self {
            pivot: PivotKind::MinDegree,
            ..Self::ours()
        }
    }

    /// Pivot ablation: no pivot intelligence at all.
    pub fn ours_first_pivot() -> Self {
        Self {
            pivot: PivotKind::FirstCandidate,
            ..Self::ours()
        }
    }

    /// Returns the named preset, if it exists. Accepts the paper's names
    /// (case-insensitive): `ours`, `ours_p`, `ours-ub`, `ours-ub+fp`,
    /// `basic`, `basic+r1`, `basic+r2`.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ours" => Some(Self::ours()),
            "ours_p" | "ours-p" => Some(Self::ours_p()),
            "ours-ub" | "ours\\ub" => Some(Self::ours_no_ub()),
            "ours-ub+fp" | "ours\\ub+fp" => Some(Self::ours_fp_ub()),
            "basic" => Some(Self::basic()),
            "basic+r1" => Some(Self::basic_r1()),
            "basic+r2" => Some(Self::basic_r2()),
            "ours-mindeg" => Some(Self::ours_min_degree_pivot()),
            "ours-firstpivot" => Some(Self::ours_first_pivot()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(Params::new(2, 3).is_ok());
        assert!(Params::new(2, 2).is_err());
        assert!(Params::new(0, 5).is_err());
        assert_eq!(
            Params::new(3, 4),
            Err(ParamError::QTooSmall { q: 4, min_q: 5 })
        );
        let msg = Params::new(3, 4).unwrap_err().to_string();
        assert!(msg.contains("q >= 2k-1"));
    }

    #[test]
    fn presets_differ_in_the_documented_flags() {
        let ours = AlgoConfig::ours();
        assert!(ours.use_r1 && ours.use_r2);
        assert_eq!(ours.upper_bound, UpperBoundKind::Ours);

        let basic = AlgoConfig::basic();
        assert!(!basic.use_r1 && !basic.use_r2);
        assert_eq!(basic.upper_bound, UpperBoundKind::Ours);

        assert_eq!(AlgoConfig::ours_no_ub().upper_bound, UpperBoundKind::None);
        assert_eq!(
            AlgoConfig::ours_fp_ub().upper_bound,
            UpperBoundKind::FpSorting
        );
        assert_eq!(AlgoConfig::ours_p().branching, BranchingKind::MultiWay);
        assert_eq!(
            AlgoConfig::ours_min_degree_pivot().pivot,
            PivotKind::MinDegree
        );
        assert_eq!(
            AlgoConfig::ours_first_pivot().pivot,
            PivotKind::FirstCandidate
        );
    }

    #[test]
    fn by_name_resolves_all_presets() {
        for name in [
            "ours",
            "ours_p",
            "ours-ub",
            "ours-ub+fp",
            "basic",
            "basic+r1",
            "basic+r2",
            "ours-mindeg",
            "ours-firstpivot",
        ] {
            assert!(AlgoConfig::by_name(name).is_some(), "{name}");
        }
        assert!(AlgoConfig::by_name("OURS").is_some());
        assert!(AlgoConfig::by_name("nope").is_none());
    }
}
