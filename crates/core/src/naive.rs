//! Reference oracles.
//!
//! Two deliberately simple enumerators used to validate every optimised
//! variant:
//! * [`brute_force`] — exhaustive subset scan, exact for graphs up to ~20
//!   vertices;
//! * [`naive_bron_kerbosch`] — Algorithm 1 of the paper verbatim (no seed
//!   decomposition, no pivoting, no bounds), practical to a few hundred
//!   vertices on sparse inputs.

use crate::plex::{is_kplex, is_maximal_kplex};
use kplex_graph::{GraphStore, VertexId};

/// Exhaustively enumerates all maximal k-plexes with at least `q` vertices by
/// scanning every vertex subset. Panics if the graph has more than 24
/// vertices (2^24 subsets is the practical ceiling for a test oracle).
pub fn brute_force<G: GraphStore + ?Sized>(g: &G, k: usize, q: usize) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= 24,
        "brute force oracle limited to 24 vertices, got {n}"
    );
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) < q {
            continue;
        }
        let set: Vec<VertexId> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
        if is_kplex(g, &set, k) && is_maximal_kplex(g, &set, k) {
            out.push(set);
        }
    }
    out.sort();
    out
}

/// Algorithm 1 (Bron–Kerbosch adapted to k-plexes) with no optimisation at
/// all: candidates are every later vertex, maximality via the exclusive set.
/// Returns the sorted list of maximal k-plexes with `|P| >= q`.
pub fn naive_bron_kerbosch<G: GraphStore + ?Sized>(
    g: &G,
    k: usize,
    q: usize,
) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    let all: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    let mut p = Vec::new();
    recurse(g, k, q, &mut p, all, Vec::new(), &mut out);
    out.sort();
    out
}

fn recurse<G: GraphStore + ?Sized>(
    g: &G,
    k: usize,
    q: usize,
    p: &mut Vec<VertexId>,
    mut c: Vec<VertexId>,
    mut x: Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    // Invariant: every u in C or X satisfies "P ∪ {u} is a k-plex", so a
    // nonempty C means P is not maximal and a nonempty X means P was seen
    // inside a larger plex before.
    if c.is_empty() {
        if x.is_empty() && p.len() >= q {
            let mut res = p.clone();
            res.sort_unstable();
            out.push(res);
        }
        return;
    }
    while let Some(v) = c.first().copied() {
        c.remove(0);
        // Branch including v.
        p.push(v);
        let c2: Vec<VertexId> = c.iter().copied().filter(|&u| extends(g, k, p, u)).collect();
        let x2: Vec<VertexId> = x.iter().copied().filter(|&u| extends(g, k, p, u)).collect();
        recurse(g, k, q, p, c2, x2, out);
        p.pop();
        // From now on v is excluded; it witnesses non-maximality.
        x.push(v);
    }
}

/// True iff `p ∪ {u}` is a k-plex (`p` already is one).
fn extends<G: GraphStore + ?Sized>(g: &G, k: usize, p: &[VertexId], u: VertexId) -> bool {
    extends_set(g, k, p, u)
}

fn extends_set<G: GraphStore + ?Sized>(g: &G, k: usize, p: &[VertexId], u: VertexId) -> bool {
    let m = p.len() + 1;
    // u's own constraint.
    let du = p.iter().filter(|&&w| g.has_edge(u, w)).count();
    if du + k < m {
        return false;
    }
    // Everyone else's constraint.
    for &w in p {
        let dw = p.iter().filter(|&&y| y != w && g.has_edge(w, y)).count()
            + usize::from(g.has_edge(w, u));
        if dw + k < m {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_graph::gen;

    #[test]
    fn clique_has_single_maximal_plex() {
        let g = gen::complete(5);
        for k in 1..=2 {
            let res = brute_force(&g, k, 2 * k - 1);
            assert_eq!(res, vec![vec![0, 1, 2, 3, 4]], "k={k}");
        }
    }

    #[test]
    fn cycle5_2plexes() {
        // In C5 with k=2, q=3: each maximal 2-plex is a path of 3 vertices.
        let g = gen::cycle(5);
        let res = brute_force(&g, 2, 3);
        assert_eq!(res.len(), 5);
        for p in &res {
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn naive_bk_matches_brute_force_small() {
        for seed in 0..20 {
            let g = gen::gnp(10, 0.45, seed);
            for k in 1..=3usize {
                let q = 2 * k - 1;
                let bf = brute_force(&g, k, q);
                let bk = naive_bron_kerbosch(&g, k, q);
                assert_eq!(bf, bk, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn naive_bk_respects_q_threshold() {
        let g = gen::gnp(12, 0.5, 3);
        let all = naive_bron_kerbosch(&g, 2, 3);
        let large = naive_bron_kerbosch(&g, 2, 5);
        assert!(large.iter().all(|p| p.len() >= 5));
        assert!(large.len() <= all.len());
        for p in &large {
            assert!(all.contains(p));
        }
    }

    #[test]
    fn outputs_are_maximal_and_valid() {
        let g = gen::gnp(11, 0.4, 9);
        for p in naive_bron_kerbosch(&g, 2, 3) {
            assert!(is_kplex(&g, &p, 2));
            assert!(is_maximal_kplex(&g, &p, 2));
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = gen::empty(6);
        assert!(naive_bron_kerbosch(&g, 2, 3).is_empty());
        // Singletons are 2-plexes but q=3 filters them; with q >= 2k-1 = 3
        // nothing qualifies. (Two isolated vertices form a disconnected
        // 2-plex of size 2 < q.)
        assert!(brute_force(&g, 2, 3).is_empty());
    }
}
