//! Property test: every upper bound used for pruning is a true upper bound.
//!
//! For random seed subgraphs we brute-force the largest k-plex extending
//! `P ∪ {pivot}` and check that Theorem 5.3 (degree + k), Theorem 5.5
//! (Algorithm 4 support bound), Theorem 5.7 (sub-task bound) and the FP
//! sorting bound all dominate it. An unsound bound would silently drop
//! results — this is the test that would catch it directly, independent of
//! the end-to-end oracle comparisons.

use kplex_core::bounds::{ub_fp_sorting, ub_subtask, ub_support, BoundScratch};
use kplex_core::{AlgoConfig, Params, SeedBuilder, SeedGraph};
use kplex_graph::{gen, BitSet, CoreDecomposition, CsrGraph};
use proptest::prelude::*;

/// Identity ordering so that seed 0's subgraph covers the whole graph.
fn identity_decomp(n: usize) -> CoreDecomposition {
    CoreDecomposition {
        core: vec![0; n],
        order: (0..n as u32).collect(),
        position: (0..n as u32).collect(),
        degeneracy: 0,
    }
}

/// Largest k-plex `Q` with `must ⊆ Q ⊆ must ∪ allowed` (local ids), by
/// exhaustive scan. Returns 0 when even `must` is not a k-plex.
fn brute_max_extension(seed: &SeedGraph, k: usize, must: &[u32], allowed: &[u32]) -> usize {
    let is_plex = |members: &[u32]| {
        members.iter().all(|&u| {
            let inside = members
                .iter()
                .filter(|&&v| v != u && seed.adj.has_edge(u as usize, v as usize))
                .count();
            inside + k >= members.len()
        })
    };
    if !is_plex(must) {
        return 0;
    }
    let mut best = must.len();
    let m = allowed.len();
    assert!(m <= 20, "brute force cap");
    for mask in 0u32..(1 << m) {
        let mut q: Vec<u32> = must.to_vec();
        for (i, &v) in allowed.iter().enumerate() {
            if mask >> i & 1 == 1 {
                q.push(v);
            }
        }
        if q.len() > best && is_plex(&q) {
            best = q.len();
        }
    }
    best
}

fn build_seed(g: &CsrGraph, k: usize, q: usize) -> Option<SeedGraph> {
    let params = Params::new(k, q).ok()?;
    // Disable the optional pruning so the seed graph stays rich enough to
    // exercise the bounds.
    let cfg = AlgoConfig {
        seed_prune_rounds: 0,
        prune_xout: false,
        ..AlgoConfig::ours()
    };
    let mut b = SeedBuilder::new(g.num_vertices());
    b.build(g, &identity_decomp(g.num_vertices()), 0, params, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pivot_bounds_dominate_true_maximum(
        n in 8usize..=16,
        density in 0.3f64..0.8,
        k in 2usize..=4,
        rng_seed in 0u64..500,
    ) {
        let g = gen::gnp(n, density, rng_seed);
        let q = 2 * k - 1;
        let Some(seed) = build_seed(&g, k, q) else { return Ok(()); };
        if seed.hop1.len() < 2 || seed.len() > 21 {
            return Ok(());
        }
        // P = {seed}; candidates = hop1.
        let p = [0u32];
        let mut d_p = vec![0u32; seed.len()];
        for (v, d) in d_p.iter_mut().enumerate().skip(1) {
            *d = u32::from(seed.adj.has_edge(0, v));
        }
        let mut c_bits = BitSet::new(seed.len());
        for &h in &seed.hop1 {
            c_bits.insert(h as usize);
        }
        let mut scratch = BoundScratch::new(seed.len());
        for &pivot in seed.hop1.iter().take(4) {
            let allowed: Vec<u32> = seed
                .hop1
                .iter()
                .copied()
                .filter(|&v| v != pivot)
                .collect();
            let truth = brute_max_extension(&seed, k, &[0, pivot], &allowed);
            let ub1 = ub_support(&seed, k, &p, &d_p, pivot, &c_bits, &mut scratch);
            prop_assert!(
                ub1 >= truth,
                "Alg.4 bound {ub1} < true max {truth} (n={n}, k={k}, pivot={pivot})"
            );
            let ub2 = ub_fp_sorting(&seed, k, &p, &d_p, pivot, &c_bits, &mut scratch);
            prop_assert!(
                ub2 >= truth,
                "FP bound {ub2} < true max {truth} (n={n}, k={k}, pivot={pivot})"
            );
            let ub3 = seed.deg[0].min(seed.deg[pivot as usize]) as usize + k;
            prop_assert!(ub3 >= truth, "Thm 5.3 bound {ub3} < true max {truth}");
        }
    }

    #[test]
    fn subtask_bound_dominates_true_maximum(
        n in 8usize..=16,
        density in 0.25f64..0.6,
        k in 3usize..=4,
        rng_seed in 500u64..900,
    ) {
        let g = gen::gnp(n, density, rng_seed);
        let q = 2 * k - 1;
        let Some(seed) = build_seed(&g, k, q) else { return Ok(()); };
        if seed.hop2.is_empty() || seed.hop1.len() > 18 {
            return Ok(());
        }
        let mut scratch = BoundScratch::new(seed.len());
        // Single-vertex S (|S| <= k-1 holds since k >= 3 here).
        for &s_vertex in seed.hop2.iter().take(3) {
            let s = [s_vertex];
            let c_s: Vec<u32> = seed.hop1.clone();
            let must = [0u32, s_vertex];
            let truth = brute_max_extension(&seed, k, &must, &c_s);
            if truth == 0 {
                continue; // {seed, s} itself is not a k-plex
            }
            let ub = ub_subtask(&seed, k, &s, &c_s, &mut scratch);
            prop_assert!(
                ub >= truth,
                "Thm 5.7 bound {ub} < true max {truth} (n={n}, k={k}, S={{{s_vertex}}})"
            );
        }
    }
}
