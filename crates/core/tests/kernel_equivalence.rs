//! Kernel-equivalence suite: the arena branch kernel ([`Searcher`]) must
//! walk a **byte-identical search tree** to the legacy clone-based kernel
//! ([`RefSearcher`], the pre-rewrite implementation kept as reference
//! semantics) on the differential grid.
//!
//! "Byte-identical" means the traversal fingerprint — `branch_calls`,
//! `ub_pruned`, `pair_pruned`, `outputs` and `whole_set_plex` — matches
//! exactly, not approximately: both kernels keep the candidate set in
//! ascending order and tie-break pivots by scan position, so any divergence
//! is a bug in the arena bookkeeping, not a legitimate reordering.

use kplex_core::enumerate::prepare;
use kplex_core::{
    collect_subtasks, AlgoConfig, CollectSink, PairMatrix, Params, RefSearcher, SavedTask,
    SearchStats, Searcher, SeedBuilder,
};
use kplex_graph::{gen, CsrGraph, GraphStore, VertexId};

/// Runs the full per-seed pipeline with both kernels and compares results
/// and traversal fingerprints, returning the number of seed graphs checked.
fn check_equivalence(g: &CsrGraph, params: Params, cfg: &AlgoConfig, label: &str) -> usize {
    let prep = prepare(g, params);
    let n = prep.graph.num_vertices();
    if n < params.q {
        return 0;
    }
    let mut seeds = 0;
    let mut builder = SeedBuilder::new(n);
    for &sv in &prep.decomp.order {
        let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) else {
            continue;
        };
        seeds += 1;
        let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
        let mut sub_stats = SearchStats::default();
        let tasks: Vec<SavedTask> =
            collect_subtasks(&seed, params, cfg, pairs.as_ref(), &mut sub_stats);

        let mut arena = Searcher::new(&seed, params, cfg, pairs.as_ref());
        let mut legacy = RefSearcher::new(&seed, params, cfg, pairs.as_ref());
        let mut arena_sink = CollectSink::default();
        let mut legacy_sink = CollectSink::default();
        for t in &tasks {
            arena.run_task(t.p(), t.c(), t.x(), &mut arena_sink);
            legacy.run_task(t.p(), t.c(), t.x(), &mut legacy_sink);
        }
        let a: Vec<Vec<VertexId>> = arena_sink.into_sorted();
        let l: Vec<Vec<VertexId>> = legacy_sink.into_sorted();
        assert_eq!(a, l, "{label}: result sets diverged on seed {sv}");
        assert_eq!(
            arena.stats.kernel_fingerprint(),
            legacy.stats.kernel_fingerprint(),
            "{label}: traversal fingerprint diverged on seed {sv} \
             (branch_calls/ub_pruned/pair_pruned/outputs/whole_set_plex)\n\
             arena:  {:?}\nlegacy: {:?}",
            arena.stats,
            legacy.stats
        );
    }
    seeds
}

/// The differential (k, q) grid (invalid cells are skipped by Params::new).
const KQ_GRID: [(usize, usize); 6] = [(1, 3), (1, 5), (2, 3), (2, 4), (2, 6), (3, 5)];

#[test]
fn kernels_agree_on_gnp_battery() {
    let mut checked = 0;
    for &n in &[12usize, 16, 22] {
        for &p in &[0.3f64, 0.5] {
            for seed in 0..2u64 {
                let g = gen::gnp(n, p, 5000 + n as u64 * 10 + seed);
                for (k, q) in KQ_GRID {
                    let Ok(params) = Params::new(k, q) else {
                        continue;
                    };
                    checked += check_equivalence(&g, params, &AlgoConfig::ours(), "gnp/ours");
                }
            }
        }
    }
    assert!(checked > 20, "grid too small: only {checked} seed graphs");
}

#[test]
fn kernels_agree_on_planted_battery() {
    for seed in 0..4u64 {
        let bg = gen::gnm(40, 70, 6000 + seed);
        let plant = gen::PlantedPlexConfig {
            count: 2,
            size_lo: 6,
            size_hi: 8,
            missing: 1,
            overlap: seed % 2 == 0,
        };
        let (g, _) = gen::planted_plexes(&bg, &plant, 7000 + seed);
        for (k, q) in [(2usize, 4usize), (2, 6), (3, 5)] {
            let params = Params::new(k, q).expect("valid");
            check_equivalence(&g, params, &AlgoConfig::ours(), "planted/ours");
        }
    }
}

#[test]
fn kernels_agree_across_algorithm_variants() {
    // The multi-way branching (Ours_P), the ablated bounds and the weakened
    // pivot rules exercise every code path of the kernel.
    let variants = [
        AlgoConfig::ours(),
        AlgoConfig::ours_p(),
        AlgoConfig::ours_no_ub(),
        AlgoConfig::ours_fp_ub(),
        AlgoConfig::basic(),
        AlgoConfig::basic_r1(),
        AlgoConfig::basic_r2(),
    ];
    for seed in 0..3u64 {
        let g = gen::gnp(20, 0.45, 8000 + seed);
        for (vi, cfg) in variants.iter().enumerate() {
            for (k, q) in [(2usize, 4usize), (3, 5)] {
                let params = Params::new(k, q).expect("valid");
                check_equivalence(&g, params, cfg, &format!("variant-{vi}"));
            }
        }
    }
}
