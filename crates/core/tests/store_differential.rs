//! Differential enumeration across storage backends.
//!
//! The same graph is enumerated as in-RAM CSR, as varint-compressed rows and
//! as a memory-mapped `.kpx` file; the three result sets must be identical —
//! and, on small instances, equal to the naive Bron–Kerbosch oracle. This is
//! the end-to-end guarantee behind `kplexd --store`: the backend is a
//! storage decision, never an answer decision.

use kplex_core::naive::naive_bron_kerbosch;
use kplex_core::verify::verify_results;
use kplex_core::{enumerate_collect, AlgoConfig, Params};
use kplex_graph::{gen, write_kpx, CompressedStore, CsrGraph, MmapStore};

fn kpx_tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kplex-diff-{}-{tag}.kpx", std::process::id()))
}

/// Enumerates `g` on all three backends, asserts pairwise equality, and
/// returns the common result.
fn tri_enumerate(g: &CsrGraph, params: Params, tag: &str) -> Vec<Vec<u32>> {
    let path = kpx_tmp(tag);
    write_kpx(g, &path).expect("write .kpx");
    let mapped = MmapStore::open(&path).expect("open .kpx");
    let compressed = CompressedStore::from_graph(g);
    let cfg = AlgoConfig::ours();
    let (on_csr, _) = enumerate_collect(g, params, &cfg);
    let (on_compressed, _) = enumerate_collect(&compressed, params, &cfg);
    let (on_mmap, _) = enumerate_collect(&mapped, params, &cfg);
    assert_eq!(on_csr, on_compressed, "{tag}: compressed diverged from CSR");
    assert_eq!(on_csr, on_mmap, "{tag}: mmap diverged from CSR");
    std::fs::remove_file(&path).ok();
    on_csr
}

#[test]
fn all_backends_match_the_oracle_on_small_graphs() {
    for seed in 0..4u64 {
        let g = gen::gnp(26, 0.35, 900 + seed);
        for (k, q) in [(2usize, 4usize), (3, 5)] {
            let params = Params::new(k, q).expect("valid");
            let got = tri_enumerate(&g, params, &format!("gnp-{seed}-{k}-{q}"));
            let oracle = naive_bron_kerbosch(&g, k, q);
            assert_eq!(got, oracle, "seed {seed} k {k} q {q}");
        }
    }
}

#[test]
fn backends_agree_on_a_clustered_graph_and_verify_clean() {
    let g = gen::powerlaw_cluster(400, 6, 0.6, 31);
    let params = Params::new(2, 6).expect("valid");
    let got = tri_enumerate(&g, params, "powerlaw");
    assert!(!got.is_empty(), "expected plexes in a clustered graph");
    let violations = verify_results(&g, 2, 6, &got);
    assert!(violations.is_empty(), "violations: {violations:?}");
}

#[test]
fn backends_agree_on_planted_plexes() {
    let bg = gen::gnm(300, 600, 13);
    let plant = gen::PlantedPlexConfig {
        count: 3,
        size_lo: 10,
        size_hi: 12,
        missing: 1,
        overlap: false,
    };
    let (g, report) = gen::planted_plexes(&bg, &plant, 17);
    let params = Params::new(2, 9).expect("valid");
    let got = tri_enumerate(&g, params, "planted");
    for planted in &report.plexes {
        assert!(
            got.iter().any(|r| planted.iter().all(|v| r.contains(v))),
            "planted plex {planted:?} not covered"
        );
    }
}
