//! Crash-recovery integration tests over real TCP: a `kplexd` with a job
//! journal is stopped with queued and running work (the journal treats any
//! shutdown as crash-equivalent — nothing is recorded once it begins, the
//! SIGKILL-equivalent the acceptance scenario asks for), restarted with the
//! same `--journal`, and must replay the interrupted jobs back into the
//! queue under their original ids, complete them with correct counts, and
//! never resurrect jobs that finished organically.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::{Client, Server, ServerConfig, ServerHandle, SubmitArgs};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "kplex-journal-restart-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn start(journal: &Path, runners: usize) -> ServerHandle {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap: 16,
        cache_cap: 2,
        default_threads: 2,
        journal: Some(journal.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind server")
    .spawn()
    .expect("spawn server")
}

/// The acceptance scenario: a server with one runner holds a throttled job
/// running and two jobs queued behind it; it is stopped and restarted with
/// the same journal. All three jobs (the orphaned-running one and both
/// queued ones) re-enter the queue under their original ids, are flagged
/// `recovered=true`, and `STREAM` completes each with the correct count.
/// New submissions continue the id sequence instead of reusing ids.
#[test]
fn restart_replays_queued_and_orphaned_jobs() {
    let journal = journal_path("replay");
    let expected29 = ground_truth("jazz", 2, 9); // jazz (2,9)
    let expected28 = ground_truth("jazz", 2, 8);

    let first = start(&journal, 1);
    let mut c = Client::connect(first.addr()).expect("connect");
    // Job 1 occupies the single runner (throttled so it outlives the stop).
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    slow.throttle_us = Some(3000);
    let id1 = c.submit(&slow).expect("submit slow");
    loop {
        let st = c.status(id1).expect("status");
        if st.get("state").map(String::as_str) == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Jobs 2 and 3 queue behind it.
    let id2 = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    let id3 = c
        .submit(&SubmitArgs::dataset("jazz", 2, 8))
        .expect("submit");
    assert_eq!((id1, id2, id3), (1, 2, 3));
    drop(c);
    first.shutdown(); // crash-equivalent for the journal: nothing recorded

    // Restart with the same journal on a fresh port.
    let second = start(&journal, 1);
    let mut c = Client::connect(second.addr()).expect("connect restarted");
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats.get("recovered").map(String::as_str),
        Some("3"),
        "all three interrupted jobs must replay: {stats:?}"
    );
    // Original ids, recovered flag, and correct results end to end.
    for (id, expected) in [(id1, expected29), (id2, expected29), (id3, expected28)] {
        let status = c.status(id).expect("status of replayed job");
        assert_eq!(
            status.get("recovered").map(String::as_str),
            Some("true"),
            "replayed job {id} must be flagged: {status:?}"
        );
        let mut streamed = 0u64;
        let end = c.stream(id, |_, _| streamed += 1).expect("stream");
        assert_eq!(
            end.get("state").map(String::as_str),
            Some("done"),
            "replayed job {id} must complete"
        );
        assert_eq!(streamed, expected, "job {id} lost or duplicated results");
    }
    // The id counter resumed past the replayed ids.
    let id4 = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    assert_eq!(id4, 4, "ids must never be reused across restarts");
    let status = c.status(id4).expect("status");
    assert_eq!(
        status.get("recovered"),
        None,
        "fresh jobs are not flagged: {status:?}"
    );

    second.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// Jobs that reached a terminal state before the stop — finished, failed,
/// or cancelled while queued — are journaled as terminal and must **not**
/// be resurrected by a restart.
#[test]
fn terminal_jobs_are_not_resurrected() {
    let journal = journal_path("terminal");

    let first = start(&journal, 1);
    let mut c = Client::connect(first.addr()).expect("connect");
    // A job that completes organically...
    let done_id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    let end = c.stream(done_id, |_, _| ()).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    // ...a job that fails validation at run time (bad file path)...
    let failed_id = c
        .submit(&SubmitArgs {
            path: Some("/no/such/file.edges".to_string()),
            k: 2,
            q: 9,
            ..SubmitArgs::default()
        })
        .expect("submit failing job");
    loop {
        let st = c.status(failed_id).expect("status");
        if st.get("state").map(String::as_str) == Some("failed") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...and a job cancelled while queued (a throttled job occupies the
    // runner so the cancel target is still queued when cancelled).
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    slow.throttle_us = Some(3000);
    let slow_id = c.submit(&slow).expect("submit slow");
    let cancelled_id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 8))
        .expect("submit");
    let state = c.cancel(cancelled_id).expect("cancel");
    assert_eq!(state, "cancelled", "a queued job dies immediately");
    drop(c);
    first.shutdown();

    let second = start(&journal, 1);
    let mut c = Client::connect(second.addr()).expect("connect restarted");
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats.get("recovered").map(String::as_str),
        Some("1"),
        "only the interrupted running job replays: {stats:?}"
    );
    let jobs = c.list().expect("list");
    let ids: Vec<&str> = jobs.iter().map(|j| j["id"].as_str()).collect();
    assert_eq!(
        ids,
        vec![slow_id.to_string().as_str()],
        "terminal jobs resurrected: {jobs:?}"
    );

    second.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// Restarting twice without touching the replayed jobs is stable: replay
/// is idempotent at the server level (same jobs, same ids, no duplicates).
#[test]
fn double_restart_is_idempotent() {
    let journal = journal_path("double");

    let first = start(&journal, 1);
    let mut c = Client::connect(first.addr()).expect("connect");
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    // Heavily throttled + capped: slow enough that the quick restart
    // rounds below always catch it unfinished, bounded so the final
    // let-it-finish stream stays fast (50 × 20 ms ≈ 1 s).
    slow.throttle_us = Some(20_000);
    slow.limit = Some(50);
    let id = c.submit(&slow).expect("submit");
    drop(c);
    first.shutdown();

    for round in 0..2 {
        let server = start(&journal, 1);
        let mut c = Client::connect(server.addr()).expect("connect");
        let jobs = c.list().expect("list");
        assert_eq!(jobs.len(), 1, "round {round}: exactly one replayed job");
        assert_eq!(jobs[0]["id"], id.to_string(), "round {round}: id preserved");
        drop(c);
        // Stop again before it can finish (throttled), journal untouched.
        server.shutdown();
    }

    // Third start: let it finish this time; a fourth start replays nothing.
    let server = start(&journal, 1);
    let mut c = Client::connect(server.addr()).expect("connect");
    let end = c.stream(id, |_, _| ()).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    drop(c);
    server.shutdown();
    // The END record raced the shutdown? No: stream returned only after the
    // terminal state was journaled by the runner, before shutdown began.
    let final_srv = start(&journal, 1);
    let mut c = Client::connect(final_srv.addr()).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats.get("recovered").map(String::as_str),
        Some("0"),
        "a finished job must not replay: {stats:?}"
    );
    final_srv.shutdown();
    let _ = std::fs::remove_file(&journal);
}
