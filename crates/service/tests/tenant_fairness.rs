//! Multi-tenant fairness and attribution tests over real TCP: a flooding
//! tenant queues 50 slow jobs on a single-runner server and an interactive
//! tenant's submit must still reach the runner within the deficit-round-
//! robin anti-starvation bound — *without* draining the flood first. A
//! second scenario restarts a journaled tenant server and proves that
//! journaled principal attribution and the cumulative `TENANT` byte
//! counters replay correctly (max-wins) into `STATS`, and that replayed
//! jobs stay scoped to their owner.
//!
//! Every server binds port 0 so parallel test runs never collide.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::{
    Client, ClientError, PrincipalStore, Server, ServerConfig, ServerHandle, SubmitArgs,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The provisioning fixture: a weight-1 batch tenant, a weight-4
/// interactive tenant, a bystander, and an admin. All quotas unlimited —
/// these tests exercise *fair share*, not rejection (the quota paths are
/// covered by the server unit tests and the router smoke).
const PRINCIPALS: &str = "\
tok-flood:flood:1:0:0:-
tok-alice:alice:4:0:0:-
tok-bob:bob:1:0:0:-
tok-root:root:1:0:0:admin
";

fn store() -> PrincipalStore {
    PrincipalStore::parse(PRINCIPALS).expect("principal fixture parses")
}

fn start_tenant_server(runners: usize, queue_cap: usize, journal: Option<&Path>) -> ServerHandle {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap,
        cache_cap: 4,
        default_threads: 2,
        journal: journal.map(Path::to_path_buf),
        principals: Some(store()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral")
    .spawn()
    .expect("spawn server")
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

fn connect_as(addr: std::net::SocketAddr, token: &str) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    let who = c.auth(token).expect("auth");
    assert_eq!(who.get("admin").map(String::as_str), Some("false"));
    c
}

/// `STATS` exposes one `tenant{i}-*` group per provisioned principal;
/// find `name`'s cumulative byte counter.
fn tenant_bytes(stats: &BTreeMap<String, String>, name: &str) -> u64 {
    for i in 0.. {
        match stats.get(&format!("tenant{i}-name")) {
            None => break,
            Some(n) if n == name => {
                return stats
                    .get(&format!("tenant{i}-bytes"))
                    .expect("bytes field next to name field")
                    .parse()
                    .expect("numeric byte counter");
            }
            Some(_) => {}
        }
    }
    panic!("tenant {name} missing from STATS: {stats:?}");
}

fn wait_dispatched(c: &mut Client, id: u64) -> String {
    // ordering: poll until the runner picks the job up; a fast job may
    // pass straight through "running" between polls, so terminal states
    // count as dispatched too.
    for _ in 0..2000 {
        let st = c.status(id).expect("status");
        let state = st.get("state").cloned().expect("state field");
        if state != "queued" {
            return state;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("job {id} never left the queue");
}

/// The acceptance scenario: with one runner, tenant `flood` queues 50
/// slow (throttled, result-limited) jobs; once the first is running,
/// tenant `alice` submits interactively. Deficit-weighted round-robin
/// must dispatch alice's job after at most the anti-starvation bound of
/// further flood dispatches (Σ other lanes' weights = 1, plus the job
/// already occupying the runner) — nowhere near draining the flood.
#[test]
fn flooding_tenant_cannot_starve_interactive_submit() {
    let expected28 = ground_truth("jazz", 2, 8);
    let handle = start_tenant_server(1, 64, None);
    let addr = handle.addr();

    let mut flood = connect_as(addr, "tok-flood");
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    slow.threads = Some(1);
    slow.limit = Some(20);
    // >= 40ms per result: each flood job runs long enough that the
    // post-dispatch status sweep below cannot race extra dispatches in.
    slow.throttle_us = Some(40_000);
    let flood_ids: Vec<u64> = (0..50)
        .map(|_| flood.submit(&slow).expect("flood submit"))
        .collect();
    wait_dispatched(&mut flood, flood_ids[0]);

    let mut alice = connect_as(addr, "tok-alice");
    let fast = SubmitArgs::dataset("jazz", 2, 8);
    let interactive = alice.submit(&fast).expect("interactive submit");
    let state = wait_dispatched(&mut alice, interactive);
    assert!(
        state == "running" || state == "done",
        "interactive job in unexpected state {state}"
    );

    // The starvation pin: when alice's job reaches the runner, the flood
    // must be essentially untouched. FIFO admission would need all 50
    // flood jobs (~5s of throttled work) dispatched first; DRR allows the
    // in-flight one plus the anti-starvation bound. 5 leaves slack for
    // dispatch races without weakening the property.
    let dispatched = flood_ids
        .iter()
        .filter(|&&id| {
            let st = flood.status(id).expect("flood status");
            st.get("state").map(String::as_str) != Some("queued")
        })
        .count();
    assert!(
        dispatched <= 5,
        "{dispatched} flood jobs dispatched before the interactive job ran \
         — fair-share admission is starving the interactive tenant"
    );

    // The interactive job is a real job, not a priority stub: it streams
    // to completion with the exact in-process count.
    let mut streamed = 0u64;
    let end = alice
        .stream(interactive, |_, _| streamed += 1)
        .expect("stream interactive");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected28);
    assert_eq!(
        end.get("principal").map(String::as_str),
        Some("alice"),
        "terminal status must carry tenant attribution"
    );

    // Tenancy scoping rides along: flood cannot observe alice's job, and
    // the denial is indistinguishable from a missing id.
    match flood.status(interactive) {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("no such job"), "unexpected denial: {msg}")
        }
        other => panic!("cross-tenant STATUS must be denied, got {other:?}"),
    }

    for id in flood_ids {
        let _ = flood.cancel(id);
    }
    handle.shutdown();
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "kplex-tenant-fairness-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Restart scenario: a journaled tenant server completes one alice job
/// (journaling a cumulative `TENANT` byte record), then is stopped with
/// an alice job running and another queued. The restarted server must
/// (a) replay alice's byte counter into `STATS` via the max-wins merge,
/// (b) replay both interrupted jobs with their principal attribution
/// intact and scoped — bob still gets `no such job` — and (c) keep
/// accumulating on top of the replayed counter, never resetting it.
#[test]
fn restart_replays_tenant_attribution_and_byte_counters() {
    let journal = journal_path("replay");
    let expected29 = ground_truth("jazz", 2, 9);
    let expected28 = ground_truth("jazz", 2, 8);

    let first = start_tenant_server(1, 16, Some(&journal));
    let mut alice = connect_as(first.addr(), "tok-alice");

    // Job 1 completes organically: its result bytes land in alice's
    // cumulative counter and are journaled as a TENANT record.
    let done_id = alice
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    let mut streamed = 0u64;
    let end = alice.stream(done_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected29);
    let bytes_before = tenant_bytes(&alice.stats().expect("stats"), "alice");
    assert!(bytes_before > 0, "completed job must account result bytes");

    // Job 2 occupies the single runner (throttled so it outlives the
    // stop); job 3 queues behind it. Both die with the server.
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    slow.throttle_us = Some(3_000);
    let running_id = alice.submit(&slow).expect("submit slow");
    wait_dispatched(&mut alice, running_id);
    let queued_id = alice
        .submit(&SubmitArgs::dataset("jazz", 2, 8))
        .expect("submit queued");
    drop(alice);
    first.shutdown(); // crash-equivalent: nothing is journaled past here

    let second = start_tenant_server(1, 16, Some(&journal));
    let mut alice = connect_as(second.addr(), "tok-alice");

    // (a) The byte counter survived the restart via the TENANT replay.
    let bytes_replayed = tenant_bytes(&alice.stats().expect("stats"), "alice");
    assert!(
        bytes_replayed >= bytes_before,
        "replayed counter {bytes_replayed} regressed below journaled {bytes_before}"
    );

    // (b) Both interrupted jobs replayed under their original ids with
    // alice's attribution — visible to alice, invisible to bob.
    for id in [running_id, queued_id] {
        let st = alice.status(id).expect("replayed status");
        assert_eq!(
            st.get("principal").map(String::as_str),
            Some("alice"),
            "replayed job {id} lost its tenant attribution: {st:?}"
        );
        assert_eq!(
            st.get("recovered").map(String::as_str),
            Some("true"),
            "replayed job {id} must be flagged recovered: {st:?}"
        );
    }
    let mut bob = connect_as(second.addr(), "tok-bob");
    match bob.status(running_id) {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("no such job"), "unexpected denial: {msg}")
        }
        other => panic!("cross-tenant STATUS after replay must be denied, got {other:?}"),
    }

    // (c) Replayed jobs run to completion and keep accumulating on top of
    // the replayed counter.
    let mut streamed = 0u64;
    let end = alice
        .stream(queued_id, |_, _| streamed += 1)
        .expect("stream replayed");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected28);
    let bytes_after = tenant_bytes(&alice.stats().expect("stats"), "alice");
    assert!(
        bytes_after > bytes_replayed,
        "post-restart completion must grow the counter ({bytes_replayed} -> {bytes_after})"
    );

    // Cleanup: let the still-running replayed job finish or die with the
    // server; the journal file is ours to remove.
    let _ = alice.cancel(running_id);
    second.shutdown();
    let _ = std::fs::remove_file(&journal);
}
