//! End-to-end router tests over real TCP: rendezvous-stable placement
//! (asserted against the exported placement function), warm-cache affinity
//! across resubmissions, queued-job failover when a backend dies, and the
//! ADDNODE/DROPNODE admin surface. All listeners bind port 0.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::router::{pick_backend, routing_key};
use kplex_service::{
    Client, ClientError, Router, RouterConfig, Server, ServerConfig, ServerHandle, SubmitArgs,
};

fn start_backend(runners: usize) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap: 16,
        cache_cap: 4,
        default_threads: 2,
        ..ServerConfig::default()
    };
    Server::bind(&cfg)
        .expect("bind backend")
        .spawn()
        .expect("spawn backend")
}

fn start_router(backends: &[String]) -> kplex_service::RouterHandle {
    Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: backends.to_vec(),
    })
    .expect("bind router")
    .spawn()
    .expect("spawn router")
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

fn submit_owner(c: &mut Client, args: &SubmitArgs) -> (u64, String) {
    let fields = c.submit_fields(args).expect("submit");
    let id = fields
        .get("id")
        .and_then(|s| s.parse().ok())
        .expect("id= in submit reply");
    let backend = fields
        .get("backend")
        .cloned()
        .expect("backend= in submit reply");
    (id, backend)
}

/// Placement is exactly what rendezvous hashing predicts, stable across
/// resubmission, and the resubmit of a cell is served from the owning
/// backend's warm prepared-graph cache.
#[test]
fn routing_is_rendezvous_stable_and_cache_affine() {
    let a = start_backend(2);
    let b = start_backend(2);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // Distinct (dataset, q−k) cells may land anywhere — but exactly where
    // the exported placement function says, twice in a row.
    for (k, q) in [(2, 9), (2, 8), (2, 7), (3, 9)] {
        let args = SubmitArgs::dataset("jazz", k, q);
        let predicted = pick_backend(&backends, &routing_key(&args))
            .expect("non-empty backend set")
            .to_string();
        let (id1, owner1) = submit_owner(&mut c, &args);
        let (id2, owner2) = submit_owner(&mut c, &args);
        assert_eq!(owner1, predicted, "({k},{q}) placed off-prediction");
        assert_eq!(owner2, predicted, "({k},{q}) resubmit moved backends");
        // Drain both so the cache assertions below are deterministic.
        for id in [id1, id2] {
            let end = c.stream(id, |_, _| ()).expect("stream");
            assert_eq!(end.get("state").map(String::as_str), Some("done"));
        }
        // The second job of the pair must be warm: same graph, same q−k,
        // same backend (either a cache hit or coalesced onto job 1's load).
        let status = c.status(id2).expect("status");
        assert_eq!(
            status.get("cache").map(String::as_str),
            Some("hit"),
            "resubmit of ({k},{q}) was not served warm: {status:?}"
        );
        assert_eq!(status.get("backend"), Some(&predicted));
    }

    // Router-wide id namespace: LIST shows every routed job exactly once,
    // with router ids and backend attribution.
    let jobs = c.list().expect("list");
    assert_eq!(jobs.len(), 8, "8 jobs routed: {jobs:?}");
    let mut ids: Vec<u64> = jobs
        .iter()
        .map(|j| j["id"].parse().expect("numeric id"))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=8).collect::<Vec<_>>(), "dense router id space");
    for job in &jobs {
        assert!(
            backends.contains(&job["backend"]),
            "job attributed to unknown backend: {job:?}"
        );
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

/// The acceptance scenario: a job queued behind a busy runner fails over to
/// the surviving backend when its owner dies, completes there with the full
/// result set, while the job that was *running* on the dead backend is
/// failed (results lost, never silently re-run).
#[test]
fn queued_jobs_fail_over_when_a_backend_dies() {
    let expected = ground_truth("jazz", 2, 7);
    let a = start_backend(1); // single runner: one job occupies the backend
    let b = start_backend(1);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // Occupy the owner of jazz(2,7)'s routing key with a throttled job...
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (slow_id, owner) = submit_owner(&mut c, &slow);
    loop {
        let st = c.status(slow_id).expect("status slow");
        match st.get("state").map(String::as_str) {
            Some("queued") => std::thread::sleep(std::time::Duration::from_millis(5)),
            Some("running") => break,
            other => panic!("slow job in unexpected state {other:?}"),
        }
    }
    // ... queue a second job with the same key (same backend, by design) ...
    let (queued_id, owner2) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", 2, 7));
    assert_eq!(owner2, owner, "equal keys must share a backend");

    // ... and kill that backend. The other one survives.
    let (victim, survivor) = if owner == a.addr().to_string() {
        (a, b)
    } else {
        (b, a)
    };
    victim.shutdown();

    // The next proxied request notices the outage: the queued job must be
    // resubmitted to the survivor under its original router id.
    let status = c.status(queued_id).expect("status after kill");
    let new_owner = status.get("backend").cloned().expect("backend=");
    assert_ne!(new_owner, owner, "queued job still on the dead backend");
    assert_eq!(new_owner, survivor.addr().to_string());

    // It completes there with the full, correct result set.
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected, "failover lost or duplicated results");

    // The running job on the dead backend is failed, not silently re-run.
    let status = c.status(slow_id).expect("status slow after kill");
    assert_eq!(
        status.get("state").map(String::as_str),
        Some("failed"),
        "running job on a dead backend must fail: {status:?}"
    );
    assert!(
        status
            .get("error")
            .is_some_and(|e| e.contains("backend_lost")),
        "failure must name the cause: {status:?}"
    );

    router.shutdown();
    survivor.shutdown();
}

/// A backend that was `DROPNODE`d (graceful drain) and *then* crashes must
/// not strand the jobs still attributed to it: the registry can no longer
/// observe an alive → dead transition for it, so recovery has to happen
/// per-job on the next proxied request that sees the transport failure.
#[test]
fn jobs_on_a_dropped_backend_recover_after_it_dies() {
    let expected = ground_truth("jazz", 2, 7);
    let a = start_backend(1);
    let b = start_backend(1);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // A running job and a queued job on the same owner.
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (slow_id, owner) = submit_owner(&mut c, &slow);
    loop {
        let st = c.status(slow_id).expect("status slow");
        if st.get("state").map(String::as_str) == Some("running") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (queued_id, owner2) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", 2, 7));
    assert_eq!(owner2, owner);
    let (victim, survivor) = if owner == a.addr().to_string() {
        (a, b)
    } else {
        (b, a)
    };

    // Graceful drain: the queued job is rerouted to the survivor right
    // away; the running job finishes in place (still reachable by addr).
    c.drop_node(&owner).expect("dropnode");
    let status = c.status(queued_id).expect("status after drain");
    assert_eq!(
        status.get("backend"),
        Some(&survivor.addr().to_string()),
        "drain must move the queued job: {status:?}"
    );
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected);
    let status = c.status(slow_id).expect("status slow after drain");
    assert_eq!(
        status.get("state").map(String::as_str),
        Some("running"),
        "drain must leave the running job in place: {status:?}"
    );

    // Now the dropped (unregistered) backend crashes. The running job must
    // still be recovered — failed with backend_lost — by the next STATUS.
    victim.shutdown();
    let status = c.status(slow_id).expect("status after crash");
    assert_eq!(
        status.get("state").map(String::as_str),
        Some("failed"),
        "job stranded on a dropped+dead backend: {status:?}"
    );
    assert!(
        status
            .get("error")
            .is_some_and(|e| e.contains("backend_lost")),
        "failure must name the cause: {status:?}"
    );

    router.shutdown();
    survivor.shutdown();
}

/// ADDNODE grows the registry at runtime, DROPNODE drains a backend
/// (new submissions avoid it), and unknown nodes are rejected.
#[test]
fn addnode_and_dropnode_administer_the_registry() {
    let a = start_backend(2);
    let b = start_backend(2);
    let addr_a = a.addr().to_string();
    let addr_b = b.addr().to_string();
    let router = start_router(std::slice::from_ref(&addr_a));
    let mut c = Client::connect(router.addr()).expect("connect");

    // One node at first; ADDNODE brings in the second.
    assert_eq!(c.nodes().expect("nodes").len(), 1);
    c.add_node(&addr_b).expect("addnode");
    let nodes = c.nodes().expect("nodes");
    assert_eq!(nodes.len(), 2);
    assert!(nodes.iter().all(|n| n["alive"] == "true"));

    // DROPNODE removes a backend from the routing set entirely: every new
    // submission lands on the remaining one, whatever the key prefers.
    c.drop_node(&addr_a).expect("dropnode");
    assert_eq!(c.nodes().expect("nodes").len(), 1);
    for (k, q) in [(2, 9), (2, 8), (1, 5)] {
        let (_, owner) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", k, q));
        assert_eq!(owner, addr_b, "dropped node still receiving jobs");
    }
    // Dropping an unknown backend is an error.
    match c.drop_node("203.0.113.9:1") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("unknown backend"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}
