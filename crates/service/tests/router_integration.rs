//! End-to-end router tests over real TCP: rendezvous-stable placement
//! (asserted against the exported placement function), warm-cache affinity
//! across resubmissions, queued-job failover when a backend dies, the
//! ADDNODE/DROPNODE admin surface, proactive health probing with flap
//! suppression, and active rebalancing of queued jobs on topology changes.
//! All listeners bind port 0.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::router::{pick_backend, routing_key};
use kplex_service::{
    Client, ClientError, ProbeConfig, Router, RouterConfig, Server, ServerConfig, ServerHandle,
    SubmitArgs,
};
use std::time::{Duration, Instant};

fn start_backend(runners: usize) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap: 16,
        cache_cap: 4,
        default_threads: 2,
        ..ServerConfig::default()
    };
    Server::bind(&cfg)
        .expect("bind backend")
        .spawn()
        .expect("spawn backend")
}

fn start_router(backends: &[String]) -> kplex_service::RouterHandle {
    start_router_probed(backends, None)
}

fn start_router_probed(
    backends: &[String],
    probe: Option<ProbeConfig>,
) -> kplex_service::RouterHandle {
    Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: backends.to_vec(),
        probe,
        ..RouterConfig::default()
    })
    .expect("bind router")
    .spawn()
    .expect("spawn router")
}

/// A probe-less router that places `replicas` copies of every job.
fn start_router_replicated(backends: &[String], replicas: usize) -> kplex_service::RouterHandle {
    Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: backends.to_vec(),
        probe: None,
        replicas,
        principals: None,
    })
    .expect("bind router")
    .spawn()
    .expect("spawn router")
}

/// Submits jobs until one is observably `running` (occupying the single
/// runner of its backend); returns its (router id, backend).
fn occupy_backend(c: &mut Client, args: &SubmitArgs) -> (u64, String) {
    let (id, owner) = submit_owner(c, args);
    loop {
        let st = c.status(id).expect("status of occupying job");
        match st.get("state").map(String::as_str) {
            Some("queued") => std::thread::sleep(Duration::from_millis(5)),
            Some("running") => return (id, owner),
            other => panic!("occupying job in unexpected state {other:?}"),
        }
    }
}

/// A jazz submission whose routing key rendezvous-prefers `want` among
/// `backends`. Scans `q` (distinct `q − k` = distinct keys) — with a dozen
/// candidates the probability that none prefers `want` is ~2⁻¹².
fn args_preferring(backends: &[String], want: &str) -> SubmitArgs {
    for q in 7..24 {
        let args = SubmitArgs::dataset("jazz", 2, q);
        if pick_backend(backends, &routing_key(&args)) == Some(want) {
            return args;
        }
    }
    panic!("no jazz key prefers {want} among {backends:?}");
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

fn submit_owner(c: &mut Client, args: &SubmitArgs) -> (u64, String) {
    let fields = c.submit_fields(args).expect("submit");
    let id = fields
        .get("id")
        .and_then(|s| s.parse().ok())
        .expect("id= in submit reply");
    let backend = fields
        .get("backend")
        .cloned()
        .expect("backend= in submit reply");
    (id, backend)
}

/// Placement is exactly what rendezvous hashing predicts, stable across
/// resubmission, and the resubmit of a cell is served from the owning
/// backend's warm prepared-graph cache.
#[test]
fn routing_is_rendezvous_stable_and_cache_affine() {
    let a = start_backend(2);
    let b = start_backend(2);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // Distinct (dataset, q−k) cells may land anywhere — but exactly where
    // the exported placement function says, twice in a row.
    for (k, q) in [(2, 9), (2, 8), (2, 7), (3, 9)] {
        let args = SubmitArgs::dataset("jazz", k, q);
        let predicted = pick_backend(&backends, &routing_key(&args))
            .expect("non-empty backend set")
            .to_string();
        let (id1, owner1) = submit_owner(&mut c, &args);
        let (id2, owner2) = submit_owner(&mut c, &args);
        assert_eq!(owner1, predicted, "({k},{q}) placed off-prediction");
        assert_eq!(owner2, predicted, "({k},{q}) resubmit moved backends");
        // Drain both so the cache assertions below are deterministic.
        for id in [id1, id2] {
            let end = c.stream(id, |_, _| ()).expect("stream");
            assert_eq!(end.get("state").map(String::as_str), Some("done"));
        }
        // The second job of the pair must be warm: same graph, same q−k,
        // same backend (either a cache hit or coalesced onto job 1's load).
        let status = c.status(id2).expect("status");
        assert_eq!(
            status.get("cache").map(String::as_str),
            Some("hit"),
            "resubmit of ({k},{q}) was not served warm: {status:?}"
        );
        assert_eq!(status.get("backend"), Some(&predicted));
    }

    // Router-wide id namespace: LIST shows every routed job exactly once,
    // with router ids and backend attribution.
    let jobs = c.list().expect("list");
    assert_eq!(jobs.len(), 8, "8 jobs routed: {jobs:?}");
    let mut ids: Vec<u64> = jobs
        .iter()
        .map(|j| j["id"].parse().expect("numeric id"))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=8).collect::<Vec<_>>(), "dense router id space");
    for job in &jobs {
        assert!(
            backends.contains(&job["backend"]),
            "job attributed to unknown backend: {job:?}"
        );
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

/// The acceptance scenario: a job queued behind a busy runner fails over to
/// the surviving backend when its owner dies, completes there with the full
/// result set. The job that was *running* on the dead backend is requeued
/// too — resumable streams (`STREAM … FROM`) make the re-run safe, so the
/// old failed/backend_lost policy no longer applies.
#[test]
fn queued_jobs_fail_over_when_a_backend_dies() {
    let expected = ground_truth("jazz", 2, 7);
    let a = start_backend(1); // single runner: one job occupies the backend
    let b = start_backend(1);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // Occupy the owner of jazz(2,7)'s routing key with a throttled job...
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (slow_id, owner) = submit_owner(&mut c, &slow);
    loop {
        let st = c.status(slow_id).expect("status slow");
        match st.get("state").map(String::as_str) {
            Some("queued") => std::thread::sleep(std::time::Duration::from_millis(5)),
            Some("running") => break,
            other => panic!("slow job in unexpected state {other:?}"),
        }
    }
    // ... queue a second job with the same key (same backend, by design) ...
    let (queued_id, owner2) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", 2, 7));
    assert_eq!(owner2, owner, "equal keys must share a backend");

    // ... and kill that backend. The other one survives.
    let (victim, survivor) = if owner == a.addr().to_string() {
        (a, b)
    } else {
        (b, a)
    };
    victim.shutdown();

    // The next proxied request notices the outage: both jobs — queued and
    // running alike — are requeued to the survivor under their original
    // router ids.
    let status = c.status(queued_id).expect("status after kill");
    let new_owner = status.get("backend").cloned().expect("backend=");
    assert_ne!(new_owner, owner, "queued job still on the dead backend");
    assert_eq!(new_owner, survivor.addr().to_string());
    let status = c.status(slow_id).expect("status slow after kill");
    assert_eq!(
        status.get("backend"),
        Some(&survivor.addr().to_string()),
        "running job must be requeued off the corpse: {status:?}"
    );
    assert!(
        matches!(
            status.get("state").map(String::as_str),
            Some("queued") | Some("running")
        ),
        "requeued job must be live again, not failed: {status:?}"
    );
    assert!(
        !status.contains_key("error"),
        "no failure recorded: {status:?}"
    );

    // Free the survivor's single runner (the requeued throttled job may be
    // occupying it), then the queued job completes there with the full,
    // correct result set.
    c.cancel(slow_id).expect("cancel requeued job");
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected, "failover lost or duplicated results");

    router.shutdown();
    survivor.shutdown();
}

/// A backend that was `DROPNODE`d (graceful drain) and *then* crashes must
/// not strand the jobs still attributed to it: the registry can no longer
/// observe an alive → dead transition for it, so recovery has to happen
/// per-job on the next proxied request that sees the transport failure.
#[test]
fn jobs_on_a_dropped_backend_recover_after_it_dies() {
    let expected = ground_truth("jazz", 2, 7);
    let a = start_backend(1);
    let b = start_backend(1);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router(&backends);
    let mut c = Client::connect(router.addr()).expect("connect");

    // A running job and a queued job on the same owner.
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (slow_id, owner) = submit_owner(&mut c, &slow);
    loop {
        let st = c.status(slow_id).expect("status slow");
        if st.get("state").map(String::as_str) == Some("running") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (queued_id, owner2) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", 2, 7));
    assert_eq!(owner2, owner);
    let (victim, survivor) = if owner == a.addr().to_string() {
        (a, b)
    } else {
        (b, a)
    };

    // Graceful drain: the queued job is rerouted to the survivor right
    // away; the running job finishes in place (still reachable by addr).
    c.drop_node(&owner).expect("dropnode");
    let status = c.status(queued_id).expect("status after drain");
    assert_eq!(
        status.get("backend"),
        Some(&survivor.addr().to_string()),
        "drain must move the queued job: {status:?}"
    );
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected);
    let status = c.status(slow_id).expect("status slow after drain");
    assert_eq!(
        status.get("state").map(String::as_str),
        Some("running"),
        "drain must leave the running job in place: {status:?}"
    );

    // Now the dropped (unregistered) backend crashes. The running job must
    // still be recovered by the next STATUS — requeued onto a live backend,
    // not stranded and not failed.
    victim.shutdown();
    let status = c.status(slow_id).expect("status after crash");
    assert_eq!(
        status.get("backend"),
        Some(&survivor.addr().to_string()),
        "job stranded on a dropped+dead backend: {status:?}"
    );
    assert!(
        matches!(
            status.get("state").map(String::as_str),
            Some("queued") | Some("running")
        ),
        "recovered job must be live again: {status:?}"
    );
    assert!(
        !status.contains_key("error"),
        "no failure recorded: {status:?}"
    );
    c.cancel(slow_id).expect("cancel recovered job");

    router.shutdown();
    survivor.shutdown();
}

/// The tentpole acceptance scenario: with two backends and `--replicas 2`,
/// killing the owning backend mid-stream is invisible to the client. The
/// router promotes the replica and resumes with `STREAM … FROM` at the
/// first unforwarded seq, so every result arrives exactly once, in order,
/// ending in a clean `END state=done` — no `ERR … lost mid-stream`.
/// `threads = 1` pins the deterministic result order that makes the
/// cross-backend seq space line up (see the module docs in `router.rs`).
#[test]
fn stream_resumes_exactly_once_when_owner_dies_mid_stream() {
    let expected = ground_truth("jazz", 2, 8);
    assert!(expected >= 8, "need enough results to cut mid-stream");
    let a = start_backend(1);
    let b = start_backend(1);
    let addr_a = a.addr().to_string();
    let addr_b = b.addr().to_string();
    let backends = vec![addr_a.clone(), addr_b.clone()];
    let router = start_router_replicated(&backends, 2);
    let mut c = Client::connect(router.addr()).expect("connect");

    let mut args = SubmitArgs::dataset("jazz", 2, 8);
    args.threads = Some(1); // deterministic result order across replicas
    args.throttle_us = Some(1000); // keep the job alive long enough to kill
    let fields = c.submit_fields(&args).expect("submit");
    assert_eq!(
        fields.get("replicas").map(String::as_str),
        Some("1"),
        "a replica copy must have been placed: {fields:?}"
    );
    let id: u64 = fields
        .get("id")
        .and_then(|s| s.parse().ok())
        .expect("id= in submit reply");
    let owner = fields.get("backend").cloned().expect("backend=");

    let mut handles = std::collections::BTreeMap::new();
    handles.insert(addr_a, a);
    handles.insert(addr_b, b);
    let mut victim = Some(handles.remove(&owner).expect("owner is one of ours"));

    // Crash the primary from inside the stream callback: `kill()` severs
    // the router's in-flight connection exactly like a SIGKILL would.
    let mut seqs = Vec::new();
    let end = c
        .stream(id, |seq, _| {
            seqs.push(seq);
            if seqs.len() == 3 {
                if let Some(h) = victim.take() {
                    h.kill();
                }
            }
        })
        .expect("stream must survive the owner's death");
    assert!(victim.is_none(), "stream ended before the cut point");
    assert_eq!(
        end.get("state").map(String::as_str),
        Some("done"),
        "{end:?}"
    );
    assert!(
        !end.contains_key("truncated"),
        "resumed stream must be complete: {end:?}"
    );
    assert_eq!(seqs.len() as u64, expected, "lost or duplicated results");
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(*seq, i as u64, "gap or duplicate at position {i}");
    }

    router.shutdown();
    for (_, h) in handles {
        h.shutdown();
    }
}

/// ADDNODE grows the registry at runtime, DROPNODE drains a backend
/// (new submissions avoid it), and unknown nodes are rejected.
#[test]
fn addnode_and_dropnode_administer_the_registry() {
    let a = start_backend(2);
    let b = start_backend(2);
    let addr_a = a.addr().to_string();
    let addr_b = b.addr().to_string();
    let router = start_router(std::slice::from_ref(&addr_a));
    let mut c = Client::connect(router.addr()).expect("connect");

    // One node at first; ADDNODE brings in the second.
    assert_eq!(c.nodes().expect("nodes").len(), 1);
    c.add_node(&addr_b).expect("addnode");
    let nodes = c.nodes().expect("nodes");
    assert_eq!(nodes.len(), 2);
    assert!(nodes.iter().all(|n| n["alive"] == "true"));

    // DROPNODE removes a backend from the routing set entirely: every new
    // submission lands on the remaining one, whatever the key prefers.
    c.drop_node(&addr_a).expect("dropnode");
    assert_eq!(c.nodes().expect("nodes").len(), 1);
    for (k, q) in [(2, 9), (2, 8), (1, 5)] {
        let (_, owner) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", k, q));
        assert_eq!(owner, addr_b, "dropped node still receiving jobs");
    }
    // Dropping an unknown backend is an error.
    match c.drop_node("203.0.113.9:1") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("unknown backend"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

/// The probe acceptance scenario: with the prober on, a stopped backend is
/// marked dead within ~2× the probe interval (`fall = 2`, and a connect to
/// a closed port fails immediately) with **zero** job requests towards it —
/// the only client traffic before detection is `NODES`, which is answered
/// from the router's own registry. The queued job on the corpse is already
/// failed over by the time the client asks, so it never sees a transport
/// error.
#[test]
fn probe_marks_a_stopped_backend_dead_without_client_traffic() {
    let interval = Duration::from_millis(200);
    let expected = ground_truth("jazz", 2, 7);
    let a = start_backend(1);
    let b = start_backend(1);
    let backends = vec![a.addr().to_string(), b.addr().to_string()];
    let router = start_router_probed(
        &backends,
        Some(ProbeConfig {
            interval,
            timeout: Duration::from_secs(1),
            fall: 2,
            rise: 2,
        }),
    );
    let mut c = Client::connect(router.addr()).expect("connect");

    // A running job occupies the owner's single runner; a second job with
    // the same key queues behind it.
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (_, owner) = occupy_backend(&mut c, &slow);
    let (queued_id, owner2) = submit_owner(&mut c, &SubmitArgs::dataset("jazz", 2, 7));
    assert_eq!(owner2, owner);
    let (victim, survivor) = if owner == a.addr().to_string() {
        (a, b)
    } else {
        (b, a)
    };

    // Kill the owner and watch the *registry* only — no STATUS, STREAM or
    // SUBMIT touches the corpse, so detection is purely probe-driven.
    victim.shutdown();
    let killed_at = Instant::now();
    let detected = loop {
        let nodes = c.nodes().expect("nodes");
        let dead = nodes
            .iter()
            .find(|n| n["addr"] == owner)
            .is_some_and(|n| n["alive"] == "false");
        if dead {
            break killed_at.elapsed();
        }
        assert!(
            killed_at.elapsed() < Duration::from_secs(10),
            "probe never marked the stopped backend dead: {nodes:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    // fall = 2 ⇒ two probe rounds; generous scheduling slack for CI.
    assert!(
        detected <= 2 * interval + Duration::from_secs(1),
        "probe detection took {detected:?}, want <= ~2x interval ({interval:?})"
    );

    // The queued job was failed over by the probe transition itself: the
    // first client request about it already names the survivor, and the
    // stream completes with the full result set — no transport errors.
    let status = c.status(queued_id).expect("status after probe failover");
    assert_eq!(
        status.get("backend"),
        Some(&survivor.addr().to_string()),
        "queued job not failed over by the prober: {status:?}"
    );
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected);

    // Flap suppression is observable: the dead node keeps accumulating
    // consecutive probe failures in NODES.
    let nodes = c.nodes().expect("nodes");
    let dead = nodes
        .iter()
        .find(|n| n["addr"] == owner)
        .expect("registered");
    assert!(
        dead["probe-fails"].parse::<u32>().expect("numeric") >= 2,
        "dead node must show its consecutive probe failures: {dead:?}"
    );

    router.shutdown();
    survivor.shutdown();
}

/// `ADDNODE` actively rebalances: a queued job whose rendezvous owner is
/// the newly added backend migrates to it (remote-cancel + resubmit under
/// the original router id), while the running job stays where it runs. The
/// manual `REBALANCE` verb then reports a steady state.
#[test]
fn addnode_actively_rebalances_queued_jobs() {
    let a = start_backend(1);
    let b = start_backend(1);
    let addr_a = a.addr().to_string();
    let addr_b = b.addr().to_string();
    let both = vec![addr_a.clone(), addr_b.clone()];
    // Router knows only `a` at first.
    let router = start_router(std::slice::from_ref(&addr_a));
    let mut c = Client::connect(router.addr()).expect("connect");

    // Occupy a's runner, then queue a job whose key will prefer `b` once
    // `b` joins. With only `a` registered, it must land on `a`.
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let (slow_id, _) = occupy_backend(&mut c, &slow);
    let wants_b = args_preferring(&both, &addr_b);
    let expected = ground_truth("jazz", wants_b.k, wants_b.q);
    let (moving_id, owner) = submit_owner(&mut c, &wants_b);
    assert_eq!(owner, addr_a, "with one backend every key lands on it");

    // ADDNODE triggers the rebalance: the queued job moves to its owner.
    c.add_node(&addr_b).expect("addnode");
    let status = c.status(moving_id).expect("status after addnode");
    assert_eq!(
        status.get("backend"),
        Some(&addr_b),
        "queued job must migrate to its rendezvous owner: {status:?}"
    );

    // It completes on the new owner with the full result set, under its
    // original router id.
    let mut streamed = 0u64;
    let end = c.stream(moving_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected, "migration lost or duplicated results");

    // The running job never moved.
    let status = c.status(slow_id).expect("status slow");
    assert_eq!(status.get("backend"), Some(&addr_a));
    assert_eq!(status.get("state").map(String::as_str), Some("running"));

    // Placement now matches rendezvous for every queued job: a manual
    // REBALANCE is a no-op.
    assert_eq!(c.rebalance().expect("rebalance"), 0);

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

/// Probe-driven rejoin: a backend that was dead (its port closed) starts
/// answering probes again, rejoins after `rise` consecutive successes, and
/// the rejoin actively rebalances queued jobs onto it.
#[test]
fn probe_rejoin_revives_a_backend_and_rebalances() {
    let interval = Duration::from_millis(50);
    let a = start_backend(1);
    let addr_a = a.addr().to_string();
    // Reserve an address for the not-yet-started backend: bind, read the
    // port, drop the listener (probes towards it then fail instantly).
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr_r = reserved.local_addr().expect("addr").to_string();
    drop(reserved);

    let both = vec![addr_a.clone(), addr_r.clone()];
    let router = start_router_probed(
        &both,
        Some(ProbeConfig {
            interval,
            timeout: Duration::from_secs(1),
            fall: 1,
            rise: 2,
        }),
    );
    let mut c = Client::connect(router.addr()).expect("connect");

    // The reserved (closed) address dies on the first probe.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let nodes = c.nodes().expect("nodes");
        if nodes
            .iter()
            .find(|n| n["addr"] == addr_r)
            .is_some_and(|n| n["alive"] == "false")
        {
            break;
        }
        assert!(Instant::now() < deadline, "probe never killed {addr_r}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Occupy `a`, then queue a job that prefers the (currently dead) node.
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(5000);
    let (slow_id, slow_owner) = occupy_backend(&mut c, &slow);
    assert_eq!(slow_owner, addr_a, "only one backend is alive");
    let wants_r = args_preferring(&both, &addr_r);
    let expected = ground_truth("jazz", wants_r.k, wants_r.q);
    let (moving_id, owner) = submit_owner(&mut c, &wants_r);
    assert_eq!(owner, addr_a, "dead nodes must not receive submissions");

    // Bring the real backend up on the reserved address. The prober needs
    // `rise = 2` clean rounds before it rejoins and rebalances.
    let mut revived = None;
    for _ in 0..50 {
        match Server::bind(&ServerConfig {
            addr: addr_r.clone(),
            runners: 1,
            ..ServerConfig::default()
        }) {
            Ok(server) => {
                revived = Some(server.spawn().expect("spawn revived backend"));
                break;
            }
            // The just-released port can be briefly contended; retry.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let revived = revived.expect("rebind the reserved address");

    // The queued job migrates to the revived owner, without any admin verb.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = c.status(moving_id).expect("status while rejoining");
        if status.get("backend") == Some(&addr_r) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rejoin never rebalanced the queued job: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let nodes = c.nodes().expect("nodes");
    assert!(
        nodes
            .iter()
            .find(|n| n["addr"] == addr_r)
            .is_some_and(|n| n["alive"] == "true"),
        "revived node must be alive in NODES: {nodes:?}"
    );
    let mut streamed = 0u64;
    let end = c.stream(moving_id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected);
    // The running job stayed put through the whole dance.
    let status = c.status(slow_id).expect("status slow");
    assert_eq!(status.get("backend"), Some(&addr_a));

    router.shutdown();
    a.shutdown();
    revived.shutdown();
}
