//! Property-based round-trip tests for the wire protocol: every request
//! frame survives `parse(render(x)) == x` (including `AUTH` and
//! tenant-tagged submissions), NDJSON result lines survive their own round
//! trip, arbitrary malformed input produces protocol errors — never panics
//! — and the tenancy layer's two safety properties hold: per-tenant byte
//! accounting saturates instead of overflowing, and no reply line ever
//! echoes a registered token.

use kplex_service::auth::{add_bytes, plex_bytes};
use kplex_service::protocol::{
    parse_plex_line, parse_request, parse_response_fields, redact_secrets, render_plex_line,
    render_request, sanitize_value, sanitize_value_redacted, Request, SubmitArgs,
};
use proptest::prelude::*;

// --- generators --------------------------------------------------------------

/// Wire-safe identifier: non-empty, no whitespace, no `=` (a value token).
fn arb_ident() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-./:";
    proptest::collection::vec(0..CHARS.len(), 1..12)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some),]
}

fn arb_submit() -> impl Strategy<Value = SubmitArgs> {
    (
        (any::<bool>(), arb_ident(), 1usize..6, 1usize..40),
        (arb_opt_u64(), arb_opt_u64(), arb_opt_u64(), arb_opt_u64()),
        (
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            prop_oneof![Just(None), arb_ident().prop_map(Some)],
            prop_oneof![Just(None), arb_ident().prop_map(Some)],
            prop_oneof![Just(None), arb_ident().prop_map(Some)],
        ),
    )
        .prop_map(
            |(
                (use_dataset, source, k, q),
                (limit, timeout_ms, throttle_us, tau_us),
                (threads, algo, store, principal),
            )| {
                SubmitArgs {
                    dataset: use_dataset.then(|| source.clone()),
                    path: (!use_dataset).then(|| source.clone()),
                    k,
                    q,
                    threads,
                    algo,
                    limit,
                    timeout_ms,
                    throttle_us,
                    tau_us,
                    store,
                    principal,
                }
            },
        )
}

/// Every request variant the protocol can express.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::List),
        Just(Request::Stats),
        Just(Request::Nodes),
        Just(Request::Rebalance),
        Just(Request::Quit),
        any::<u64>().prop_map(Request::Status),
        (any::<u64>(), any::<u64>()).prop_map(|(id, from)| Request::Stream(id, from)),
        any::<u64>().prop_map(Request::Cancel),
        arb_ident().prop_map(Request::AddNode),
        arb_ident().prop_map(Request::DropNode),
        arb_secret().prop_map(Request::Auth),
        arb_submit().prop_map(|a| Request::Submit(Box::new(a))),
    ]
}

/// An authentication token drawn from the principal-file charset
/// `[A-Za-z0-9_.-]` (what `kplex_service::auth` accepts).
fn arb_secret() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"ABCXYZabcxyz012789_.-";
    proptest::collection::vec(0..CHARS.len(), 4..20)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

// --- round trips -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_render_parse_roundtrip(req in arb_request()) {
        let line = render_request(&req);
        let reparsed = parse_request(&line);
        prop_assert_eq!(reparsed, Ok(req), "line was {:?}", line);
    }

    #[test]
    fn plex_line_roundtrip(id in any::<u64>(), seq in any::<u64>(),
                           plex in proptest::collection::vec(any::<u32>(), 0..24)) {
        let line = render_plex_line(id, seq, &plex);
        prop_assert_eq!(parse_plex_line(&line), Ok((id, seq, plex)));
    }

    #[test]
    fn response_fields_roundtrip(kv in proptest::collection::vec((arb_key(), arb_ident()), 0..8)) {
        // Last occurrence wins for duplicate keys, like a BTreeMap insert.
        let mut line = String::from("OK");
        for (k, v) in &kv {
            line.push_str(&format!(" {k}={v}"));
        }
        let parsed = parse_response_fields(&line).expect("well-formed fields");
        for (k, v) in &kv {
            let last = kv.iter().rev().find(|(k2, _)| k2 == k).map(|(_, v2)| v2);
            prop_assert_eq!(parsed.get(k.as_str()), last, "key {:?} value {:?}", k, v);
        }
    }

    /// Arbitrary junk must never panic the parser — only `Err` (or, by
    /// coincidence, parse as a valid frame).
    #[test]
    fn malformed_requests_never_panic(tokens in proptest::collection::vec(arb_token(), 0..6)) {
        let line = tokens.join(" ");
        let _ = parse_request(&line);
        let _ = parse_plex_line(&line);
        let _ = parse_response_fields(&line);
    }

    /// A `STATUS` line carrying an **arbitrary** error string — tabs,
    /// newlines, NULs, anything a failing loader or OS error may produce —
    /// must re-parse into exactly its intended fields once the value went
    /// through [`sanitize_value`]. This is the wire-injection guard: an
    /// unsanitized space would split the value into bogus extra tokens, a
    /// newline would fabricate a whole frame.
    #[test]
    fn status_lines_with_arbitrary_errors_reparse(id in any::<u64>(), err in arb_raw_string()) {
        let line = format!(
            "OK id={id} state=failed source=jazz k=2 q=9 results=0 error={}",
            sanitize_value(&err)
        );
        prop_assert!(!line.contains('\n'), "sanitized line must stay one frame");
        let fields = parse_response_fields(&line);
        prop_assert!(fields.is_ok(), "line {:?} failed to re-parse: {:?}", line, fields);
        let fields = fields.unwrap();
        prop_assert_eq!(fields.len(), 7, "extra/missing fields in {:?}", line);
        prop_assert_eq!(fields.get("id"), Some(&id.to_string()));
        prop_assert_eq!(fields.get("state").map(String::as_str), Some("failed"));
        let sanitized = fields.get("error").expect("error field survives");
        prop_assert!(
            !sanitized.chars().any(|c| c.is_whitespace() || c.is_control()),
            "unsanitized char leaked into {:?}", sanitized
        );
    }

    /// Per-tenant result-byte accounting uses saturating arithmetic end to
    /// end: across an arbitrary job sequence — any plex sizes, any starting
    /// counter, including adversarial `usize::MAX` results — the running
    /// total never panics, never wraps, and never regresses (a wrapped
    /// counter would both corrupt quota enforcement and journal a `TENANT`
    /// total that replay's max-wins merge could pin forever).
    #[test]
    fn quota_byte_accounting_saturates(
        start in any::<u64>(),
        sizes in proptest::collection::vec(0usize..usize::MAX, 0..64),
    ) {
        let mut total = start;
        for vertices in sizes {
            let next = add_bytes(total, plex_bytes(vertices));
            prop_assert!(next >= total, "byte counter regressed: {total} -> {next}");
            total = next;
        }
        // The ceiling is absorbing, not wrapping.
        prop_assert_eq!(add_bytes(u64::MAX, plex_bytes(usize::MAX)), u64::MAX);
        prop_assert_eq!(add_bytes(u64::MAX, 1), u64::MAX);
    }

    /// No reply line ever contains a registered token. A value embedding a
    /// leaked token — surrounded by arbitrary junk, including whitespace
    /// and control characters — goes through the `sanitize_value_redacted`
    /// layer, the assembled line through the per-connection `redact_secrets`
    /// chokepoint, and afterwards no registered token may appear anywhere,
    /// even when tokens are substrings of each other.
    #[test]
    fn reply_lines_never_echo_registered_tokens(
        secrets in proptest::collection::vec(arb_secret(), 1..4),
        prefix in arb_raw_string(),
        suffix in arb_raw_string(),
        pick in 0usize..16,
    ) {
        let leaked = format!("{prefix}{}{suffix}", secrets[pick % secrets.len()]);
        // Value layer: what STATUS error= fields go through.
        let value = sanitize_value_redacted(&leaked, &secrets);
        for secret in &secrets {
            prop_assert!(
                !value.contains(secret.as_str()),
                "token {:?} survived sanitize_value_redacted: {:?}", secret, value
            );
        }
        // Line layer: the per-connection reply chokepoint.
        let line = redact_secrets(
            &format!("OK id=7 state=failed error={value}"),
            &secrets,
        );
        for secret in &secrets {
            prop_assert!(
                !line.contains(secret.as_str()),
                "token {:?} leaked into reply line {:?}", secret, line
            );
        }
    }
}

/// Keys must not contain `=` (values may not either in this grammar).
fn arb_key() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
    proptest::collection::vec(0..CHARS.len(), 1..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

/// Fully unconstrained string: every Latin-1 code point, so tabs, spaces,
/// newlines, NULs and `=` all appear — the raw material a failing loader
/// or OS error may hand to `status_line`.
fn arb_raw_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..256, 0..24)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as u8 as char).collect())
}

/// Unconstrained token soup for the never-panic property: includes `=`,
/// quotes, braces, digits, and empty-ish separators.
fn arb_token() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abczABCZ0189=\"{}[]:,.-_/\\";
    proptest::collection::vec(0..CHARS.len(), 0..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

// --- targeted malformed frames ----------------------------------------------

#[test]
fn malformed_frames_error_cleanly() {
    for line in [
        "",
        "   ",
        "SUBMIT",
        "SUBMIT k=2 q=9",                      // no source
        "SUBMIT dataset=jazz path=x k=2 q=9",  // both sources
        "SUBMIT dataset=jazz k=2",             // no q
        "SUBMIT dataset=jazz k=two q=9",       // bad number
        "SUBMIT dataset=jazz k=2 q=9 bogus=1", // unknown key
        "SUBMIT dataset= k=2 q=9",             // empty value
        "SUBMIT dataset",                      // bare token
        "STATUS",
        "STATUS 1 2",
        "STATUS -3",
        "STREAM eleven",
        "CANCEL 18446744073709551616", // u64 overflow
        "ADDNODE",
        "ADDNODE a b",
        "DROPNODE",
        "NOPE 1",
        "\u{0} SUBMIT",
    ] {
        let parsed = parse_request(line);
        assert!(parsed.is_err(), "{line:?} parsed as {parsed:?}");
    }
    for line in [
        "not json",
        "{}",
        "{\"id\":1}",
        "{\"id\":1,\"seq\":2}",
        "{\"id\":x,\"seq\":0,\"plex\":[]}",
        "{\"id\":1,\"seq\":0,\"plex\":[1,}",
        "{\"id\":1,\"seq\":0,\"plex\":[1],\"extra\":2}",
    ] {
        assert!(parse_plex_line(line).is_err(), "{line:?} must not parse");
    }
}
