//! Property-based round-trip tests for the wire protocol: every request
//! frame survives `parse(render(x)) == x`, NDJSON result lines survive
//! their own round trip, and arbitrary malformed input produces protocol
//! errors — never panics.

use kplex_service::protocol::{
    parse_plex_line, parse_request, parse_response_fields, render_plex_line, render_request,
    Request, SubmitArgs,
};
use proptest::prelude::*;

// --- generators --------------------------------------------------------------

/// Wire-safe identifier: non-empty, no whitespace, no `=` (a value token).
fn arb_ident() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-./:";
    proptest::collection::vec(0..CHARS.len(), 1..12)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some),]
}

fn arb_submit() -> impl Strategy<Value = SubmitArgs> {
    (
        (any::<bool>(), arb_ident(), 1usize..6, 1usize..40),
        (
            arb_opt_u64(),
            arb_opt_u64(),
            arb_opt_u64(),
            arb_opt_u64(),
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            prop_oneof![Just(None), arb_ident().prop_map(Some)],
        ),
    )
        .prop_map(
            |(
                (use_dataset, source, k, q),
                (limit, timeout_ms, throttle_us, tau_us, threads, algo),
            )| {
                SubmitArgs {
                    dataset: use_dataset.then(|| source.clone()),
                    path: (!use_dataset).then(|| source.clone()),
                    k,
                    q,
                    threads,
                    algo,
                    limit,
                    timeout_ms,
                    throttle_us,
                    tau_us,
                }
            },
        )
}

/// Every request variant the protocol can express.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::List),
        Just(Request::Stats),
        Just(Request::Nodes),
        Just(Request::Rebalance),
        Just(Request::Quit),
        any::<u64>().prop_map(Request::Status),
        any::<u64>().prop_map(Request::Stream),
        any::<u64>().prop_map(Request::Cancel),
        arb_ident().prop_map(Request::AddNode),
        arb_ident().prop_map(Request::DropNode),
        arb_submit().prop_map(|a| Request::Submit(Box::new(a))),
    ]
}

// --- round trips -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_render_parse_roundtrip(req in arb_request()) {
        let line = render_request(&req);
        let reparsed = parse_request(&line);
        prop_assert_eq!(reparsed, Ok(req), "line was {:?}", line);
    }

    #[test]
    fn plex_line_roundtrip(id in any::<u64>(), seq in any::<u64>(),
                           plex in proptest::collection::vec(any::<u32>(), 0..24)) {
        let line = render_plex_line(id, seq, &plex);
        prop_assert_eq!(parse_plex_line(&line), Ok((id, seq, plex)));
    }

    #[test]
    fn response_fields_roundtrip(kv in proptest::collection::vec((arb_key(), arb_ident()), 0..8)) {
        // Last occurrence wins for duplicate keys, like a BTreeMap insert.
        let mut line = String::from("OK");
        for (k, v) in &kv {
            line.push_str(&format!(" {k}={v}"));
        }
        let parsed = parse_response_fields(&line).expect("well-formed fields");
        for (k, v) in &kv {
            let last = kv.iter().rev().find(|(k2, _)| k2 == k).map(|(_, v2)| v2);
            prop_assert_eq!(parsed.get(k.as_str()), last, "key {:?} value {:?}", k, v);
        }
    }

    /// Arbitrary junk must never panic the parser — only `Err` (or, by
    /// coincidence, parse as a valid frame).
    #[test]
    fn malformed_requests_never_panic(tokens in proptest::collection::vec(arb_token(), 0..6)) {
        let line = tokens.join(" ");
        let _ = parse_request(&line);
        let _ = parse_plex_line(&line);
        let _ = parse_response_fields(&line);
    }
}

/// Keys must not contain `=` (values may not either in this grammar).
fn arb_key() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
    proptest::collection::vec(0..CHARS.len(), 1..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

/// Unconstrained token soup for the never-panic property: includes `=`,
/// quotes, braces, digits, and empty-ish separators.
fn arb_token() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abczABCZ0189=\"{}[]:,.-_/\\";
    proptest::collection::vec(0..CHARS.len(), 0..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i] as char).collect())
}

// --- targeted malformed frames ----------------------------------------------

#[test]
fn malformed_frames_error_cleanly() {
    for line in [
        "",
        "   ",
        "SUBMIT",
        "SUBMIT k=2 q=9",                      // no source
        "SUBMIT dataset=jazz path=x k=2 q=9",  // both sources
        "SUBMIT dataset=jazz k=2",             // no q
        "SUBMIT dataset=jazz k=two q=9",       // bad number
        "SUBMIT dataset=jazz k=2 q=9 bogus=1", // unknown key
        "SUBMIT dataset= k=2 q=9",             // empty value
        "SUBMIT dataset",                      // bare token
        "STATUS",
        "STATUS 1 2",
        "STATUS -3",
        "STREAM eleven",
        "CANCEL 18446744073709551616", // u64 overflow
        "ADDNODE",
        "ADDNODE a b",
        "DROPNODE",
        "NOPE 1",
        "\u{0} SUBMIT",
    ] {
        let parsed = parse_request(line);
        assert!(parsed.is_err(), "{line:?} parsed as {parsed:?}");
    }
    for line in [
        "not json",
        "{}",
        "{\"id\":1}",
        "{\"id\":1,\"seq\":2}",
        "{\"id\":x,\"seq\":0,\"plex\":[]}",
        "{\"id\":1,\"seq\":0,\"plex\":[1,}",
        "{\"id\":1,\"seq\":0,\"plex\":[1],\"extra\":2}",
    ] {
        assert!(parse_plex_line(line).is_err(), "{line:?} must not parse");
    }
}
