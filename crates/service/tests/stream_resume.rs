//! Resumable-stream integration tests against a single `kplexd` backend:
//! a stream cut at an arbitrary point and resumed with `STREAM … FROM`
//! equals the uninterrupted stream (each seq exactly once, property-based
//! over the cut point), `FROM` at or beyond the end is answered explicitly
//! rather than hanging, and a restart with `--journal` replays the job with
//! its delivered-offset floor so consumed results are never re-delivered.
//! All listeners bind port 0.

use kplex_service::{Client, Server, ServerConfig, ServerHandle, SubmitArgs};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// A completed, deterministic job on a long-lived backend, streamed once in
/// full. Shared by the cut/resume property (many cases, one enumeration)
/// and the beyond-the-end test.
struct Fixture {
    addr: String,
    id: u64,
    full: Vec<(u64, Vec<u32>)>,
    _server: ServerHandle,
}

fn fixture() -> &'static Fixture {
    static SETUP: OnceLock<Fixture> = OnceLock::new();
    SETUP.get_or_init(|| {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            runners: 1,
            queue_cap: 4,
            cache_cap: 2,
            ..ServerConfig::default()
        })
        .expect("bind server")
        .spawn()
        .expect("spawn server");
        let mut c = Client::connect(server.addr()).expect("connect");
        // threads = 1 pins the result order, so every re-read of the
        // buffered stream yields the same (seq, plex) pairs.
        let mut args = SubmitArgs::dataset("jazz", 2, 8);
        args.threads = Some(1);
        let id = c.submit(&args).expect("submit");
        let mut full = Vec::new();
        let end = c
            .stream(id, |seq, plex| full.push((seq, plex)))
            .expect("stream fixture job");
        assert_eq!(end.get("state").map(String::as_str), Some("done"));
        assert!(!full.is_empty(), "fixture job must produce results");
        Fixture {
            addr: server.addr().to_string(),
            id,
            full,
            _server: server,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The resume identity: for any cut point `p`, consuming `p` results
    /// from `STREAM … FROM 0`, abandoning the connection (the crash model —
    /// the `p`-th result may already be in flight, but the client has not
    /// consumed it), and re-streaming `FROM p` on a fresh connection yields
    /// exactly the uninterrupted stream — every seq once, nothing skipped,
    /// nothing re-delivered.
    #[test]
    fn cut_and_resume_equals_uninterrupted(cut in any::<u64>()) {
        let fx = fixture();
        let total = fx.full.len() as u64;
        let p = cut % (total + 1); // 0 ..= total inclusive

        let mut prefix = Vec::new();
        let mut c = Client::connect(&fx.addr).expect("connect");
        let _ = c
            .stream_while_from(fx.id, 0, |seq, plex| {
                if prefix.len() as u64 == p {
                    return false; // delivered but never consumed: resume at p
                }
                prefix.push((seq, plex));
                true
            })
            .expect("prefix stream");
        drop(c); // abandon the connection mid-stream

        let mut resumed = prefix.clone();
        let mut c = Client::connect(&fx.addr).expect("reconnect");
        let end = c
            .stream_from(fx.id, p, |seq, plex| resumed.push((seq, plex)))
            .expect("resumed stream");
        prop_assert_eq!(end.get("state").map(String::as_str), Some("done"));
        prop_assert_eq!(end.get("results"), Some(&total.to_string()));
        prop_assert!(!end.contains_key("truncated"), "complete resume: {:?}", end);
        prop_assert_eq!(&resumed, &fx.full, "cut at {} broke the identity", p);
    }
}

/// `FROM` at the exact end of a finished job is an empty stream with the
/// job's true count; `FROM` beyond the end answers immediately too, but
/// carries the `truncated=true total=` marker so the client can tell its
/// offset never existed.
#[test]
fn from_at_or_beyond_the_end_is_explicit() {
    let fx = fixture();
    let total = fx.full.len() as u64;
    let mut c = Client::connect(&fx.addr).expect("connect");

    let mut got = 0u64;
    let end = c
        .stream_from(fx.id, total, |_, _| got += 1)
        .expect("stream from the end");
    assert_eq!(got, 0, "nothing left to deliver");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(end.get("results"), Some(&total.to_string()));
    assert!(!end.contains_key("truncated"), "{end:?}");

    let beyond = total + 5;
    let end = c
        .stream_from(fx.id, beyond, |_, _| got += 1)
        .expect("stream from beyond the end");
    assert_eq!(got, 0, "nothing delivered for an offset past the end");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(end.get("results"), Some(&beyond.to_string()));
    assert_eq!(
        end.get("truncated").map(String::as_str),
        Some("true"),
        "an impossible offset must be flagged: {end:?}"
    );
    assert_eq!(end.get("total"), Some(&total.to_string()), "{end:?}");
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "kplex-stream-resume-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn start_batched(journal: &Path, delivery_batch: usize) -> ServerHandle {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners: 1,
        queue_cap: 4,
        cache_cap: 2,
        journal: Some(journal.to_path_buf()),
        delivery_batch,
        ..ServerConfig::default()
    })
    .expect("bind server")
    .spawn()
    .expect("spawn server")
}

/// The durability acceptance scenario: a journaled backend streams a
/// throttled job to a client that consumes 20 results and walks away; the
/// server is stopped mid-job (crash-equivalent for the journal) and
/// restarted with the same `--journal`. The replayed job re-runs, but a
/// plain `STREAM <id>` (FROM 0) must start at the journaled delivery floor
/// — at least the last full `delivery_batch` boundary the client got past,
/// never back at seq 0 — and run contiguously to a clean `END`.
#[test]
fn restart_does_not_redeliver_below_the_journaled_offset() {
    let journal = journal_path("floor");
    let total = 200u64;

    let first = start_batched(&journal, 8);
    let mut c = Client::connect(first.addr()).expect("connect");
    let mut slow = SubmitArgs::dataset("jazz", 2, 9);
    slow.threads = Some(1);
    slow.throttle_us = Some(5000); // ~1 s of production: outlives the stop
    slow.limit = Some(total);
    let id = c.submit(&slow).expect("submit");

    // Consume exactly 20 results, then abandon the stream and the server.
    let mut consumed = 0u64;
    let end = c
        .stream_while(id, |_, _| {
            consumed += 1;
            consumed < 20
        })
        .expect("partial stream");
    assert!(end.is_none(), "stream was abandoned, not ended");
    assert_eq!(consumed, 20);
    drop(c);
    first.shutdown(); // crash-equivalent: the cancel is not journaled

    // Restart on a fresh port with the same journal: the job replays and
    // re-runs, but delivery resumes at the journaled floor.
    let second = start_batched(&journal, 8);
    let mut c = Client::connect(second.addr()).expect("connect restarted");
    let mut seqs = Vec::new();
    let end = c
        .stream(id, |seq, _| seqs.push(seq))
        .expect("stream after restart");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(end.get("results"), Some(&total.to_string()));
    let floor = *seqs.first().expect("the floor is below the total");
    assert!(
        floor >= 16,
        "20 consumed results cross two 8-batches; delivery restarted at {floor}"
    );
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(*seq, floor + i as u64, "gap in post-restart delivery");
    }
    assert_eq!(
        floor + seqs.len() as u64,
        total,
        "post-restart stream must run to the end"
    );

    second.shutdown();
    let _ = std::fs::remove_file(&journal);
}
