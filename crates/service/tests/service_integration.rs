//! End-to-end tests over real TCP connections: concurrent jobs, mid-stream
//! cancellation, the prepared-graph cache, queue back-pressure, and error
//! paths. Counts are cross-checked against in-process `CountSink` runs.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::{Client, ClientError, Server, ServerConfig, ServerHandle, SubmitArgs};

fn start_server(runners: usize, queue_cap: usize) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap,
        cache_cap: 4,
        default_threads: 2,
    };
    Server::bind(&cfg)
        .expect("bind ephemeral")
        .spawn()
        .expect("spawn server")
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

/// The acceptance scenario: two clients stream different jobs concurrently;
/// one is cancelled mid-stream without affecting the other; counts match
/// `CountSink`; a warm resubmit is served from the cache.
#[test]
fn concurrent_jobs_cancel_and_warm_cache() {
    let expected_jazz = ground_truth("jazz", 2, 9);
    assert!(expected_jazz > 0, "jazz (2, 9) must have results");
    let total_lastfm = ground_truth("lastfm", 2, 9);
    assert!(
        total_lastfm > 10,
        "lastfm (2, 9) needs enough results to cancel mid-stream"
    );

    let handle = start_server(2, 16);
    let addr = handle.addr();

    // Client A: full streaming job on jazz.
    let full = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect A");
        let mut args = SubmitArgs::dataset("jazz", 2, 9);
        args.threads = Some(2);
        let id = c.submit(&args).expect("submit jazz");
        let mut seqs = Vec::new();
        let mut sizes_ok = true;
        let end = c
            .stream(id, |seq, plex| {
                seqs.push(seq);
                sizes_ok &= plex.len() >= 9;
            })
            .expect("stream jazz");
        assert_eq!(end.get("state").map(String::as_str), Some("done"));
        assert!(sizes_ok, "every streamed plex must have >= q vertices");
        // seq is a contiguous replay from 0.
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        (id, seqs.len() as u64)
    });

    // Client B: throttled job on lastfm, cancelled after a few results.
    let cancelled = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect B");
        let mut args = SubmitArgs::dataset("lastfm", 2, 9);
        args.threads = Some(2);
        args.throttle_us = Some(3000); // ~3ms per result: plenty of time to cancel
        let id = c.submit(&args).expect("submit lastfm");
        let mut canceller = Client::connect(addr).expect("connect canceller");
        let mut seen = 0u64;
        let end = c
            .stream(id, |_, _| {
                seen += 1;
                if seen == 3 {
                    canceller.cancel(id).expect("cancel");
                }
            })
            .expect("stream lastfm");
        assert_eq!(
            end.get("state").map(String::as_str),
            Some("cancelled"),
            "mid-stream cancel must end the stream with state=cancelled"
        );
        let streamed: u64 = end
            .get("results")
            .and_then(|s| s.parse().ok())
            .expect("results=");
        (id, streamed)
    });

    let (jazz_id, jazz_streamed) = full.join().expect("jazz thread");
    let (lastfm_id, lastfm_streamed) = cancelled.join().expect("lastfm thread");

    // The full job is unaffected by the sibling cancellation and matches
    // the in-process count exactly.
    assert_eq!(jazz_streamed, expected_jazz);

    // The cancelled job stopped early; its engine stats show partial work.
    assert!(
        lastfm_streamed < total_lastfm,
        "cancelled job delivered all {total_lastfm} results"
    );
    let mut c = Client::connect(addr).expect("connect check");
    let status = c.status(lastfm_id).expect("status");
    assert_eq!(status.get("state").map(String::as_str), Some("cancelled"));
    let outputs: u64 = status
        .get("outputs")
        .and_then(|s| s.parse().ok())
        .expect("finished jobs report outputs=");
    assert!(
        outputs < total_lastfm,
        "cancelled workers kept enumerating: {outputs} outputs of {total_lastfm}"
    );

    // Warm cache: resubmitting the jazz cell skips load/reduce.
    let first = c.status(jazz_id).expect("status jazz");
    assert_eq!(first.get("cache").map(String::as_str), Some("miss"));
    let hits_before: u64 = c.stats().expect("stats")["cache-hits"].parse().unwrap();
    let id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("resubmit");
    let end = c.stream(id, |_, _| ()).expect("stream resubmit");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    let status = c.status(id).expect("status resubmit");
    assert_eq!(
        status.get("cache").map(String::as_str),
        Some("hit"),
        "warm resubmit must be served from the prepared-graph cache"
    );
    let hits_after: u64 = c.stats().expect("stats")["cache-hits"].parse().unwrap();
    assert!(hits_after > hits_before);

    handle.shutdown();
}

#[test]
fn result_cap_truncates_the_stream() {
    let total = ground_truth("jazz", 2, 8);
    assert!(total > 5);
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut args = SubmitArgs::dataset("jazz", 2, 8);
    args.limit = Some(5);
    let id = c.submit(&args).expect("submit");
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).expect("stream");
    // A capped job still finishes as done — truncated, not failed.
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, 5, "the cap bounds the buffered results exactly");
    handle.shutdown();
}

#[test]
fn queue_backpressure_rejects_when_full() {
    let handle = start_server(1, 1);
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Occupy the single runner with a slow job...
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(5000);
    let slow_id = c.submit(&slow).expect("submit slow");
    // Wait until it actually left the queue for the runner.
    loop {
        let st = c.status(slow_id).expect("status");
        if st.get("state").map(String::as_str) != Some("queued") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // ... fill the queue (capacity 1) ...
    c.submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("fills queue");
    // ... and the next submission bounces.
    match c.submit(&SubmitArgs::dataset("jazz", 2, 9)) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("queue full"), "{msg}"),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    c.cancel(slow_id).expect("cancel slow");
    handle.shutdown();
}

#[test]
fn invalid_requests_are_rejected() {
    let handle = start_server(1, 4);
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.ping().expect("ping");
    // Unknown dataset, bad params, unknown algo — all rejected at submit.
    for args in [
        SubmitArgs::dataset("no-such-graph", 2, 9),
        SubmitArgs::dataset("jazz", 3, 2), // q < 2k - 1
        {
            let mut a = SubmitArgs::dataset("jazz", 2, 9);
            a.algo = Some("bogus".into());
            a
        },
    ] {
        assert!(
            matches!(c.submit(&args), Err(ClientError::Remote(_))),
            "{args:?} must be rejected"
        );
    }
    // Unknown job ids.
    assert!(matches!(c.status(999), Err(ClientError::Remote(_))));
    assert!(matches!(c.cancel(999), Err(ClientError::Remote(_))));
    // Jobs survive across connections: submit here, observe elsewhere.
    let id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    let mut c2 = Client::connect(handle.addr()).expect("second connection");
    let end = c2.stream(id, |_, _| ()).expect("stream from second conn");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    let jobs = c2.list().expect("list");
    assert!(jobs.iter().any(|j| j["id"] == id.to_string()));
    handle.shutdown();
}
