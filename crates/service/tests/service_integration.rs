//! End-to-end tests over real TCP connections: concurrent jobs, mid-stream
//! cancellation, the prepared-graph cache (including per-entry
//! single-flight under a deterministically blocked cold load), deadlines,
//! throttling, queue back-pressure, and error paths. Counts are
//! cross-checked against in-process `CountSink` runs.
//!
//! Every server binds port 0 and the tests read the resolved address back,
//! so parallel test runs can never collide on a port.

use kplex_core::{enumerate_count, AlgoConfig, Params};
use kplex_service::{
    Client, ClientError, LoadHook, Server, ServerConfig, ServerHandle, SubmitArgs,
};

fn start_server(runners: usize, queue_cap: usize) -> ServerHandle {
    start_server_with(runners, queue_cap, None)
}

fn start_server_with(runners: usize, queue_cap: usize, hook: Option<LoadHook>) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners,
        queue_cap,
        cache_cap: 4,
        default_threads: 2,
        cold_load_hook: hook,
        ..ServerConfig::default()
    };
    Server::bind(&cfg)
        .expect("bind ephemeral")
        .spawn()
        .expect("spawn server")
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> u64 {
    let g = kplex_datasets::by_name(dataset).expect("dataset").load();
    let params = Params::new(k, q).expect("valid params");
    enumerate_count(&g, params, &AlgoConfig::ours()).0
}

/// The acceptance scenario: two clients stream different jobs concurrently;
/// one is cancelled mid-stream without affecting the other; counts match
/// `CountSink`; a warm resubmit is served from the cache.
#[test]
fn concurrent_jobs_cancel_and_warm_cache() {
    let expected_jazz = ground_truth("jazz", 2, 9);
    assert!(expected_jazz > 0, "jazz (2, 9) must have results");
    let total_lastfm = ground_truth("lastfm", 2, 9);
    assert!(
        total_lastfm > 10,
        "lastfm (2, 9) needs enough results to cancel mid-stream"
    );

    let handle = start_server(2, 16);
    let addr = handle.addr();

    // Client A: full streaming job on jazz.
    let full = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect A");
        let mut args = SubmitArgs::dataset("jazz", 2, 9);
        args.threads = Some(2);
        let id = c.submit(&args).expect("submit jazz");
        let mut seqs = Vec::new();
        let mut sizes_ok = true;
        let end = c
            .stream(id, |seq, plex| {
                seqs.push(seq);
                sizes_ok &= plex.len() >= 9;
            })
            .expect("stream jazz");
        assert_eq!(end.get("state").map(String::as_str), Some("done"));
        assert!(sizes_ok, "every streamed plex must have >= q vertices");
        // seq is a contiguous replay from 0.
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        (id, seqs.len() as u64)
    });

    // Client B: throttled job on lastfm, cancelled after a few results.
    let cancelled = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect B");
        let mut args = SubmitArgs::dataset("lastfm", 2, 9);
        args.threads = Some(2);
        args.throttle_us = Some(3000); // ~3ms per result: plenty of time to cancel
        let id = c.submit(&args).expect("submit lastfm");
        let mut canceller = Client::connect(addr).expect("connect canceller");
        let mut seen = 0u64;
        let end = c
            .stream(id, |_, _| {
                seen += 1;
                if seen == 3 {
                    canceller.cancel(id).expect("cancel");
                }
            })
            .expect("stream lastfm");
        assert_eq!(
            end.get("state").map(String::as_str),
            Some("cancelled"),
            "mid-stream cancel must end the stream with state=cancelled"
        );
        let streamed: u64 = end
            .get("results")
            .and_then(|s| s.parse().ok())
            .expect("results=");
        (id, streamed)
    });

    let (jazz_id, jazz_streamed) = full.join().expect("jazz thread");
    let (lastfm_id, lastfm_streamed) = cancelled.join().expect("lastfm thread");

    // The full job is unaffected by the sibling cancellation and matches
    // the in-process count exactly.
    assert_eq!(jazz_streamed, expected_jazz);

    // The cancelled job stopped early; its engine stats show partial work.
    assert!(
        lastfm_streamed < total_lastfm,
        "cancelled job delivered all {total_lastfm} results"
    );
    let mut c = Client::connect(addr).expect("connect check");
    let status = c.status(lastfm_id).expect("status");
    assert_eq!(status.get("state").map(String::as_str), Some("cancelled"));
    let outputs: u64 = status
        .get("outputs")
        .and_then(|s| s.parse().ok())
        .expect("finished jobs report outputs=");
    assert!(
        outputs < total_lastfm,
        "cancelled workers kept enumerating: {outputs} outputs of {total_lastfm}"
    );

    // Warm cache: resubmitting the jazz cell skips load/reduce.
    let first = c.status(jazz_id).expect("status jazz");
    assert_eq!(first.get("cache").map(String::as_str), Some("miss"));
    let hits_before: u64 = c.stats().expect("stats")["cache-hits"].parse().unwrap();
    let id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("resubmit");
    let end = c.stream(id, |_, _| ()).expect("stream resubmit");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    let status = c.status(id).expect("status resubmit");
    assert_eq!(
        status.get("cache").map(String::as_str),
        Some("hit"),
        "warm resubmit must be served from the prepared-graph cache"
    );
    let hits_after: u64 = c.stats().expect("stats")["cache-hits"].parse().unwrap();
    assert!(hits_after > hits_before);

    // Work-stealing counters are exposed and balanced between jobs: with
    // every pool quiesced, each park has a matching unpark.
    let stats = c.stats().expect("stats");
    let parks: u64 = stats["sched-parks"].parse().unwrap();
    let unparks: u64 = stats["sched-unparks"].parse().unwrap();
    assert_eq!(
        parks, unparks,
        "a worker is still parked after all jobs ended"
    );

    handle.shutdown();
}

#[test]
fn result_cap_truncates_the_stream() {
    let total = ground_truth("jazz", 2, 8);
    assert!(total > 5);
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut args = SubmitArgs::dataset("jazz", 2, 8);
    args.limit = Some(5);
    let id = c.submit(&args).expect("submit");
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).expect("stream");
    // A capped job still finishes as done — truncated, not failed.
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, 5, "the cap bounds the buffered results exactly");
    handle.shutdown();
}

#[test]
fn queue_backpressure_rejects_when_full() {
    let handle = start_server(1, 1);
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Occupy the single runner with a slow job...
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(5000);
    let slow_id = c.submit(&slow).expect("submit slow");
    // Wait until it actually left the queue for the runner.
    loop {
        let st = c.status(slow_id).expect("status");
        if st.get("state").map(String::as_str) != Some("queued") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // ... fill the queue (capacity 1) ...
    c.submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("fills queue");
    // ... and the next submission bounces.
    match c.submit(&SubmitArgs::dataset("jazz", 2, 9)) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("queue full"), "{msg}"),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    c.cancel(slow_id).expect("cancel slow");
    handle.shutdown();
}

/// The deadline path: a throttled job with a short `timeout-ms` must end
/// `failed` with `error=deadline_exceeded`, and its stream must terminate
/// with that state rather than hanging.
#[test]
fn deadline_fails_a_slow_job() {
    let total = ground_truth("jazz", 2, 7);
    assert!(total > 50, "jazz (2, 7) must be big enough to outlive 30ms");
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut args = SubmitArgs::dataset("jazz", 2, 7);
    args.threads = Some(1);
    args.throttle_us = Some(2000); // ~2ms per result: total >> deadline
    args.timeout_ms = Some(30);
    let id = c.submit(&args).expect("submit");
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).expect("stream");
    assert_eq!(
        end.get("state").map(String::as_str),
        Some("failed"),
        "deadline must fail the job"
    );
    assert!(
        streamed < total,
        "the deadline stopped nothing: {streamed} of {total} results"
    );
    let status = c.status(id).expect("status");
    assert_eq!(status.get("state").map(String::as_str), Some("failed"));
    assert_eq!(
        status.get("error").map(String::as_str),
        Some("deadline_exceeded"),
        "STATUS must carry the deadline error: {status:?}"
    );
    handle.shutdown();
}

/// The throttle path: with one engine thread, every reported result sleeps
/// `throttle-us` first, so elapsed wall-clock is bounded below by
/// `results × throttle` — a deterministic floor, no sleeps in the test.
#[test]
fn throttle_paces_the_stream() {
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut args = SubmitArgs::dataset("jazz", 2, 9);
    args.threads = Some(1);
    args.limit = Some(5);
    args.throttle_us = Some(4000);
    let id = c.submit(&args).expect("submit");
    let end = c.stream(id, |_, _| ()).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    let status = c.status(id).expect("status");
    let elapsed_ms: u64 = status
        .get("elapsed-ms")
        .and_then(|s| s.parse().ok())
        .expect("elapsed-ms=");
    assert!(
        elapsed_ms >= 5 * 4,
        "5 results at 4ms throttle ran in {elapsed_ms}ms (< 20ms floor)"
    );
    handle.shutdown();
}

/// The straggler-splitting (`tau-us`) path: an explicit τ must not change
/// the result count.
#[test]
fn tau_override_preserves_counts() {
    let expected = ground_truth("jazz", 2, 9);
    let handle = start_server(1, 8);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut args = SubmitArgs::dataset("jazz", 2, 9);
    args.threads = Some(2);
    args.tau_us = Some(50);
    let id = c.submit(&args).expect("submit");
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).expect("stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    assert_eq!(streamed, expected, "tau-us must not change the result set");
    handle.shutdown();
}

/// The regression the per-entry single-flight cache fixes: while one job's
/// cold graph load is deterministically blocked (via the test-only load
/// hook — no sleeps), a warm job for a *different* key and `STATS` both
/// complete, and a second submit for the *same* cold key coalesces onto
/// the in-flight load instead of loading again.
#[test]
fn warm_jobs_and_stats_proceed_while_a_cold_load_is_blocked() {
    use kplex_service::sync::{OrderedMutex, Rank};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Duration;

    let lastfm_loads = Arc::new(AtomicUsize::new(0));
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let hook = {
        let lastfm_loads = lastfm_loads.clone();
        // `Sender` is `Sync`; the `Receiver` is not, so it rides in an
        // OrderedMutex at the leaf rank (never held while locking else).
        let release_rx = OrderedMutex::new(Rank::Channel, "test-release-rx", release_rx);
        LoadHook::new(move |key: &str| {
            if key.contains("lastfm") {
                // ordering: test counter read after both jobs finish; SeqCst
                // for simplicity in test code.
                lastfm_loads.fetch_add(1, Ordering::SeqCst);
                started_tx.send(()).unwrap();
                // Hold the cold load open until the test releases it.
                release_rx.lock().recv().unwrap();
            }
        })
    };
    // Runners: 2 for the coldly-blocked lastfm jobs + 1 free for the warm
    // jazz job that must overtake them.
    let handle = start_server_with(3, 16, Some(hook));
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");

    // Warm up jazz so its later resubmit is a pure cache hit.
    let id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("warm-up submit");
    let end = c.stream(id, |_, _| ()).expect("warm-up stream");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));

    // Open the blocked cold load, plus a second submit for the same key
    // that must coalesce (not load again).
    let cold_a = c
        .submit(&SubmitArgs::dataset("lastfm", 2, 9))
        .expect("cold");
    let cold_b = c
        .submit(&SubmitArgs::dataset("lastfm", 2, 9))
        .expect("cold twin");
    started_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the cold load never started");
    // Deterministic rendezvous: wait until the twin is observably parked on
    // the in-flight load (it would otherwise race the release below and be
    // served as a plain hit).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = c.stats().expect("stats while blocked");
        if stats["cache-waiting"].parse::<u64>().unwrap() == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "twin submit never parked on the in-flight load: {stats:?}"
        );
        std::thread::yield_now();
    }

    // With the load still blocked, a warm job and STATS must complete.
    // Run them in a thread so a regression shows up as a clean panic (via
    // the timeout below), not a hung test suite.
    let (done_tx, done_rx) = mpsc::channel::<(u64, u64)>();
    let prober = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("prober connect");
        let stats = c.stats().expect("STATS while cold load blocked");
        let pending: u64 = stats["cache-pending"].parse().unwrap();
        let id = c
            .submit(&SubmitArgs::dataset("jazz", 2, 9))
            .expect("warm submit");
        let end = c.stream(id, |_, _| ()).expect("warm stream");
        assert_eq!(end.get("state").map(String::as_str), Some("done"));
        let status = c.status(id).expect("warm status");
        assert_eq!(
            status.get("cache").map(String::as_str),
            Some("hit"),
            "the overtaking job must be the warm one"
        );
        let results: u64 = status["results"].parse().unwrap();
        done_tx.send((pending, results)).unwrap();
    });
    let (pending, warm_results) = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("warm job or STATS blocked behind the cold load");
    prober.join().expect("prober thread");
    assert_eq!(pending, 1, "STATS must see the in-flight cold load");
    assert_eq!(warm_results, ground_truth("jazz", 2, 9));

    // Release the cold load; both lastfm jobs finish off one single load.
    release_tx.send(()).unwrap();
    let expected_lastfm = ground_truth("lastfm", 2, 9);
    for id in [cold_a, cold_b] {
        let mut streamed = 0u64;
        let end = c.stream(id, |_, _| streamed += 1).expect("cold stream");
        assert_eq!(end.get("state").map(String::as_str), Some("done"));
        assert_eq!(streamed, expected_lastfm);
    }
    assert_eq!(
        // ordering: read after both cold streams completed; SeqCst for
        // simplicity in test code.
        lastfm_loads.load(Ordering::SeqCst),
        1,
        "two concurrent cold submits must run exactly one load (single-flight)"
    );
    let stats = Client::connect(addr)
        .expect("connect")
        .stats()
        .expect("stats");
    let coalesced: u64 = stats["cache-coalesced"].parse().unwrap();
    assert!(
        coalesced >= 1,
        "the twin submit must have coalesced onto the in-flight load: {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn invalid_requests_are_rejected() {
    let handle = start_server(1, 4);
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.ping().expect("ping");
    // Unknown dataset, bad params, unknown algo — all rejected at submit.
    for args in [
        SubmitArgs::dataset("no-such-graph", 2, 9),
        SubmitArgs::dataset("jazz", 3, 2), // q < 2k - 1
        {
            let mut a = SubmitArgs::dataset("jazz", 2, 9);
            a.algo = Some("bogus".into());
            a
        },
    ] {
        assert!(
            matches!(c.submit(&args), Err(ClientError::Remote(_))),
            "{args:?} must be rejected"
        );
    }
    // Unknown job ids.
    assert!(matches!(c.status(999), Err(ClientError::Remote(_))));
    assert!(matches!(c.cancel(999), Err(ClientError::Remote(_))));
    // Jobs survive across connections: submit here, observe elsewhere.
    let id = c
        .submit(&SubmitArgs::dataset("jazz", 2, 9))
        .expect("submit");
    let mut c2 = Client::connect(handle.addr()).expect("second connection");
    let end = c2.stream(id, |_, _| ()).expect("stream from second conn");
    assert_eq!(end.get("state").map(String::as_str), Some("done"));
    let jobs = c2.list().expect("list");
    assert!(jobs.iter().any(|j| j["id"] == id.to_string()));
    handle.shutdown();
}
