//! Ranked lock wrappers: the workspace lock hierarchy, enforced at runtime
//! in debug builds.
//!
//! Every mutex and condvar in `crates/service` and `crates/parallel` is an
//! [`OrderedMutex`] / [`OrderedCondvar`] carrying a static [`Rank`] from the
//! single hierarchy below. A thread may only acquire a lock whose rank is
//! **strictly greater** than every rank it already holds; equal ranks are a
//! violation too (so re-entrancy and holding two same-ranked locks — e.g.
//! two different jobs' progress locks — are both caught). Debug builds keep
//! a thread-local stack of held ranks and panic with a `lock-order
//! violation` message on the first out-of-order acquisition, which turns
//! the whole test suite into a deterministic deadlock detector: any cycle
//! in the lock graph must contain at least one edge that goes *down* the
//! hierarchy, and that edge panics the moment it is exercised — no
//! unlucky interleaving required. Release builds compile the tracking out;
//! the wrappers cost one enum field per lock.
//!
//! # The hierarchy
//!
//! | Rank | Lock | Held while |
//! |-----:|------|------------|
//! | 10 | `RouterNodes` (`router.rs` backend list) | snapshotting live backends; never while talking to a backend |
//! | 20 | `RouterJobs` (`router.rs` routing table) | recording placements; backend snapshots are taken **before** this lock |
//! | 30 | `ServerConns` (`server.rs` open connections) | registering/severing sockets at teardown |
//! | 40 | `ServerQueue` (`server.rs` admission queue + reservation count) | admission control and runner dispatch |
//! | 50 | `ServerJobs` (`server.rs` job table) | the submit path holds `ServerQueue` while inserting here (two-phase admission), hence Queue < Jobs |
//! | 60 | `JobProgress` (`job.rs` per-job state) | the submit path inspects per-job state (eviction filter) under `ServerJobs`, hence Jobs < Progress |
//! | 70 | `CacheInner` (`cache.rs` graph-cache slots) | single-flight bookkeeping; builds run with the lock released |
//! | 80 | `JournalDelivered` (`journal.rs` delivered-offset map) | terminal hooks journal under `JobProgress`, hence Progress < Journal* |
//! | 90 | `JournalFile` (`journal.rs` append handle) | the delivered map is consulted before appending, hence Delivered < File |
//! | 100 | `Channel` (leaf: `!Sync` channel ends shared across threads) | never while acquiring anything else |
//!
//! # Adding a lock
//!
//! 1. Find every path that can hold the new lock together with an existing
//!    one, in either order; those paths dictate its position.
//! 2. Add a `Rank` variant at that position — the discriminants are spaced
//!    by 10 so a new rank slots in without renumbering — and document the
//!    edge in the table above and in ARCHITECTURE.md.
//! 3. Construct the lock with `OrderedMutex::new(Rank::…, "name", value)`.
//!    Never use `std::sync::Mutex`/`Condvar` directly; `kplex-lint`'s
//!    `raw-sync` rule rejects it everywhere outside this module.
//!
//! # Poisoning policy
//!
//! Lock poisoning has exactly one policy here: panic, naming the lock. A
//! poisoned lock means a thread panicked while holding it, so shared state
//! may be torn mid-update; limping on would trade a loud failure for a
//! silent corruption. This is why call sites carry no per-site
//! `.expect("… poisoned")` strings — [`OrderedMutex::lock`] owns the
//! message.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Static position of a lock in the workspace hierarchy (module docs).
///
/// A thread may only acquire a rank strictly greater than every rank it
/// currently holds. Discriminants are spaced by 10 so future locks can
/// slot between existing ones without renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum Rank {
    /// `kplexr` backend list: snapshotted (and released) before any other
    /// lock is taken, so backend probes never serialize routing.
    RouterNodes = 10,
    /// `kplexr` routing table; always after `RouterNodes` because failover
    /// consults the live-backend snapshot while rerouting jobs.
    RouterJobs = 20,
    /// `kplexd` open-connection registry, used only by accept/teardown.
    ServerConns = 30,
    /// `kplexd` admission queue plus its in-flight reservation count; the
    /// two-phase submit holds this while inserting into the job table.
    ServerQueue = 40,
    /// `kplexd` job table; above `ServerQueue` (two-phase admission) and
    /// below `JobProgress` (the eviction filter reads per-job state).
    ServerJobs = 50,
    /// Per-job progress state. Two jobs' locks share this rank, so holding
    /// two at once is (deliberately) a violation — no path needs it.
    JobProgress = 60,
    /// Graph-cache slot map; graph builds run with this released, only the
    /// single-flight bookkeeping happens under it.
    CacheInner = 70,
    /// Journal delivered-offset map; terminal hooks run under
    /// `JobProgress`, which is why the journal ranks sit above it.
    JournalDelivered = 80,
    /// Journal append handle; consulted after `JournalDelivered` when a
    /// record needs the delivered map (e.g. `END` compaction bookkeeping).
    JournalFile = 90,
    /// Leaf rank for `!Sync` channel ends (e.g. an `mpsc::Receiver`)
    /// shared across threads in tests and hooks; never held while
    /// acquiring anything else.
    Channel = 100,
}

#[cfg(debug_assertions)]
mod held {
    //! Thread-local stack of held ranks. Every push is strictly greater
    //! than the current top, so the stack is always sorted ascending and
    //! checking the top suffices.

    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static STACK: RefCell<Vec<(Rank, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: Rank, name: &'static str) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&(top, top_name)) = stack.last() {
                assert!(
                    rank > top,
                    "lock-order violation: acquiring {name:?} ({rank:?}={rv}) while holding \
                     {top_name:?} ({top:?}={tv}); see the hierarchy in \
                     crates/service/src/sync.rs",
                    rv = rank as u32,
                    tv = top as u32,
                );
            }
            stack.push((rank, name));
        });
    }

    pub(super) fn release(rank: Rank, name: &'static str) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards may drop out of LIFO order; remove the topmost match.
            if let Some(pos) = stack.iter().rposition(|&(r, n)| r == rank && n == name) {
                stack.remove(pos);
            }
        });
    }
}

/// A [`std::sync::Mutex`] that participates in the workspace lock
/// hierarchy (module docs): acquisitions that violate the rank order
/// panic in debug builds, and poisoning always panics with the lock's
/// name (the single poisoning policy).
pub struct OrderedMutex<T> {
    rank: Rank,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex at position `rank` of the hierarchy.
    /// `name` identifies the lock in violation and poisoning panics.
    pub const fn new(rank: Rank, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking like [`std::sync::Mutex::lock`].
    ///
    /// Debug builds first check the rank against this thread's held set —
    /// *before* blocking, so an ordering violation panics instead of
    /// deadlocking. Panics if the lock is poisoned.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::acquire(self.rank, self.name);
        match self.inner.lock() {
            Ok(guard) => OrderedGuard {
                inner: Some(guard),
                rank: self.rank,
                name: self.name,
            },
            Err(_) => {
                #[cfg(debug_assertions)]
                held::release(self.rank, self.name);
                panic!(
                    "lock {:?} ({:?}) poisoned: a thread panicked while holding it",
                    self.name, self.rank
                );
            }
        }
    }

    /// The lock's rank in the hierarchy.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard returned by [`OrderedMutex::lock`]; releases the lock and
/// unregisters its rank on drop.
pub struct OrderedGuard<'a, T> {
    /// `None` only transiently, while the guard is parked in an
    /// [`OrderedCondvar`] wait (the rank stays registered: the thread is
    /// blocked and cannot acquire elsewhere).
    inner: Option<MutexGuard<'a, T>>,
    rank: Rank,
    name: &'static str,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the mutex")
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the mutex")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if self.inner.is_some() {
            held::release(self.rank, self.name);
        }
    }
}

/// A [`std::sync::Condvar`] that waits on [`OrderedGuard`]s, keeping the
/// guard's rank registered for the duration of the wait (the parked
/// thread cannot acquire other locks, so the wait itself cannot create a
/// cycle).
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self {
            inner: Condvar::new(),
        }
    }

    /// Wakes one waiter, like [`std::sync::Condvar::notify_one`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters, like [`std::sync::Condvar::notify_all`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases `guard` and parks until notified, then
    /// reacquires the same mutex. Panics if the mutex was poisoned while
    /// parked.
    pub fn wait<'a, T>(&self, mut guard: OrderedGuard<'a, T>) -> OrderedGuard<'a, T> {
        let (rank, name) = (guard.rank, guard.name);
        let std_guard = guard.inner.take().expect("guard holds the mutex");
        // `guard` now drops as a no-op; the rank stays on the held stack
        // while we are parked, and the reacquired guard below takes over
        // that same entry — exactly one live registration throughout.
        match self.inner.wait(std_guard) {
            Ok(reacquired) => OrderedGuard {
                inner: Some(reacquired),
                rank,
                name,
            },
            Err(_) => {
                #[cfg(debug_assertions)]
                held::release(rank, name);
                panic!("lock {name:?} ({rank:?}) poisoned during a condvar wait");
            }
        }
    }

    /// Like [`OrderedCondvar::wait`] with a timeout; the boolean is `true`
    /// if the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: OrderedGuard<'a, T>,
        dur: Duration,
    ) -> (OrderedGuard<'a, T>, bool) {
        let (rank, name) = (guard.rank, guard.name);
        let std_guard = guard.inner.take().expect("guard holds the mutex");
        match self.inner.wait_timeout(std_guard, dur) {
            Ok((reacquired, timeout)) => (
                OrderedGuard {
                    inner: Some(reacquired),
                    rank,
                    name,
                },
                timeout.timed_out(),
            ),
            Err(_) => {
                #[cfg(debug_assertions)]
                held::release(rank, name);
                panic!("lock {name:?} ({rank:?}) poisoned during a condvar wait");
            }
        }
    }
}

impl Default for OrderedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedCondvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn in_order_acquisition_and_access() {
        let a = OrderedMutex::new(Rank::ServerQueue, "t-queue", 1u32);
        let b = OrderedMutex::new(Rank::ServerJobs, "t-jobs", 2u32);
        let ga = a.lock();
        let mut gb = b.lock();
        *gb += *ga;
        assert_eq!(*gb, 3);
        assert_eq!(a.rank(), Rank::ServerQueue);
        assert_eq!(b.name(), "t-jobs");
    }

    #[test]
    fn reacquiring_lower_rank_after_release_is_fine() {
        let low = OrderedMutex::new(Rank::RouterNodes, "t-low", ());
        let high = OrderedMutex::new(Rank::JournalFile, "t-high", ());
        drop(high.lock());
        // The stack is empty again, so going back down is legal.
        drop(low.lock());
        drop(high.lock());
    }

    #[test]
    fn non_lifo_guard_drop_unregisters_the_right_entry() {
        let a = OrderedMutex::new(Rank::ServerQueue, "t-a", ());
        let b = OrderedMutex::new(Rank::ServerJobs, "t-b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out of LIFO order
        let c = OrderedMutex::new(Rank::JobProgress, "t-c", ());
        let gc = c.lock(); // must still see only t-b as held
        drop(gb);
        drop(gc);
        // Everything released: the lowest rank must be acquirable again.
        drop(a.lock());
    }

    // The detector itself only exists in debug builds; the release suite
    // still runs every other test through the same wrappers.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn two_lock_inversion_panics() {
        let jobs = OrderedMutex::new(Rank::ServerJobs, "t-jobs", ());
        let queue = OrderedMutex::new(Rank::ServerQueue, "t-queue", ());
        let _g = jobs.lock();
        let _h = queue.lock(); // Queue < Jobs: inverted, must panic
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_acquisition_panics() {
        let a = OrderedMutex::new(Rank::JobProgress, "t-job-a", ());
        let b = OrderedMutex::new(Rank::JobProgress, "t-job-b", ());
        let _g = a.lock();
        let _h = b.lock(); // same rank: two jobs' locks on one thread
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = std::sync::Arc::new((
            OrderedMutex::new(Rank::ServerQueue, "t-cv", false),
            OrderedCondvar::new(),
        ));
        let (tx, rx) = mpsc::channel();
        let remote = std::sync::Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*remote;
            let mut ready = lock.lock();
            tx.send(()).expect("main waits for this");
            while !*ready {
                ready = cv.wait(ready);
            }
            // The reacquired guard still owns the rank entry: a higher
            // lock must be acquirable, and dropping must clean up fully.
            let extra = OrderedMutex::new(Rank::ServerJobs, "t-cv-high", ());
            drop(extra.lock());
        });
        rx.recv().expect("waiter started");
        *pair.0.lock() = true;
        pair.1.notify_all();
        waiter.join().expect("waiter clean exit");
    }

    #[test]
    fn condvar_timeout_does_not_leak_rank_registrations() {
        let lock = OrderedMutex::new(Rank::ServerJobs, "t-timeout", ());
        let cv = OrderedCondvar::new();
        let guard = lock.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(5));
        assert!(timed_out);
        drop(guard);
        // If the wait had double-registered, this lower-rank acquisition
        // would trip the detector.
        let lower = OrderedMutex::new(Rank::ServerQueue, "t-lower", ());
        drop(lower.lock());
    }
}
