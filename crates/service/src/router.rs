//! `kplexr` — a shard router fronting N `kplexd` backends.
//!
//! The router speaks the same line protocol as `kplexd` to its clients and
//! owns a registry of backends (a static list at startup plus the
//! `ADDNODE`/`DROPNODE` admin verbs). It places every `SUBMIT` by
//! **rendezvous hashing** the job's (graph cache key, `q − k`) over the
//! live backends, so all jobs touching one prepared graph land on the same
//! backend and its prepared-graph LRU stays hot — the k-plex workloads of
//! the paper are dominated by a few heavy graphs, exactly the shape where
//! cache affinity pays.
//!
//! Job ids are **router-assigned**: clients see one dense id namespace and
//! never learn backend-local ids. `STATUS`/`STREAM`/`CANCEL`/`LIST` are
//! proxied to the owning backend with ids rewritten in both directions;
//! replies gain a `backend=` field naming the owner.
//!
//! With `--replicas R` (R > 1) every submission is additionally placed on
//! the next R − 1 live backends in the key's rendezvous order. The first
//! copy is the **primary** and owns the authoritative job state; the rest
//! are best-effort read replicas: `STATUS`/`STREAM` reads fan out across
//! primary + live replicas round-robin, and a primary lost mid-stream is
//! promoted to a live replica instead of being recomputed from scratch.
//!
//! Failover: any transport failure towards a backend marks it dead. Jobs
//! placed on it fail over to the survivors: one with a live replica is
//! promoted to it in place; the rest — queued *and* running — are
//! transparently resubmitted under their original router ids. Re-running
//! is safe because result streams are resumable ([`crate::protocol`]'s
//! `STREAM … FROM <seq>`): a client consuming a stream when the backend
//! died is continued on the new placement from the first seq it has not
//! received, so every result is delivered exactly once. (Cross-backend
//! resume assumes deterministic result order — submit single-threaded
//! jobs where that matters; see PROTOCOL.md.) `DROPNODE` drains a healthy
//! backend gracefully: its queued jobs are cancelled remotely and
//! rerouted, running jobs finish in place and remain reachable through
//! the router.

use crate::client::{Client, ClientError};
use crate::protocol::{self, JobId, Request, SubmitArgs};
use crate::sync::{OrderedMutex, Rank};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on proxy retries for one request: each retry follows a
/// failover (which kills at least one backend), so this never spins.
const MAX_PROXY_ATTEMPTS: usize = 8;

/// Pause between proxy retries after a transport failure, long enough for
/// a concurrent recovery claim ([`REQUEUEING`]) to publish its outcome.
const RETRY_PAUSE: std::time::Duration = std::time::Duration::from_millis(5);

/// Bound on establishing a backend connection. A wedged (not crashed)
/// backend must surface as a transport failure, not a stalled router.
const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// Bound on each reply to a unary backend call (`SUBMIT`/`STATUS`/
/// `CANCEL`/`STATS`) — these are trivial for a healthy `kplexd`, so an
/// overrun means the backend is wedged and drives failover. Streams are
/// deliberately unbounded: a live `STREAM` is legitimately silent while
/// the job computes.
const UNARY_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// A backend connection for one-shot request/response calls (bounded). On
/// a tenancy-enabled router this authenticates to the backend as the admin
/// principal — proxied jobs are tagged `principal=`, which backends accept
/// only from an admin connection.
fn unary(state: &RouterState, addr: &str) -> Result<Client, ClientError> {
    let mut c = Client::connect_timeout(addr, CONNECT_TIMEOUT, Some(UNARY_READ_TIMEOUT))?;
    if let Some(token) = &state.admin_token {
        c.auth(token)?;
    }
    Ok(c)
}

/// A backend connection for `STREAM` proxying (bounded connect only),
/// admin-authenticated like [`unary`].
fn streaming(state: &RouterState, addr: &str) -> Result<Client, ClientError> {
    let mut c = Client::connect_timeout(addr, CONNECT_TIMEOUT, None)?;
    if let Some(token) = &state.admin_token {
        c.auth(token)?;
    }
    Ok(c)
}

/// Router construction knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7710` (port 0 for ephemeral).
    pub addr: String,
    /// Initial backend registry (`host:port` of running `kplexd` servers).
    pub backends: Vec<String>,
    /// Background health prober; `None` disables it (backends are then
    /// only marked dead reactively, when a proxied request fails).
    pub probe: Option<ProbeConfig>,
    /// Copies of each job placed across distinct backends (the rendezvous
    /// top-R for its key). The first is the primary; the rest are
    /// best-effort read replicas (see the module docs). `1` — the
    /// default — disables replication.
    pub replicas: usize,
    /// Principal store (`kplexr --principals`, same file as the backends):
    /// enables edge tenancy — clients `AUTH` to the router, over-quota
    /// submits are rejected before any backend sees them, proxied jobs are
    /// tagged with the owning principal, and proxied verbs are scoped to
    /// it. Requires the file to contain an admin principal: the router
    /// authenticates its backend connections with the first admin token.
    /// `None` preserves the anonymous router exactly.
    pub principals: Option<crate::auth::PrincipalStore>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7710".to_string(),
            backends: Vec::new(),
            probe: None,
            replicas: 1,
            principals: None,
        }
    }
}

/// Health-prober knobs: how often every registered backend is `PING`ed and
/// the flap-suppression thresholds. Detection latency for a hard-down
/// backend is at most `fall × interval + timeout`; with the defaults
/// (3 × 1 s + 500 ms) a corpse leaves the routing set within ~3.5 s without
/// any client traffic towards it.
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// Pause between probe rounds (each round pings every registered node).
    pub interval: Duration,
    /// Per-probe connect + reply budget; an overrun counts as a failure.
    pub timeout: Duration,
    /// Consecutive probe failures before a live node is marked dead (flap
    /// suppression: one dropped probe must not trigger a failover storm).
    pub fall: u32,
    /// Consecutive probe successes before a dead node rejoins the routing
    /// set (a flapping node must prove itself before taking jobs again).
    pub rise: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(1000),
            timeout: Duration::from_millis(500),
            fall: 3,
            rise: 2,
        }
    }
}

struct Node {
    addr: String,
    /// Live nodes receive new submissions and failover traffic. A node goes
    /// dead on any transport failure towards it (or `fall` consecutive
    /// probe failures); `ADDNODE` or `rise` consecutive probe successes
    /// revive it.
    alive: bool,
    /// Consecutive probe failures (reset by a successful probe or revival).
    probe_fails: u32,
    /// Consecutive probe successes (reset by a failed probe or revival).
    probe_oks: u32,
}

impl Node {
    fn new(addr: String) -> Node {
        Node {
            addr,
            alive: true,
            probe_fails: 0,
            probe_oks: 0,
        }
    }
}

/// Router-side record of one routed job.
#[derive(Clone)]
struct Routed {
    backend: String,
    remote_id: JobId,
    /// Best-effort replica placements, `(backend, backend-local id)` each.
    /// Replicas run the same job independently; they serve reads and stand
    /// by for promotion when the primary's backend dies. Entries are
    /// scrubbed as their backends die.
    replicas: Vec<(String, JobId)>,
    /// Kept for failover resubmission of queued jobs.
    args: SubmitArgs,
    /// Last state observed from the backend (`queued` until seen otherwise).
    last_state: String,
    /// Set when the router itself terminated the job (backend lost).
    error: Option<String>,
    /// Placement attempts (1 = original submission).
    attempts: u32,
}

struct RouterState {
    nodes: OrderedMutex<Vec<Node>>,
    jobs: OrderedMutex<BTreeMap<JobId, Routed>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// The prober's configuration (also surfaced in `STATS`); `None` when
    /// probing is disabled.
    probe: Option<ProbeConfig>,
    /// [`RouterConfig::replicas`], clamped to ≥ 1.
    replicas: usize,
    /// Round-robin cursor spreading `STATUS`/`STREAM` reads over a job's
    /// primary + live replicas.
    read_rr: AtomicU64,
    /// Principal store; `None` = tenancy disabled.
    principals: Option<crate::auth::PrincipalStore>,
    /// Registered tokens, scrubbed from every reply line.
    secrets: Vec<String>,
    /// The admin token the router presents to backends (first admin in the
    /// store); `None` = anonymous backend connections.
    admin_token: Option<String>,
}

// --- rendezvous hashing -----------------------------------------------------

/// FNV-1a over (backend, separator, key), finished with a 64-bit avalanche
/// mix: the per-(backend, key) score for highest-random-weight (rendezvous)
/// hashing.
///
/// The finalizer is load-bearing. Raw FNV-1a state barely avalanches its
/// final input bytes: for two fixed backends the score difference is
/// dominated by `(state_a − state_b) × PRIME` from the common key prefix,
/// and a last-byte change perturbs it by at most `~2⁹ × PRIME ≈ 2⁴⁹` — so
/// keys differing only in their trailing characters (exactly the shape of
/// this router's keys: one graph under many `q − k` values) would almost
/// always pick the same backend, defeating the load spreading. The
/// MurmurHash3 `fmix64` finalizer avalanches every input bit into every
/// output bit, making each key an independent draw.
fn score(backend: &str, key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in backend.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(PRIME); // separator: "ab"+"c" != "a"+"bc"
    for &b in key.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    // MurmurHash3 fmix64.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The routing key a submission is rendezvous-hashed by: the graph's cache
/// key plus the core-reduction threshold `q − k` — the same pair the
/// backend's prepared-graph LRU keys on, so equal keys reuse one backend's
/// warm cache. Dataset sources share [`crate::job::GraphSource`]'s cache
/// key verbatim (placement must never diverge from the backends' LRU key);
/// `path=` sources hash the path string alone — the file lives on the
/// backends and its metadata (which `GraphSource::cache_key` folds in) is
/// not visible from the router.
pub fn routing_key(args: &SubmitArgs) -> String {
    let source = match (&args.dataset, &args.path) {
        (Some(name), _) => crate::job::GraphSource::Dataset(name.clone()).cache_key(),
        (None, Some(p)) => format!("path:{p}"),
        (None, None) => "invalid".to_string(),
    };
    format!("{source}|{}", args.q.saturating_sub(args.k))
}

/// The backend rendezvous hashing assigns `key` among `backends` (highest
/// score wins; ties break towards the lexicographically larger address, so
/// the choice is deterministic). Exposed so tests — and capacity tooling —
/// can predict placements.
pub fn pick_backend<'a>(backends: &'a [String], key: &str) -> Option<&'a str> {
    backends
        .iter()
        .max_by_key(|b| (score(b, key), (*b).clone()))
        .map(String::as_str)
}

/// All of `backends` ranked by descending preference for `key`: the head is
/// [`pick_backend`]'s choice, the rest are the failover order.
fn ranked_backends(backends: &[String], key: &str) -> Vec<String> {
    let mut ranked: Vec<String> = backends.to_vec();
    ranked.sort_by_key(|b| std::cmp::Reverse((score(b, key), b.clone())));
    ranked
}

// --- construction -----------------------------------------------------------

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

/// Handle to a router whose accept loop runs in a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    accept: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds the listener and seeds the backend registry.
    pub fn bind(cfg: &RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let mut nodes: Vec<Node> = Vec::new();
        for addr in &cfg.backends {
            if !nodes.iter().any(|n| n.addr == *addr) {
                nodes.push(Node::new(addr.clone()));
            }
        }
        let principals = cfg.principals.clone();
        let secrets = principals.as_ref().map(|s| s.tokens()).unwrap_or_default();
        let admin_token = principals
            .as_ref()
            .and_then(|s| s.admin_token())
            .map(String::from);
        if principals.is_some() && admin_token.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "principals file has no admin principal — the router needs one \
                 to authenticate its backend connections",
            ));
        }
        Ok(Router {
            listener,
            state: Arc::new(RouterState {
                nodes: OrderedMutex::new(Rank::RouterNodes, "router-nodes", nodes),
                jobs: OrderedMutex::new(Rank::RouterJobs, "router-jobs", BTreeMap::new()),
                next_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                probe: cfg.probe.clone(),
                replicas: cfg.replicas.max(1),
                read_rr: AtomicU64::new(0),
                principals,
                secrets,
                admin_token,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the background health prober, if configured.
    fn spawn_prober(&self) -> Option<std::thread::JoinHandle<()>> {
        let cfg = self.state.probe.clone()?;
        let state = self.state.clone();
        Some(std::thread::spawn(move || probe_loop(&state, &cfg)))
    }

    /// Runs the accept loop on the current thread (the `kplexr` entry),
    /// with the health prober (if configured) in the background.
    pub fn run(self) -> std::io::Result<()> {
        let _prober = self.spawn_prober();
        accept_loop(&self.listener, &self.state);
        Ok(())
    }

    /// Runs the accept loop in a background thread and returns a handle
    /// (used by tests and the `kplexr smoke`).
    pub fn spawn(self) -> std::io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let prober = self.spawn_prober();
        let state = self.state.clone();
        let listener = self.listener;
        let accept_state = state.clone();
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(RouterHandle {
            addr,
            state,
            accept: Some(accept),
            prober,
        })
    }
}

impl RouterHandle {
    /// Where clients connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop and the prober.
    /// Connection handler threads are detached; they exit as their clients
    /// disconnect. Backends are not touched — they keep running their jobs.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

// --- health probing ----------------------------------------------------------

/// The prober: every [`ProbeConfig::interval`], `PING` every registered
/// node (alive *and* dead — dead ones are probed so they can rejoin).
/// Transitions apply the flap-suppression thresholds and reuse the exact
/// failover/rebalance machinery of the reactive paths, so a probe-detected
/// death requeues queued jobs before any client ever touches the corpse.
fn probe_loop(state: &Arc<RouterState>, cfg: &ProbeConfig) {
    /// Granularity of shutdown checks while sleeping out the interval.
    const TICK: Duration = Duration::from_millis(10);
    loop {
        let mut slept = Duration::ZERO;
        while slept < cfg.interval {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let step = TICK.min(cfg.interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        let targets: Vec<String> = {
            let nodes = state.nodes.lock();
            nodes.iter().map(|n| n.addr.clone()).collect()
        };
        for addr in targets {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let ok = Client::connect_timeout(addr.as_str(), cfg.timeout, Some(cfg.timeout))
                .and_then(|mut c| c.ping())
                .is_ok();
            match note_probe(state, &addr, ok, cfg) {
                Some(ProbeTransition::Died) => reroute_jobs_of(
                    state,
                    &addr,
                    &Reroute {
                        backend_lost: true,
                        cancel_remote: false,
                    },
                ),
                Some(ProbeTransition::Rejoined) => {
                    rebalance_queued(state);
                }
                None => {}
            }
        }
    }
}

/// A probe outcome that changed a node's liveness.
enum ProbeTransition {
    /// `fall` consecutive failures: the node left the routing set.
    Died,
    /// `rise` consecutive successes: the node rejoined the routing set.
    Rejoined,
}

/// Folds one probe outcome into the node's consecutive-outcome counters
/// and applies the flap-suppression thresholds. Returns the transition to
/// act on, if any (acting happens outside the registry lock).
fn note_probe(
    state: &RouterState,
    addr: &str,
    ok: bool,
    cfg: &ProbeConfig,
) -> Option<ProbeTransition> {
    let mut nodes = state.nodes.lock();
    let node = nodes.iter_mut().find(|n| n.addr == addr)?; // DROPNODEd mid-round
    if ok {
        node.probe_oks = node.probe_oks.saturating_add(1);
        node.probe_fails = 0;
        if !node.alive && node.probe_oks >= cfg.rise.max(1) {
            node.alive = true;
            Some(ProbeTransition::Rejoined)
        } else {
            None
        }
    } else {
        node.probe_fails = node.probe_fails.saturating_add(1);
        node.probe_oks = 0;
        if node.alive && node.probe_fails >= cfg.fall.max(1) {
            node.alive = false;
            Some(ProbeTransition::Died)
        } else {
            None
        }
    }
}

/// Recomputes the rendezvous placement of every **queued** job over the
/// current live set and migrates the ones whose owner changed: the old
/// copy is cancelled remotely (best-effort — the old backend is usually
/// alive, it just lost the key) and the job is resubmitted under its
/// original router id. Running jobs are never moved — their partial result
/// streams live on their backend. Called on `ADDNODE`, on a probe-driven
/// rejoin, and by the `REBALANCE` admin verb; returns how many jobs moved.
fn rebalance_queued(state: &Arc<RouterState>) -> usize {
    let live = live_backends(state);
    if live.is_empty() {
        return 0;
    }
    let mut moves: Vec<(JobId, String, JobId, SubmitArgs)> = Vec::new();
    {
        let mut jobs = state.jobs.lock();
        for (&rid, job) in jobs.iter_mut() {
            if job.error.is_some() || job.last_state != "queued" {
                continue;
            }
            let owner = pick_backend(&live, &routing_key(&job.args));
            if owner.is_some_and(|o| o != job.backend) {
                // Claim under the lock (same protocol as failover): only
                // this thread may resubmit the job.
                job.last_state = REQUEUEING.to_string();
                moves.push((rid, job.backend.clone(), job.remote_id, job.args.clone()));
            }
        }
    }
    let moved = moves.len();
    for (rid, old_backend, old_remote, args) in moves {
        // Stop the old queued copy so the job cannot run twice.
        if let Ok(mut c) = unary(state, &old_backend) {
            let _ = c.cancel(old_remote);
        }
        finish_requeue(state, rid, &args);
    }
    moved
}

fn accept_loop(listener: &TcpListener, state: &Arc<RouterState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let state = state.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &state);
                });
            }
            Err(_) if state.shutdown.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

// --- failover ---------------------------------------------------------------

/// Transient `last_state` of a job claimed for resubmission. The claim is
/// what makes recovery idempotent: only the thread that flips a job from
/// `queued` to this state resubmits it, so a fleet-wide reroute pass racing
/// a per-job recovery can never place two copies.
const REQUEUEING: &str = "requeueing";

/// What to do with a backend's routed jobs when it leaves the routing set.
struct Reroute {
    /// The backend is gone (crash or probe death): promote each of its
    /// jobs to a live replica when one exists, requeue the rest — running
    /// jobs included. Re-running is safe because streams are resumable:
    /// the router continues a consuming client on the new placement with
    /// `FROM <first undelivered seq>`, so nothing is double-delivered.
    /// `false` is the graceful drain (`DROPNODE`): queued jobs move,
    /// running jobs finish in place.
    backend_lost: bool,
    /// Best-effort `CANCEL` of the old copy before resubmitting (only
    /// meaningful while the backend is still alive, i.e. `DROPNODE`).
    cancel_remote: bool,
}

/// Marks `addr` dead (idempotent) and fails over its jobs: each is
/// promoted to a live replica when it has one, otherwise resubmitted to
/// the surviving backends under its original router id — running jobs
/// included (their streams resume via `FROM`). Only acts on the
/// alive → dead transition; [`recover_job`] covers jobs stranded on
/// backends that are already dead or no longer registered.
fn mark_backend_dead(state: &Arc<RouterState>, addr: &str) {
    {
        let mut nodes = state.nodes.lock();
        match nodes.iter_mut().find(|n| n.addr == addr) {
            Some(node) if node.alive => {
                node.alive = false;
                // The prober's rejoin threshold starts from scratch: a
                // node that just dropped a live connection must prove
                // itself with `rise` clean probes before taking jobs.
                node.probe_oks = 0;
            }
            _ => return, // unknown or already handled
        }
    }
    reroute_jobs_of(
        state,
        addr,
        &Reroute {
            backend_lost: true,
            cancel_remote: false,
        },
    );
}

/// Promotes a live replica to primary, in place, under the jobs lock.
/// Promotion is atomic — placement fields flip in one critical section, no
/// [`REQUEUEING`] claim window — so concurrent readers either still see
/// the old placement (and fail towards the corpse, harmlessly retrying) or
/// already see the new one. Returns `false` when no replica is live.
fn promote_replica(job: &mut Routed, live: &[String]) -> bool {
    let Some(pos) = job.replicas.iter().position(|(b, _)| live.contains(b)) else {
        return false;
    };
    let (backend, remote_id) = job.replicas.remove(pos);
    job.backend = backend;
    job.remote_id = remote_id;
    job.attempts += 1;
    true
}

/// Recovers one routed job after a transport failure towards `observed`,
/// the backend it was recorded on: the job is promoted to a live replica
/// when it has one, otherwise claimed and resubmitted to the survivors —
/// whether it was queued or already running (resumable streams make
/// re-running safe). This is the per-job complement to
/// [`mark_backend_dead`]'s fleet-wide transition pass — it also rescues
/// jobs recorded against a backend that was *already* dead or had left the
/// registry when the record was written (a submit racing a failover pass,
/// or a `DROPNODE`d backend crashing later), which the transition pass can
/// never see again.
fn recover_job(state: &Arc<RouterState>, rid: JobId, observed: &str) {
    // Live-set snapshot before the jobs lock (lock order: never nodes
    // inside jobs). `observed` was marked dead by every caller, so it is
    // not a promotion candidate.
    let live = live_backends(state);
    let claimed = {
        let mut jobs = state.jobs.lock();
        match jobs.get_mut(&rid) {
            Some(job) if job.backend == observed && job.error.is_none() => {
                job.replicas.retain(|(b, _)| b != observed);
                match job.last_state.as_str() {
                    "queued" | "running" => {
                        if promote_replica(job, &live) {
                            None
                        } else {
                            job.last_state = REQUEUEING.to_string();
                            Some(job.args.clone())
                        }
                    }
                    _ => None,
                }
            }
            _ => None, // moved, terminal, or claimed by someone else
        }
    };
    if let Some(args) = claimed {
        finish_requeue(state, rid, &args);
    }
}

fn live_backends(state: &RouterState) -> Vec<String> {
    state
        .nodes
        .lock()
        .iter()
        .filter(|n| n.alive)
        .map(|n| n.addr.clone())
        .collect()
}

/// Moves `addr`'s jobs to the surviving backends (keeping their router
/// ids): live replicas are promoted in place; the rest are requeued —
/// queued jobs always, running jobs only when the backend is lost
/// ([`Reroute::backend_lost`]). Jobs are claimed ([`REQUEUEING`]) under
/// the lock before resubmission, so a concurrent [`recover_job`] cannot
/// place a second copy. On loss, `addr` is also scrubbed from every job's
/// replica list — including jobs whose primary lives elsewhere.
fn reroute_jobs_of(state: &Arc<RouterState>, addr: &str, opts: &Reroute) {
    // Lock order: live-set snapshot before the jobs lock.
    let live = live_backends(state);
    let mut to_requeue: Vec<(JobId, JobId, SubmitArgs)> = Vec::new();
    {
        let mut jobs = state.jobs.lock();
        for (&rid, job) in jobs.iter_mut() {
            if opts.backend_lost {
                job.replicas.retain(|(b, _)| b != addr);
            }
            if job.backend != addr || job.error.is_some() {
                continue;
            }
            let queued = job.last_state == "queued";
            let running = job.last_state == "running";
            if !(queued || running) {
                continue; // terminal, or claimed by a concurrent recovery
            }
            if opts.backend_lost && promote_replica(job, &live) {
                continue;
            }
            if queued || opts.backend_lost {
                job.last_state = REQUEUEING.to_string();
                to_requeue.push((rid, job.remote_id, job.args.clone()));
            }
            // else: graceful drain — running jobs finish in place.
        }
    }
    for (rid, old_remote, args) in to_requeue {
        if opts.cancel_remote {
            // Drain: stop the old copy so the job cannot run twice.
            if let Ok(mut c) = unary(state, addr) {
                let _ = c.cancel(old_remote);
            }
        }
        finish_requeue(state, rid, &args);
    }
}

/// Places a claimed job on a surviving backend and publishes the outcome —
/// but only if the claim is still intact: a state written during the
/// requeue window (e.g. a client `CANCEL` acknowledged by the old, still
/// reachable copy) wins, and the freshly placed copy is cancelled instead
/// of silently superseding it.
fn finish_requeue(state: &Arc<RouterState>, rid: JobId, args: &SubmitArgs) {
    let placed = place(state, args);
    let mut orphan: Option<(String, JobId)> = None;
    {
        let mut jobs = state.jobs.lock();
        match (jobs.get_mut(&rid), placed) {
            (Some(job), Ok((backend, remote_id))) => {
                if job.last_state == REQUEUEING {
                    // A leftover replica on the new primary's backend would
                    // be a duplicate copy there; forget it (reads find the
                    // primary anyway).
                    job.replicas.retain(|(b, _)| *b != backend);
                    job.backend = backend;
                    job.remote_id = remote_id;
                    job.last_state = "queued".to_string();
                    job.attempts += 1;
                } else {
                    orphan = Some((backend, remote_id));
                }
            }
            (Some(job), Err(e)) => {
                if job.last_state == REQUEUEING {
                    job.last_state = "failed".to_string();
                    job.error = Some(format!("failover: {}", protocol::sanitize_value(&e)));
                }
            }
            (None, Ok(fresh)) => orphan = Some(fresh),
            (None, Err(_)) => {}
        }
    }
    if let Some((backend, remote_id)) = orphan {
        // Best-effort: stop the superfluous copy.
        if let Ok(mut c) = unary(state, &backend) {
            let _ = c.cancel(remote_id);
        }
    }
}

/// Rendezvous-places `args` on a live backend, failing over down the
/// preference order on transport errors (each one marks that backend dead).
/// Remote `ERR` replies (validation, queue full) are returned to the caller
/// verbatim — they are answers, not outages.
fn place(state: &Arc<RouterState>, args: &SubmitArgs) -> Result<(String, JobId), String> {
    let key = routing_key(args);
    for backend in ranked_backends(&live_backends(state), &key) {
        let submitted = unary(state, &backend).and_then(|mut c| c.submit(args));
        match submitted {
            Ok(remote_id) => return Ok((backend, remote_id)),
            Err(ClientError::Remote(msg)) => return Err(msg),
            Err(_) => mark_backend_dead(state, &backend),
        }
    }
    Err("no live backends".to_string())
}

// --- connection handling ----------------------------------------------------

/// [`write_line`] through the token-redaction chokepoint: with a principal
/// store loaded, every registered token is scrubbed before the line hits
/// the wire. Streamed NDJSON plex lines deliberately bypass this — they
/// are numeric-only by construction and form the hot path.
fn reply_line(writer: &mut TcpStream, state: &RouterState, line: &str) -> std::io::Result<()> {
    if state.secrets.is_empty() {
        write_line(writer, line)
    } else {
        write_line(writer, &protocol::redact_secrets(line, &state.secrets))
    }
}

/// One `write_all` per line (no buffering): streamed results must reach a
/// live follower promptly even when the backend trickles them out.
fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream.write_all(framed.as_bytes())
}

/// `true` when the principal authenticated on this connection (if any) may
/// see a job owned by `owner`. Tenancy disabled (`auth` is `None` only
/// happens then, thanks to the verb gate) sees everything; an admin sees
/// everything; otherwise only the owner.
fn may_see(auth: &Option<crate::auth::Principal>, owner: Option<&str>) -> bool {
    match auth {
        None => true,
        Some(p) => p.admin || owner == Some(p.name.as_str()),
    }
}

/// Pre-proxy visibility check for `STATUS`/`CANCEL`/`STREAM`: an unknown
/// job is `true` so the proxy path emits its own (identical) error — a
/// denied tenant cannot distinguish "hidden" from "nonexistent".
fn visible(state: &RouterState, rid: JobId, auth: &Option<crate::auth::Principal>) -> bool {
    match lookup(state, rid) {
        Some(job) => may_see(auth, job.args.principal.as_deref()),
        None => true,
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<RouterState>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    // Per-connection authentication state (`AUTH <token>`); `None` until
    // the client authenticates. On a tenancy-disabled router it stays
    // `None` and every verb passes the gate below.
    let mut auth: Option<crate::auth::Principal> = None;
    // Every reply line leaves through this chokepoint so a registered
    // token can never be echoed back — not in errors, not in proxied
    // backend messages. Streamed NDJSON plex lines bypass it (they are
    // numeric-only by construction, and the stream is the hot path).
    let reply = |writer: &mut TcpStream, line: &str| -> std::io::Result<()> {
        reply_line(writer, state, line)
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match protocol::parse_request(&line) {
            Err(e) => {
                reply(&mut writer, &format!("ERR {e}"))?;
                continue;
            }
            Ok(req) => req,
        };
        // Tenancy gate: with a principal store loaded, everything except
        // liveness checks and the handshake itself requires `AUTH` first.
        if state.principals.is_some()
            && auth.is_none()
            && !matches!(req, Request::Ping | Request::Quit | Request::Auth(_))
        {
            reply(&mut writer, "ERR authentication required (AUTH <token>)")?;
            continue;
        }
        match req {
            Request::Quit => {
                reply(&mut writer, "OK bye")?;
                return Ok(());
            }
            Request::Ping => reply(&mut writer, "OK pong")?,
            Request::Auth(token) => {
                let resp = match &state.principals {
                    None => {
                        "ERR authentication disabled (start kplexr with --principals)".to_string()
                    }
                    Some(store) => match store.authenticate(&token) {
                        Some(p) => {
                            auth = Some(p.clone());
                            format!(
                                "OK principal={} weight={} admin={}",
                                p.name, p.weight, p.admin
                            )
                        }
                        // Deliberately does not echo the attempted token.
                        None => "ERR unknown token".to_string(),
                    },
                };
                reply(&mut writer, &resp)?;
            }
            Request::Submit(args) => {
                let resp = match submit(state, &args, &auth) {
                    Ok((rid, backend, replicas)) => {
                        let mut line = format!("OK id={rid} state=queued backend={backend}");
                        if replicas > 0 {
                            line.push_str(&format!(" replicas={replicas}"));
                        }
                        line
                    }
                    Err(e) => format!("ERR {e}"),
                };
                reply(&mut writer, &resp)?;
            }
            Request::Status(rid) => {
                let resp = if visible(state, rid, &auth) {
                    proxy_status(state, rid)
                } else {
                    format!("ERR no such job {rid}")
                };
                reply(&mut writer, &resp)?;
            }
            Request::Cancel(rid) => {
                let resp = if visible(state, rid, &auth) {
                    proxy_cancel(state, rid)
                } else {
                    format!("ERR no such job {rid}")
                };
                reply(&mut writer, &resp)?;
            }
            Request::Stream(rid, from) => {
                if visible(state, rid, &auth) {
                    proxy_stream(&mut writer, state, rid, from)?;
                } else {
                    reply(&mut writer, &format!("ERR no such job {rid}"))?;
                }
            }
            Request::List => list(&mut writer, state, &auth)?,
            Request::Stats => {
                let resp = stats(state);
                reply(&mut writer, &resp)?;
            }
            Request::AddNode(addr) => {
                let resp = if admin_only(&auth) {
                    add_node(state, &addr)
                } else {
                    "ERR topology changes require an admin principal".to_string()
                };
                reply(&mut writer, &resp)?;
            }
            Request::DropNode(addr) => {
                let resp = if admin_only(&auth) {
                    drop_node(state, &addr)
                } else {
                    "ERR topology changes require an admin principal".to_string()
                };
                reply(&mut writer, &resp)?;
            }
            Request::Nodes => nodes(&mut writer, state)?,
            Request::Rebalance => {
                if admin_only(&auth) {
                    let moved = rebalance_queued(state);
                    reply(&mut writer, &format!("OK rebalanced={moved}"))?;
                } else {
                    reply(
                        &mut writer,
                        "ERR topology changes require an admin principal",
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// Topology mutations (`ADDNODE`/`DROPNODE`/`REBALANCE`) are admin-only
/// once tenancy is on: a non-admin tenant must not be able to drain or
/// repoint the cluster. Without a store, `auth` is always `None` and
/// everything is allowed, as before.
fn admin_only(auth: &Option<crate::auth::Principal>) -> bool {
    match auth {
        None => true,
        Some(p) => p.admin,
    }
}

// --- request implementations ------------------------------------------------

/// The submission principal the router acts for: the authenticated
/// principal itself, or — admin only — the principal named by an explicit
/// `principal=` tag. Mirrors the backend's resolution so edge rejections
/// and backend rejections agree.
fn effective_principal(
    state: &RouterState,
    args: &SubmitArgs,
    auth: &Option<crate::auth::Principal>,
) -> Result<Option<crate::auth::Principal>, String> {
    let Some(store) = &state.principals else {
        if args.principal.is_some() {
            return Err("principal= requires a router started with --principals".into());
        }
        return Ok(None);
    };
    // The verb gate guarantees an authenticated principal here; keep the
    // check anyway so this function is safe to call from any path.
    let Some(me) = auth else {
        return Err("authentication required (AUTH <token>)".into());
    };
    match args.principal.as_deref() {
        None => Ok(Some(me.clone())),
        Some(name) if name == me.name => Ok(Some(me.clone())),
        Some(name) => {
            if !me.admin {
                return Err(
                    "only an admin principal may submit on another principal's behalf".into(),
                );
            }
            store
                .by_name(name)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("unknown principal {name:?}"))
        }
    }
}

/// This tenant's routed jobs the router still believes are waiting to run
/// — the population the edge `max-queued` quota counts. `max-running` is
/// deliberately *not* checked here: it is a dispatch-rate constraint the
/// backends' fair-share runners enforce, and rejecting submits on it would
/// turn a throughput limit into an availability outage.
fn queued_jobs_of(state: &RouterState, principal: &str) -> usize {
    state
        .jobs
        .lock()
        .values()
        .filter(|j| {
            j.error.is_none()
                && j.args.principal.as_deref() == Some(principal)
                && (j.last_state == "queued" || j.last_state == REQUEUEING)
        })
        .count()
}

fn submit(
    state: &Arc<RouterState>,
    args: &SubmitArgs,
    auth: &Option<crate::auth::Principal>,
) -> Result<(JobId, String, usize), String> {
    if state.shutdown.load(Ordering::Acquire) {
        return Err("router shutting down".into());
    }
    let mut args = args.clone();
    if let Some(p) = effective_principal(state, &args, auth)? {
        // Edge quota: reject before any backend sees the job. Checked
        // against the router's own routed-job records, so a saturating
        // tenant is cut off even when its jobs are spread over many
        // backends whose per-lane counts are each under quota. The check
        // and the placement are not atomic — concurrent submits can
        // overshoot by the race width — but the backends' per-lane check
        // backstops it authoritatively.
        if p.max_queued != 0 {
            let queued = queued_jobs_of(state, &p.name);
            if queued >= p.max_queued {
                return Err(format!(
                    "quota exceeded: principal {} has {queued} jobs queued (max-queued={})",
                    p.name, p.max_queued
                ));
            }
        }
        // Tag the proxied copy with the *effective* principal so backends
        // account it to the right tenant lane (they accept the tag because
        // the router's connection is admin-authenticated).
        args.principal = Some(p.name.clone());
    }
    let args = &args;
    let (backend, remote_id) = place(state, args)?;
    let replicas = place_replicas(state, args, &backend);
    let placed = replicas.len();
    // ordering: routed-job ids only need uniqueness; the entry itself is
    // published under the jobs lock right below.
    let rid = state.next_id.fetch_add(1, Ordering::Relaxed);
    state.jobs.lock().insert(
        rid,
        Routed {
            backend: backend.clone(),
            remote_id,
            replicas,
            args: args.clone(),
            last_state: "queued".to_string(),
            error: None,
            attempts: 1,
        },
    );
    Ok((rid, backend, placed))
}

/// Best-effort replica placements: the next `replicas − 1` live backends
/// in the key's rendezvous order (primary excluded) each get their own
/// copy of the job. Failures — transport or remote `ERR` — are simply
/// skipped: replicas are an availability optimisation, never a
/// prerequisite for accepting the submission.
fn place_replicas(
    state: &Arc<RouterState>,
    args: &SubmitArgs,
    primary: &str,
) -> Vec<(String, JobId)> {
    if state.replicas <= 1 {
        return Vec::new();
    }
    let key = routing_key(args);
    let mut out = Vec::new();
    for backend in ranked_backends(&live_backends(state), &key) {
        if out.len() + 1 >= state.replicas {
            break;
        }
        if backend == primary {
            continue;
        }
        if let Ok(remote_id) = unary(state, &backend).and_then(|mut c| c.submit(args)) {
            out.push((backend, remote_id));
        }
    }
    out
}

/// The read targets of a routed job — `(backend, backend-local id)` for
/// the primary plus every replica whose backend is currently live.
/// `STATUS` and `STREAM` rotate over these ([`RouterState::read_rr`]) so
/// read load fans out; only a reply obtained through the *primary* feeds
/// [`note_state`] — replica copies advance independently, and their states
/// must not clobber the authoritative record.
fn read_targets(state: &RouterState, job: &Routed) -> Vec<(String, JobId)> {
    let mut targets = vec![(job.backend.clone(), job.remote_id)];
    if !job.replicas.is_empty() {
        let live = live_backends(state);
        targets.extend(
            job.replicas
                .iter()
                .filter(|(b, _)| live.contains(b))
                .cloned(),
        );
    }
    targets
}

fn lookup(state: &RouterState, rid: JobId) -> Option<Routed> {
    state.jobs.lock().get(&rid).cloned()
}

/// Records the backend-observed state of a routed job. `via` is the
/// snapshot the reply was obtained through: the write only lands if the
/// job is still placed there — a reply from a superseded placement (e.g. a
/// `cancelled` from the drained copy of a job that was just requeued
/// elsewhere) must not clobber the live record, or the job would be
/// reported terminal while it runs, and failover would skip it for good.
/// A job claimed for requeueing is also off-limits: the placement fields
/// still name the *old* copy during the claim window, so a reply obtained
/// through it (say the `cancelled` ack of a rebalance's remote-cancel)
/// would break the claim and terminally cancel a job that is merely
/// moving — only the claim owner ([`finish_requeue`]) publishes its
/// outcome.
fn note_state(state: &RouterState, rid: JobId, observed: &str, via: &Routed) {
    let mut jobs = state.jobs.lock();
    if let Some(job) = jobs.get_mut(&rid) {
        if job.error.is_none()
            && job.last_state != REQUEUEING
            && job.backend == via.backend
            && job.remote_id == via.remote_id
        {
            job.last_state = observed.to_string();
        }
    }
}

/// A `STATUS`-shaped line rendered from the router's own record (the
/// backend is unreachable or the router terminated the job locally). The
/// `error=` field appears only when the router actually failed the job.
fn local_status_line(rid: JobId, job: &Routed) -> String {
    let source = job
        .args
        .dataset
        .as_deref()
        .or(job.args.path.as_deref())
        .unwrap_or("?");
    let mut line = format!(
        "OK id={rid} state={} source={source} k={} q={} results=0 backend={}",
        job.last_state, job.args.k, job.args.q, job.backend
    );
    if let Some(principal) = &job.args.principal {
        line.push_str(&format!(" principal={principal}"));
    }
    if let Some(error) = &job.error {
        line.push_str(&format!(" error={error}"));
    }
    line
}

/// Re-renders a backend `STATUS`/`END` field map under the router job id,
/// tagging the owning backend. Known fields keep the canonical order;
/// unknown ones follow alphabetically (forward compatibility).
fn rewrite_fields(
    prefix: &str,
    rid: JobId,
    fields: &BTreeMap<String, String>,
    backend: &str,
) -> String {
    const ORDER: [&str; 12] = [
        "state",
        "source",
        "k",
        "q",
        "results",
        "elapsed-ms",
        "cache",
        "branches",
        "outputs",
        "principal",
        "error",
        "count",
    ];
    let mut line = format!("{prefix} id={rid}");
    for key in ORDER {
        if let Some(v) = fields.get(key) {
            line.push_str(&format!(" {key}={v}"));
        }
    }
    for (k, v) in fields {
        if k != "id" && !ORDER.contains(&k.as_str()) {
            line.push_str(&format!(" {k}={v}"));
        }
    }
    line.push_str(&format!(" backend={backend}"));
    line
}

fn proxy_status(state: &Arc<RouterState>, rid: JobId) -> String {
    for _ in 0..MAX_PROXY_ATTEMPTS {
        let Some(job) = lookup(state, rid) else {
            return format!("ERR no such job {rid}");
        };
        if job.error.is_some() {
            return local_status_line(rid, &job);
        }
        // Reads rotate over primary + live replicas.
        let targets = read_targets(state, &job);
        // ordering: round-robin cursor — only read fairness, no data is
        // published through it.
        let turn = state.read_rr.fetch_add(1, Ordering::Relaxed) as usize % targets.len();
        let (t_backend, t_remote) = targets[turn].clone();
        let primary = t_backend == job.backend && t_remote == job.remote_id;
        match unary(state, &t_backend).and_then(|mut c| c.status(t_remote)) {
            Ok(fields) => {
                if primary {
                    if let Some(observed) = fields.get("state") {
                        note_state(state, rid, observed, &job);
                    }
                }
                return rewrite_fields("OK", rid, &fields, &t_backend);
            }
            // The backend evicted its copy past its retention backlog:
            // answer from the router's own record instead of leaking the
            // backend-local id embedded in the remote message. A replica
            // eviction just rotates to the next target.
            Err(ClientError::Remote(msg)) if msg.starts_with("no such job") => {
                if primary {
                    return local_status_line(rid, &job);
                }
            }
            Err(ClientError::Remote(msg)) => return format!("ERR {msg}"),
            // Transport failure: fail the backend over and retry — the job
            // either moved (promotion/requeue) or was terminated locally.
            Err(_) => {
                mark_backend_dead(state, &t_backend);
                if primary {
                    recover_job(state, rid, &job.backend);
                }
                std::thread::sleep(RETRY_PAUSE);
            }
        }
    }
    format!("ERR job {rid} unreachable (backends flapping)")
}

fn proxy_cancel(state: &Arc<RouterState>, rid: JobId) -> String {
    for _ in 0..MAX_PROXY_ATTEMPTS {
        let Some(job) = lookup(state, rid) else {
            return format!("ERR no such job {rid}");
        };
        if job.error.is_some() {
            return format!(
                "OK id={rid} state={} backend={}",
                job.last_state, job.backend
            );
        }
        match unary(state, &job.backend).and_then(|mut c| c.cancel(job.remote_id)) {
            Ok(observed) => {
                note_state(state, rid, &observed, &job);
                // Best-effort: stop the replica copies too — a cancelled
                // job must not keep computing on R − 1 other backends.
                for (backend, remote_id) in &job.replicas {
                    if let Ok(mut c) = unary(state, backend) {
                        let _ = c.cancel(*remote_id);
                    }
                }
                return format!("OK id={rid} state={observed} backend={}", job.backend);
            }
            // Evicted on the backend ⇒ long terminal; cancel is idempotent.
            Err(ClientError::Remote(msg)) if msg.starts_with("no such job") => {
                return format!(
                    "OK id={rid} state={} backend={}",
                    job.last_state, job.backend
                );
            }
            Err(ClientError::Remote(msg)) => return format!("ERR {msg}"),
            Err(_) => {
                mark_backend_dead(state, &job.backend);
                recover_job(state, rid, &job.backend);
                std::thread::sleep(RETRY_PAUSE);
            }
        }
    }
    format!("ERR job {rid} unreachable (backends flapping)")
}

/// Proxies one result stream, starting at `from`, with **transparent
/// mid-stream failover**: `next_seq` tracks the first seq the downstream
/// client has not received, and a backend lost mid-stream is retried on
/// the job's new placement — a promoted replica or the requeued copy —
/// with `STREAM … FROM next_seq`. The client sees one gapless,
/// duplicate-free stream; the only surviving failure mode is every
/// placement dying ([`MAX_PROXY_ATTEMPTS`] times over).
fn proxy_stream(
    writer: &mut TcpStream,
    state: &Arc<RouterState>,
    rid: JobId,
    from: u64,
) -> std::io::Result<()> {
    let mut next_seq = from;
    for _ in 0..MAX_PROXY_ATTEMPTS {
        let Some(job) = lookup(state, rid) else {
            return reply_line(writer, state, &format!("ERR no such job {rid}"));
        };
        if job.error.is_some() {
            // Locally terminated: an empty, well-formed stream.
            let error = job.error.as_deref().unwrap_or("backend_lost");
            return reply_line(
                writer,
                state,
                &format!(
                    "END id={rid} state={} results=0 error={error}",
                    job.last_state
                ),
            );
        }
        // Reads rotate over primary + live replicas (each replica runs the
        // same job, so any of them can serve the suffix from `next_seq`).
        let targets = read_targets(state, &job);
        // ordering: round-robin cursor — only read fairness, no data is
        // published through it.
        let turn = state.read_rr.fetch_add(1, Ordering::Relaxed) as usize % targets.len();
        let (t_backend, t_remote) = targets[turn].clone();
        let primary = t_backend == job.backend && t_remote == job.remote_id;
        let mut forwarded = 0u64;
        let mut write_err: Option<std::io::Error> = None;
        // `stream_while_from` aborts (and the connection drops, stopping
        // the backend's producer) as soon as a downstream write fails — the
        // router must not drain a 10^9-result stream nobody is reading.
        let streamed = streaming(state, &t_backend).and_then(|mut c| {
            c.stream_while_from(t_remote, next_seq, |seq, plex| {
                // Rewrite the NDJSON id field to the router namespace.
                let line = protocol::render_plex_line(rid, seq, &plex);
                match write_line(writer, &line) {
                    Ok(()) => {
                        next_seq = seq + 1;
                        forwarded += 1;
                        if forwarded == 1 && primary {
                            // A streamed result proves the job left the
                            // queue: record it, so failover treats it as
                            // running rather than still queued.
                            note_state(state, rid, "running", &job);
                        }
                        true
                    }
                    Err(e) => {
                        write_err = Some(e);
                        false
                    }
                }
            })
        });
        if let Some(e) = write_err {
            return Err(e); // downstream client went away
        }
        match streamed {
            Ok(None) => unreachable!("an aborted stream sets write_err"),
            Ok(Some(end)) => {
                if primary {
                    if let Some(observed) = end.get("state") {
                        note_state(state, rid, observed, &job);
                    }
                }
                return reply_line(writer, state, &rewrite_fields("END", rid, &end, &t_backend));
            }
            Err(ClientError::Remote(msg)) if msg.starts_with("no such job") => {
                if primary {
                    return reply_line(
                        writer,
                        state,
                        &format!("ERR results for job {rid} were evicted on {t_backend}"),
                    );
                }
                // A replica evicted its copy: rotate to the next target.
            }
            Err(ClientError::Remote(msg)) => {
                return reply_line(writer, state, &format!("ERR {msg}"))
            }
            Err(_) => {
                // Transport failure mid-stream. The client has consumed
                // exactly [from, next_seq); fail the backend over and
                // resume the missing suffix on the job's next placement.
                mark_backend_dead(state, &t_backend);
                if primary {
                    recover_job(state, rid, &job.backend);
                }
                std::thread::sleep(RETRY_PAUSE);
            }
        }
    }
    reply_line(writer, state, &format!("ERR job {rid} unreachable"))
}

fn list(
    writer: &mut TcpStream,
    state: &Arc<RouterState>,
    auth: &Option<crate::auth::Principal>,
) -> std::io::Result<()> {
    // Tenant scoping happens on the router's own records before any
    // backend is contacted: a non-admin principal only ever sees (and the
    // router only ever proxies status for) its own jobs.
    let snapshot: Vec<(JobId, Routed)> = {
        let jobs = state.jobs.lock();
        jobs.iter()
            .filter(|(_, j)| may_see(auth, j.args.principal.as_deref()))
            .map(|(&rid, j)| (rid, j.clone()))
            .collect()
    };
    // One backend connection per group, not per job.
    let mut groups: BTreeMap<String, Vec<(JobId, Routed)>> = BTreeMap::new();
    for (rid, job) in snapshot {
        groups
            .entry(job.backend.clone())
            .or_default()
            .push((rid, job));
    }
    let mut count = 0usize;
    for (backend, group) in groups {
        let mut client = unary(state, &backend).ok();
        if client.is_none() {
            mark_backend_dead(state, &backend);
            for (rid, _) in &group {
                recover_job(state, *rid, &backend);
            }
        }
        for (rid, job) in group {
            count += 1;
            let proxied = client.as_mut().and_then(|c| c.status(job.remote_id).ok());
            let line = match proxied {
                Some(fields) => {
                    if let Some(observed) = fields.get("state") {
                        note_state(state, rid, observed, &job);
                    }
                    rewrite_fields("JOB", rid, &fields, &backend)
                }
                None => {
                    // Point-in-time fallback from the router's own record.
                    let job = lookup(state, rid).unwrap_or(job);
                    local_status_line(rid, &job).replacen("OK", "JOB", 1)
                }
            };
            reply_line(writer, state, &line)?;
        }
    }
    reply_line(writer, state, &format!("END count={count}"))
}

fn stats(state: &Arc<RouterState>) -> String {
    let nodes: Vec<(String, bool, u32, u32)> = {
        let nodes = state.nodes.lock();
        nodes
            .iter()
            .map(|n| (n.addr.clone(), n.alive, n.probe_fails, n.probe_oks))
            .collect()
    };
    let jobs = state.jobs.lock().len();
    let alive = nodes.iter().filter(|(_, a, _, _)| *a).count();
    let probe = state
        .probe
        .as_ref()
        .map_or("off".to_string(), |p| p.interval.as_millis().to_string());
    let mut line = format!(
        "OK backends={alive}/{} jobs={jobs} probe-ms={probe} replicas={}",
        nodes.len(),
        state.replicas
    );
    // Cluster-wide per-tenant result bytes, summed from every live
    // backend's own `tenant{j}-bytes` counters (tenancy only).
    let mut tenant_bytes: BTreeMap<String, u64> = BTreeMap::new();
    for (i, (addr, alive, fails, oks)) in nodes.iter().enumerate() {
        line.push_str(&format!(
            " node{i}-addr={addr} node{i}-alive={alive} \
             node{i}-probe-fails={fails} node{i}-probe-oks={oks}"
        ));
        if !alive {
            continue;
        }
        match unary(state, addr).and_then(|mut c| c.stats()) {
            Ok(fields) => {
                for key in [
                    "jobs",
                    "queue-depth",
                    "cache-hits",
                    "cache-coalesced",
                    "cache-misses",
                    "cache-entries",
                    "cache-pending",
                    "cache-waiting",
                    "graph-bytes",
                    "store",
                    "sched-steals",
                    "sched-injector-steals",
                    "sched-parks",
                    "sched-unparks",
                ] {
                    if let Some(v) = fields.get(key) {
                        line.push_str(&format!(" node{i}-{key}={v}"));
                    }
                }
                if state.principals.is_some() {
                    let mut j = 0usize;
                    while let Some(name) = fields.get(&format!("tenant{j}-name")) {
                        let bytes = fields
                            .get(&format!("tenant{j}-bytes"))
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0);
                        let total = tenant_bytes.entry(name.clone()).or_insert(0);
                        *total = crate::auth::add_bytes(*total, bytes);
                        j += 1;
                    }
                }
            }
            Err(ClientError::Remote(_)) => {}
            Err(_) => mark_backend_dead(state, addr),
        }
    }
    if let Some(store) = &state.principals {
        // Per-tenant cluster view: queued/running from the router's own
        // routed-job records (the edge-quota population), bytes from the
        // backends' journalled counters summed above.
        let mut queued: BTreeMap<&str, usize> = BTreeMap::new();
        let mut running: BTreeMap<&str, usize> = BTreeMap::new();
        let routed = state.jobs.lock();
        for job in routed.values() {
            let Some(owner) = job.args.principal.as_deref() else {
                continue;
            };
            let Some(p) = store.by_name(owner) else {
                continue;
            };
            if job.error.is_some() {
                continue;
            }
            match job.last_state.as_str() {
                "queued" | REQUEUEING => *queued.entry(p.name.as_str()).or_insert(0) += 1,
                "running" => *running.entry(p.name.as_str()).or_insert(0) += 1,
                _ => {}
            }
        }
        line.push_str(&format!(" tenants={}", store.len()));
        for (i, p) in store.principals().iter().enumerate() {
            line.push_str(&format!(
                " tenant{i}-name={} tenant{i}-queued={} tenant{i}-running={} tenant{i}-bytes={}",
                p.name,
                queued.get(p.name.as_str()).copied().unwrap_or(0),
                running.get(p.name.as_str()).copied().unwrap_or(0),
                tenant_bytes.get(&p.name).copied().unwrap_or(0),
            ));
        }
    }
    line
}

fn add_node(state: &Arc<RouterState>, addr: &str) -> String {
    {
        let mut nodes = state.nodes.lock();
        match nodes.iter_mut().find(|n| n.addr == addr) {
            Some(node) => {
                // Revive: the operator vouches for it, so the prober's
                // consecutive-outcome counters restart clean.
                node.alive = true;
                node.probe_fails = 0;
                node.probe_oks = 0;
            }
            None => nodes.push(Node::new(addr.to_string())),
        }
    }
    // The registry changed: queued jobs whose rendezvous owner is now the
    // new node migrate to it immediately, instead of waiting for caches to
    // cool behind skewed placement.
    let moved = rebalance_queued(state);
    let nodes = state.nodes.lock();
    let alive = nodes.iter().filter(|n| n.alive).count();
    format!("OK backends={alive}/{} rebalanced={moved}", nodes.len())
}

fn drop_node(state: &Arc<RouterState>, addr: &str) -> String {
    let removed = {
        let mut nodes = state.nodes.lock();
        let before = nodes.len();
        nodes.retain(|n| n.addr != addr);
        before != nodes.len()
    };
    if !removed {
        return format!("ERR unknown backend {addr}");
    }
    // Graceful drain: queued jobs are cancelled on the (healthy) node and
    // rerouted; running jobs finish in place and stay reachable by address.
    reroute_jobs_of(
        state,
        addr,
        &Reroute {
            backend_lost: false,
            cancel_remote: true,
        },
    );
    let nodes = state.nodes.lock();
    let alive = nodes.iter().filter(|n| n.alive).count();
    format!("OK backends={alive}/{}", nodes.len())
}

fn nodes(writer: &mut TcpStream, state: &Arc<RouterState>) -> std::io::Result<()> {
    let snapshot: Vec<(String, bool, u32, u32)> = {
        let nodes = state.nodes.lock();
        nodes
            .iter()
            .map(|n| (n.addr.clone(), n.alive, n.probe_fails, n.probe_oks))
            .collect()
    };
    let per_backend: BTreeMap<String, usize> = {
        let jobs = state.jobs.lock();
        let mut m = BTreeMap::new();
        for job in jobs.values() {
            *m.entry(job.backend.clone()).or_insert(0) += 1;
        }
        m
    };
    for (addr, alive, fails, oks) in &snapshot {
        let jobs = per_backend.get(addr).copied().unwrap_or(0);
        write_line(
            writer,
            &format!(
                "NODE addr={addr} alive={alive} jobs={jobs} \
                 probe-fails={fails} probe-oks={oks}"
            ),
        )?;
    }
    write_line(writer, &format!("END count={}", snapshot.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rendezvous_is_stable_and_minimally_disruptive() {
        let three = addrs(&["h1:1", "h2:2", "h3:3"]);
        let keys: Vec<String> = (0..50).map(|i| format!("graph-{i}|2")).collect();
        let placed: Vec<&str> = keys
            .iter()
            .map(|k| pick_backend(&three, k).unwrap())
            .collect();
        // Deterministic: same inputs, same placement.
        for (k, &p) in keys.iter().zip(&placed) {
            assert_eq!(pick_backend(&three, k), Some(p));
        }
        // Every backend owns some keys (rendezvous spreads load).
        for b in &three {
            assert!(placed.iter().any(|&p| p == b), "{b} owns no keys");
        }
        // Removing one backend only moves the keys it owned (the rendezvous
        // property that matters for cache warmth: survivors keep theirs).
        let two = addrs(&["h1:1", "h3:3"]);
        for (k, &p) in keys.iter().zip(&placed) {
            if p != "h2:2" {
                assert_eq!(pick_backend(&two, k), Some(p), "key {k} moved needlessly");
            }
        }
    }

    /// Real routing keys differ only in their trailing `q − k` digits; each
    /// such key must be an independent placement draw. (Raw FNV-1a state
    /// fails this badly — see the finalizer note on [`score`].)
    #[test]
    fn suffix_only_key_variation_spreads_load() {
        let two = addrs(&["10.0.0.1:7711", "10.0.0.2:7711"]);
        let mut winners = std::collections::BTreeSet::new();
        for qk in 2..30 {
            let key = format!("dataset:jazz@1|{qk}");
            winners.insert(pick_backend(&two, &key).unwrap().to_string());
        }
        assert_eq!(
            winners.len(),
            2,
            "28 suffix-only keys all landed on one backend"
        );
    }

    #[test]
    fn ranked_backends_head_is_the_pick() {
        let three = addrs(&["h1:1", "h2:2", "h3:3"]);
        for i in 0..20 {
            let key = format!("g{i}|3");
            let ranked = ranked_backends(&three, &key);
            assert_eq!(ranked.len(), 3);
            assert_eq!(ranked[0].as_str(), pick_backend(&three, &key).unwrap());
        }
    }

    #[test]
    fn routing_key_separates_shrink_and_source() {
        let a = SubmitArgs::dataset("jazz", 2, 9); // q-k = 7
        let b = SubmitArgs::dataset("jazz", 3, 10); // q-k = 7 → same key
        let c = SubmitArgs::dataset("jazz", 2, 10); // q-k = 8 → different
        assert_eq!(routing_key(&a), routing_key(&b));
        assert_ne!(routing_key(&a), routing_key(&c));
        let p = SubmitArgs {
            path: Some("/data/x.txt".into()),
            k: 2,
            q: 9,
            ..SubmitArgs::default()
        };
        assert_ne!(routing_key(&a), routing_key(&p));
    }
}
