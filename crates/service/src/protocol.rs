//! The wire protocol: line-delimited requests and responses.
//!
//! Every request is one UTF-8 line; simple verbs get one response line
//! (`OK …` / `ERR …`), `LIST` and `STREAM` produce multiple lines terminated
//! by an `END …` line. Streamed results are NDJSON objects, one per line.
//! The full reference lives in `crates/service/PROTOCOL.md`.
//!
//! Parsing and rendering are pure functions here so both the server and the
//! [`crate::client::Client`] (and their tests) share one implementation.

use std::collections::BTreeMap;

/// A job identifier, assigned by the server at submission (starting at 1).
pub type JobId = u64;

/// Parameters of a `SUBMIT` request, before server-side validation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubmitArgs {
    /// Built-in dataset name (`dataset=`); exclusive with `path`.
    pub dataset: Option<String>,
    /// Server-local edge-list file (`path=`); exclusive with `dataset`.
    pub path: Option<String>,
    /// Plex slack k.
    pub k: usize,
    /// Minimum plex size q.
    pub q: usize,
    /// Engine worker threads for this job (server default when absent).
    pub threads: Option<usize>,
    /// Algorithm preset name (default `ours`).
    pub algo: Option<String>,
    /// Result cap: enumeration stops once this many plexes are buffered.
    pub limit: Option<u64>,
    /// Job wall-clock timeout in milliseconds (0/absent = none).
    pub timeout_ms: Option<u64>,
    /// Pacing: sleep this long before each reported result (testing/ops).
    pub throttle_us: Option<u64>,
    /// Straggler-splitting timeout τ_time in microseconds.
    pub tau_us: Option<u64>,
    /// Storage backend for the job's graph (`store=`): `csr`, `compressed`
    /// or `mmap` (server default when absent). Free-form on the wire; the
    /// server validates it against the known backends at submission.
    pub store: Option<String>,
    /// Tenant attribution tag (`principal=`): the *name* (never the token)
    /// of the principal the job belongs to. Clients normally omit it — an
    /// authenticated connection's submissions are tagged server-side — but
    /// an **admin** principal (the `kplexr` router proxying on a tenant's
    /// behalf) may tag explicitly. A non-admin connection tagging a
    /// principal other than its own is rejected at submission. Because the
    /// tag rides in the `SUBMIT` wire line, journal `SUBMIT` records carry
    /// attribution for free and replay restores per-tenant ownership.
    pub principal: Option<String>,
}

impl SubmitArgs {
    /// A submission for a built-in dataset.
    pub fn dataset(name: &str, k: usize, q: usize) -> Self {
        Self {
            dataset: Some(name.to_string()),
            k,
            q,
            ..Self::default()
        }
    }

    /// Renders the `SUBMIT` request line.
    pub fn to_line(&self) -> String {
        let mut line = String::from("SUBMIT");
        let mut push = |key: &str, val: String| {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            line.push_str(&val);
        };
        if let Some(d) = &self.dataset {
            push("dataset", d.clone());
        }
        if let Some(p) = &self.path {
            push("path", p.clone());
        }
        push("k", self.k.to_string());
        push("q", self.q.to_string());
        if let Some(t) = self.threads {
            push("threads", t.to_string());
        }
        if let Some(a) = &self.algo {
            push("algo", a.clone());
        }
        if let Some(l) = self.limit {
            push("limit", l.to_string());
        }
        if let Some(t) = self.timeout_ms {
            push("timeout-ms", t.to_string());
        }
        if let Some(t) = self.throttle_us {
            push("throttle-us", t.to_string());
        }
        if let Some(t) = self.tau_us {
            push("tau-us", t.to_string());
        }
        if let Some(s) = &self.store {
            push("store", s.clone());
        }
        if let Some(p) = &self.principal {
            push("principal", p.clone());
        }
        line
    }
}

/// A parsed client request.
///
/// The `AddNode`/`DropNode`/`Nodes` verbs administer the `kplexr` shard
/// router's backend registry; a plain `kplexd` rejects them with an error
/// (it has no registry), but they parse everywhere so one grammar serves
/// both binaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Authenticate this connection as a tenant: `AUTH <token>`. The token
    /// maps to a principal via the server's `--principals` store; the reply
    /// names the principal but **never echoes the token**. Servers without
    /// a principal store reject the verb (authentication disabled).
    Auth(String),
    /// Submit a new enumeration job.
    Submit(Box<SubmitArgs>),
    /// One-line state of a job.
    Status(JobId),
    /// Stream a job's results starting at the given sequence number (0 =
    /// from the beginning), then its terminal state. The wire form is
    /// `STREAM <id>` or `STREAM <id> FROM <seq>`; a resuming client passes
    /// the first sequence number it has *not* yet consumed.
    Stream(JobId, u64),
    /// Cooperatively cancel a job.
    Cancel(JobId),
    /// One line per job.
    List,
    /// Server counters (jobs, cache hits/misses, queue depth).
    Stats,
    /// Router admin: register a backend `host:port` (or revive a dropped one).
    AddNode(String),
    /// Router admin: remove a backend from the routing set.
    DropNode(String),
    /// Router: one line per registered backend.
    Nodes,
    /// Router admin: recompute rendezvous placement for every queued job
    /// and migrate the ones whose owner changed (done automatically on
    /// `ADDNODE` and probe-driven rejoin; this triggers it by hand).
    Rebalance,
    /// Close the connection.
    Quit,
}

/// Renders any request back to its one-line wire form; the inverse of
/// [`parse_request`] (`parse_request(&render_request(r)) == Ok(r)` for every
/// representable request — the property the protocol tests pin down).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Ping => "PING".to_string(),
        Request::Auth(token) => format!("AUTH {token}"),
        Request::Submit(args) => args.to_line(),
        Request::Status(id) => format!("STATUS {id}"),
        Request::Stream(id, 0) => format!("STREAM {id}"),
        Request::Stream(id, from) => format!("STREAM {id} FROM {from}"),
        Request::Cancel(id) => format!("CANCEL {id}"),
        Request::List => "LIST".to_string(),
        Request::Stats => "STATS".to_string(),
        Request::AddNode(addr) => format!("ADDNODE {addr}"),
        Request::DropNode(addr) => format!("DROPNODE {addr}"),
        Request::Nodes => "NODES".to_string(),
        Request::Rebalance => "REBALANCE".to_string(),
        Request::Quit => "QUIT".to_string(),
    }
}

/// Splits `key=value` tokens into a map; returns an error for a bare token.
fn parse_kv<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    for tok in tokens {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
        if v.is_empty() {
            return Err(format!("empty value for {k:?}"));
        }
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn take_parse<T: std::str::FromStr>(
    map: &mut BTreeMap<String, String>,
    key: &str,
) -> Result<Option<T>, String> {
    match map.remove(key) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for {key}: {s:?}")),
    }
}

fn parse_id(rest: &[&str], verb: &str) -> Result<JobId, String> {
    match rest {
        [id] => id.parse().map_err(|_| format!("invalid job id {id:?}")),
        _ => Err(format!("usage: {verb} <job-id>")),
    }
}

/// `STREAM <id>` or `STREAM <id> FROM <seq>` (the keyword is
/// case-insensitive like the verb; a bare `STREAM <id>` means seq 0).
fn parse_stream(rest: &[&str]) -> Result<(JobId, u64), String> {
    let id = |s: &str| -> Result<JobId, String> {
        s.parse().map_err(|_| format!("invalid job id {s:?}"))
    };
    match rest {
        [i] => Ok((id(i)?, 0)),
        [i, kw, seq] if kw.eq_ignore_ascii_case("FROM") => {
            let from = seq
                .parse()
                .map_err(|_| format!("invalid FROM seq {seq:?}"))?;
            Ok((id(i)?, from))
        }
        _ => Err("usage: STREAM <job-id> [FROM <seq>]".to_string()),
    }
}

fn parse_addr(rest: &[&str], verb: &str) -> Result<String, String> {
    match rest {
        [addr] => Ok(addr.to_string()),
        _ => Err(format!("usage: {verb} <host:port>")),
    }
}

/// `AUTH <token>` — exactly one token argument. The error message never
/// echoes what was (or was not) supplied: a mistyped token pasted with a
/// stray space must not leak its fragments into the reply.
fn parse_auth(rest: &[&str]) -> Result<String, String> {
    match rest {
        [token] => Ok(token.to_string()),
        _ => Err("usage: AUTH <token>".to_string()),
    }
}

/// Parses one request line. Verbs are case-insensitive; arguments are not.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or("empty request")?;
    let rest: Vec<&str> = tokens.collect();
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "LIST" => Ok(Request::List),
        "STATS" => Ok(Request::Stats),
        "QUIT" => Ok(Request::Quit),
        "NODES" => Ok(Request::Nodes),
        "REBALANCE" => Ok(Request::Rebalance),
        "STATUS" => Ok(Request::Status(parse_id(&rest, "STATUS")?)),
        "STREAM" => {
            let (id, from) = parse_stream(&rest)?;
            Ok(Request::Stream(id, from))
        }
        "CANCEL" => Ok(Request::Cancel(parse_id(&rest, "CANCEL")?)),
        "AUTH" => Ok(Request::Auth(parse_auth(&rest)?)),
        "ADDNODE" => Ok(Request::AddNode(parse_addr(&rest, "ADDNODE")?)),
        "DROPNODE" => Ok(Request::DropNode(parse_addr(&rest, "DROPNODE")?)),
        "SUBMIT" => {
            let mut kv = parse_kv(rest.into_iter())?;
            let args = SubmitArgs {
                dataset: kv.remove("dataset"),
                path: kv.remove("path"),
                k: take_parse(&mut kv, "k")?.ok_or("SUBMIT requires k=")?,
                q: take_parse(&mut kv, "q")?.ok_or("SUBMIT requires q=")?,
                threads: take_parse(&mut kv, "threads")?,
                algo: kv.remove("algo"),
                limit: take_parse(&mut kv, "limit")?,
                timeout_ms: take_parse(&mut kv, "timeout-ms")?,
                throttle_us: take_parse(&mut kv, "throttle-us")?,
                tau_us: take_parse(&mut kv, "tau-us")?,
                store: kv.remove("store"),
                principal: kv.remove("principal"),
            };
            if let Some(unknown) = kv.keys().next() {
                return Err(format!("unknown SUBMIT key {unknown:?}"));
            }
            match (&args.dataset, &args.path) {
                (Some(_), None) | (None, Some(_)) => {}
                _ => return Err("SUBMIT requires exactly one of dataset= or path=".into()),
            }
            Ok(Request::Submit(Box::new(args)))
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Parses the `key=value` fields of a response line after its leading word
/// (`OK`, `JOB`, `END`). Used by the client and the tests.
pub fn parse_response_fields(line: &str) -> Result<BTreeMap<String, String>, String> {
    parse_kv(line.split_whitespace().skip(1))
}

/// Makes an arbitrary string (typically an error message built from an
/// `io::Error`) safe to embed as a `key=value` token of a one-line reply:
/// every whitespace or control character — not just spaces; a newline or
/// tab would corrupt the line protocol mid-reply — becomes `_`, and the
/// empty string becomes `"_"` (the grammar rejects empty values).
pub fn sanitize_value(s: &str) -> String {
    if s.is_empty() {
        return "_".to_string();
    }
    s.chars()
        .map(|c| {
            if c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Replaces every occurrence of every registered secret token in `s` with
/// `****`. This is the token-scrubbing half of the sanitize layer: any
/// value that could embed client-supplied text (an error message quoting a
/// path, a failed loader's output) goes through it before hitting a reply
/// line, so an authentication token can never be echoed back — not in
/// `STATUS` error fields, not in `STATS`, not in journal records.
///
/// Splice-proof by construction: secrets are drawn from the principal-file
/// charset `[A-Za-z0-9_.-]` (see [`crate::auth`]), which excludes `*`, so
/// a replacement can never manufacture a new occurrence of any secret —
/// every secret occurrence in the output lies entirely within a preserved
/// fragment of the input, and processing secrets longest-first guarantees
/// each such fragment gets its own pass.
pub fn redact_secrets(s: &str, secrets: &[String]) -> String {
    let mut ordered: Vec<&String> = secrets.iter().filter(|t| !t.is_empty()).collect();
    ordered.sort_by_key(|t| std::cmp::Reverse(t.len()));
    let mut out = s.to_string();
    for secret in ordered {
        out = out.replace(secret.as_str(), "****");
    }
    out
}

/// [`sanitize_value`] followed by [`redact_secrets`]: the composition every
/// reply-embedded free-form value on an authenticated server goes through.
///
/// The order is load-bearing. Sanitizing maps whitespace and control
/// characters to `_`, and `_` is *inside* the token charset — so redacting
/// first would let sanitation manufacture a token occurrence afterwards
/// (input `a b` becoming secret `a_b`). Sanitizing first cannot destroy a
/// real occurrence (token characters are never whitespace or control), and
/// redacting last catches both real and manufactured ones.
pub fn sanitize_value_redacted(s: &str, secrets: &[String]) -> String {
    redact_secrets(&sanitize_value(s), secrets)
}

/// Renders one streamed result as an NDJSON line:
/// `{"id":3,"seq":0,"plex":[1,2,3]}`.
pub fn render_plex_line(id: JobId, seq: u64, plex: &[u32]) -> String {
    let mut s = format!("{{\"id\":{id},\"seq\":{seq},\"plex\":[");
    for (i, v) in plex.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push_str("]}");
    s
}

/// Parses a streamed NDJSON result line back into `(id, seq, plex)`.
/// Accepts exactly the shape [`render_plex_line`] produces.
pub fn parse_plex_line(line: &str) -> Result<(JobId, u64, Vec<u32>), String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut id = None;
    let mut seq = None;
    let mut plex = None;
    // Split on the three known keys; the only nested structure is the array.
    let mut rest = inner;
    while !rest.is_empty() {
        let rest2 = rest.strip_prefix(',').unwrap_or(rest);
        let (key, after) = rest2
            .strip_prefix('"')
            .and_then(|s| s.split_once("\":"))
            .ok_or("malformed key")?;
        let (value, tail) = if let Some(arr) = after.strip_prefix('[') {
            let (body, t) = arr.split_once(']').ok_or("unterminated array")?;
            (body, t)
        } else {
            match after.find(',') {
                Some(i) => (&after[..i], &after[i..]),
                None => (after, ""),
            }
        };
        match key {
            "id" => id = Some(value.parse().map_err(|_| "bad id")?),
            "seq" => seq = Some(value.parse().map_err(|_| "bad seq")?),
            "plex" => {
                let vs: Result<Vec<u32>, _> = if value.is_empty() {
                    Ok(Vec::new())
                } else {
                    value.split(',').map(|t| t.trim().parse()).collect()
                };
                plex = Some(vs.map_err(|_| "bad plex element")?);
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        rest = tail;
    }
    Ok((
        id.ok_or("missing id")?,
        seq.ok_or("missing seq")?,
        plex.ok_or("missing plex")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrip() {
        let mut args = SubmitArgs::dataset("jazz", 2, 9);
        args.threads = Some(4);
        args.limit = Some(1000);
        args.throttle_us = Some(250);
        args.store = Some("mmap".into());
        args.principal = Some("alice".into());
        let line = args.to_line();
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(*parsed, args),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_validation_errors() {
        assert!(parse_request("SUBMIT k=2 q=9").is_err()); // no source
        assert!(parse_request("SUBMIT dataset=jazz path=x k=2 q=9").is_err()); // both
        assert!(parse_request("SUBMIT dataset=jazz q=9").is_err()); // no k
        assert!(parse_request("SUBMIT dataset=jazz k=abc q=9").is_err());
        assert!(parse_request("SUBMIT dataset=jazz k=2 q=9 wat=1").is_err());
    }

    #[test]
    fn simple_verbs_parse() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
        assert_eq!(parse_request("STATUS 7").unwrap(), Request::Status(7));
        assert_eq!(parse_request("CANCEL 3").unwrap(), Request::Cancel(3));
        assert_eq!(parse_request("STREAM 1").unwrap(), Request::Stream(1, 0));
        assert!(parse_request("STATUS").is_err());
        assert!(parse_request("STATUS x").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn stream_from_parses_and_renders() {
        assert_eq!(
            parse_request("STREAM 3 FROM 17").unwrap(),
            Request::Stream(3, 17)
        );
        assert_eq!(
            parse_request("stream 3 from 17").unwrap(),
            Request::Stream(3, 17)
        );
        assert_eq!(render_request(&Request::Stream(3, 0)), "STREAM 3");
        assert_eq!(render_request(&Request::Stream(3, 17)), "STREAM 3 FROM 17");
        for req in [Request::Stream(9, 0), Request::Stream(9, u64::MAX)] {
            assert_eq!(parse_request(&render_request(&req)).unwrap(), req);
        }
        assert!(parse_request("STREAM 3 FROM").is_err());
        assert!(parse_request("STREAM 3 FROM x").is_err());
        assert!(parse_request("STREAM 3 UNTIL 9").is_err());
        assert!(parse_request("STREAM 3 FROM 1 2").is_err());
    }

    #[test]
    fn sanitize_value_strips_all_whitespace_and_controls() {
        assert_eq!(sanitize_value("plain"), "plain");
        assert_eq!(sanitize_value("two words"), "two_words");
        assert_eq!(sanitize_value("a\nb\tc\rd"), "a_b_c_d");
        assert_eq!(sanitize_value("\u{0}\u{1b}"), "__");
        assert_eq!(sanitize_value(""), "_");
        // The sanitized value must survive a reply-line round trip.
        let line = format!("OK error={}", sanitize_value("no such\nfile or directory"));
        let fields = parse_response_fields(&line).unwrap();
        assert_eq!(fields["error"], "no_such_file_or_directory");
    }

    #[test]
    fn router_verbs_parse_and_render() {
        assert_eq!(parse_request("NODES").unwrap(), Request::Nodes);
        assert_eq!(
            parse_request("ADDNODE 127.0.0.1:7712").unwrap(),
            Request::AddNode("127.0.0.1:7712".into())
        );
        assert_eq!(
            parse_request("dropnode 127.0.0.1:7712").unwrap(),
            Request::DropNode("127.0.0.1:7712".into())
        );
        assert!(parse_request("ADDNODE").is_err());
        assert!(parse_request("ADDNODE a b").is_err());
        assert_eq!(parse_request("REBALANCE").unwrap(), Request::Rebalance);
        for req in [
            Request::Nodes,
            Request::AddNode("h:1".into()),
            Request::DropNode("h:2".into()),
            Request::Rebalance,
            Request::Stats,
        ] {
            assert_eq!(parse_request(&render_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn auth_parses_and_renders() {
        assert_eq!(
            parse_request("AUTH s3cr3t").unwrap(),
            Request::Auth("s3cr3t".into())
        );
        assert_eq!(
            parse_request("auth s3cr3t").unwrap(),
            Request::Auth("s3cr3t".into())
        );
        assert_eq!(render_request(&Request::Auth("t0k".into())), "AUTH t0k");
        assert_eq!(
            parse_request(&render_request(&Request::Auth("t0k".into()))).unwrap(),
            Request::Auth("t0k".into())
        );
        // Arity errors are a fixed string — no echo of token fragments.
        for bad in ["AUTH", "AUTH sec ret"] {
            assert_eq!(parse_request(bad).unwrap_err(), "usage: AUTH <token>");
        }
    }

    #[test]
    fn redaction_scrubs_every_token_occurrence() {
        let secrets = vec!["tok-alice".to_string(), "ab".to_string()];
        assert_eq!(
            redact_secrets("loading /tmp/tok-alice/g.edges: denied", &secrets),
            "loading /tmp/****/g.edges: denied"
        );
        // Overlapping/substring secrets: longest replaced first, shorter
        // ones still caught in the remaining fragments.
        assert_eq!(redact_secrets("ab tok-aliceab", &secrets), "**** ********");
        // Replacement text can never recreate a secret (charset excludes *).
        let secrets = vec!["a".to_string()];
        assert!(!redact_secrets("aaaa", &secrets).contains('a'));
        // Empty secrets are ignored rather than exploding the string.
        assert_eq!(redact_secrets("x", &[String::new()]), "x");
        assert_eq!(
            sanitize_value_redacted("bad token tok-x here", &["tok-x".to_string()]),
            "bad_token_****_here"
        );
    }

    #[test]
    fn plex_line_roundtrip() {
        let line = render_plex_line(3, 17, &[4, 8, 15]);
        assert_eq!(line, "{\"id\":3,\"seq\":17,\"plex\":[4,8,15]}");
        assert_eq!(parse_plex_line(&line).unwrap(), (3, 17, vec![4, 8, 15]));
        let empty = render_plex_line(1, 0, &[]);
        assert_eq!(parse_plex_line(&empty).unwrap(), (1, 0, vec![]));
        assert!(parse_plex_line("not json").is_err());
    }

    #[test]
    fn response_fields_parse() {
        let kv = parse_response_fields("OK id=3 state=queued").unwrap();
        assert_eq!(kv["id"], "3");
        assert_eq!(kv["state"], "queued");
    }
}
