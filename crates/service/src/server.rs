//! The `kplexd` server: accept loop, bounded job queue, runner pool.
//!
//! Thread layout (no async runtime — the offline build has std only):
//!
//! * the **accept loop** spawns one handler thread per client connection;
//! * handlers parse line requests; `SUBMIT` pushes onto a **bounded queue**
//!   (full queue → immediate `ERR`, the back-pressure signal);
//! * a fixed pool of **runner** threads pops jobs and executes them on the
//!   parallel engine ([`kplex_parallel::run_parallel_prepared`]), each with
//!   its own per-job thread count;
//! * per running job, one **drainer** thread pumps the engine's channel
//!   sink into the job's result buffer, enforcing the result cap and the
//!   wall-clock deadline by raising the job's stop flag.
//!
//! Cancellation (`CANCEL`, cap, deadline) is cooperative end to end: one
//! `Arc<AtomicBool>` per job is observed by the engine's workers inside the
//! branch recursion, so a cancelled job's workers stop mid-task while other
//! jobs keep running undisturbed.

use crate::cache::{CacheStats, GraphCache};
use crate::job::{GraphSource, Job, JobSpec, StopCause, StreamStep};
use crate::journal::Journal;
use crate::protocol::{self, JobId, Request, SubmitArgs};
use crate::sync::{OrderedCondvar, OrderedMutex, Rank};
use crate::LoadHook;
use kplex_core::{prepare, ChannelSink, Params, PlexSink, SinkFlow};
use kplex_graph::io;
use kplex_parallel::{run_parallel_prepared, EngineOptions};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long blocking waits (queue pop, stream follow) sleep between
/// shutdown-flag checks.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// Default for [`ServerConfig::retain_terminal`]: terminal jobs retained
/// for `STATUS`/`STREAM` replay. Beyond this, the oldest finished jobs —
/// and their result buffers — are evicted at submission time, so a
/// long-lived server's memory is bounded by live jobs + this backlog, not
/// by its lifetime. Retention is also the resume window: `STREAM <id>
/// FROM <seq>` of a terminal job works until the job is evicted, after
/// which a resuming client gets `ERR no such job`.
const RETAIN_TERMINAL_JOBS: usize = 64;

/// Default for [`ServerConfig::delivery_batch`]: streamed results per
/// journaled `DELIVERED` offset record. The floor is also flushed whenever
/// a stream goes idle (caught up with the producer), so a live follower's
/// floor tracks closely; the batch bounds the fsync rate on the
/// catch-up/burst path.
const DELIVERY_BATCH: usize = 4096;

/// Server construction knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7711` (port 0 for ephemeral).
    pub addr: String,
    /// Concurrent jobs (runner threads).
    pub runners: usize,
    /// Bounded queue capacity; a full queue rejects `SUBMIT`.
    pub queue_cap: usize,
    /// Prepared-graph LRU capacity.
    pub cache_cap: usize,
    /// Default per-job engine threads when `SUBMIT` omits `threads=`.
    pub default_threads: usize,
    /// Default graph storage backend when `SUBMIT` omits `store=`
    /// (`kplexd --store`): how prepared graphs are held in the cache.
    pub default_store: kplex_graph::StoreKind,
    /// Terminal jobs retained for `STATUS`/`STREAM` replay before eviction.
    pub retain_terminal: usize,
    /// Append-only job journal path (`kplexd --journal`). When set, every
    /// accepted job is fsync'd to this file before its `SUBMIT` is
    /// acknowledged, and a restarted server replays queued and
    /// orphaned-running jobs back into the queue (see [`crate::journal`]
    /// for the recovery semantics). `None` disables persistence.
    pub journal: Option<std::path::PathBuf>,
    /// Streamed results between journaled `DELIVERED` offset records
    /// (`kplexd --delivery-batch`). Smaller = tighter exactly-once window
    /// across a crash, more fsyncs; the offset is never journaled per
    /// result. Ignored without a journal.
    pub delivery_batch: usize,
    /// Test-only: called with the cache key at the start of every cold
    /// load, *outside* the cache's map lock. Tests install a hook that
    /// blocks on a channel to hold a cold load open deterministically (no
    /// sleeps) while asserting warm jobs and `STATS` still complete.
    pub cold_load_hook: Option<LoadHook>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("runners", &self.runners)
            .field("queue_cap", &self.queue_cap)
            .field("cache_cap", &self.cache_cap)
            .field("default_threads", &self.default_threads)
            .field("default_store", &self.default_store)
            .field("retain_terminal", &self.retain_terminal)
            .field("journal", &self.journal)
            .field("delivery_batch", &self.delivery_batch)
            .field("cold_load_hook", &self.cold_load_hook.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        Self {
            addr: "127.0.0.1:7711".to_string(),
            runners: 2,
            queue_cap: 64,
            cache_cap: 4,
            default_threads: hw.clamp(1, 8),
            default_store: kplex_graph::StoreKind::Csr,
            retain_terminal: RETAIN_TERMINAL_JOBS,
            journal: None,
            delivery_batch: DELIVERY_BATCH,
            cold_load_hook: None,
        }
    }
}

/// The admission queue and its reservation count, one mutex-protected
/// unit. `reserved` counts queue slots held by submissions whose journal
/// fsync is in flight (the fsync runs outside the queue lock); keeping it
/// inside the same lock as the deque makes `deque.len() + reserved` a
/// structurally consistent capacity check — it used to be a separate
/// atomic that was only *conventionally* guarded by this lock.
struct JobQueue {
    deque: VecDeque<JobId>,
    reserved: usize,
}

struct SharedState {
    jobs: OrderedMutex<BTreeMap<JobId, Arc<Job>>>,
    next_id: AtomicU64,
    queue: OrderedMutex<JobQueue>,
    queue_cond: OrderedCondvar,
    queue_cap: usize,
    cache: GraphCache,
    shutdown: AtomicBool,
    default_threads: usize,
    default_store: kplex_graph::StoreKind,
    retain_terminal: usize,
    /// Streamed results per journaled `DELIVERED` record (see
    /// [`ServerConfig::delivery_batch`]).
    delivery_batch: usize,
    /// Crash-recovery journal; `None` when the server is ephemeral.
    journal: Option<Journal>,
    /// Jobs replayed from the journal at startup (`STATS recovered=`).
    recovered: usize,
    /// Live client connections, keyed by an accept-order id. Each handler
    /// thread removes its own entry on exit, so the map tracks only open
    /// connections. Exists so [`ServerHandle::kill`] can sever them
    /// abruptly (crash simulation); the graceful shutdown ignores it.
    conns: OrderedMutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    cold_load_hook: Option<LoadHook>,
}

impl SharedState {
    /// Appends a journal record unless the server is shutting down. A
    /// shutdown is deliberately crash-equivalent for the journal: nothing
    /// written after it begins, so jobs interrupted by it (queued or
    /// running) replay on the next start instead of being recorded as
    /// cancelled. Append failures on a live server are logged, not fatal —
    /// the job still runs; only its restart durability degrades.
    fn journal_record(&self, write: impl FnOnce(&Journal) -> std::io::Result<()>) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(journal) = &self.journal {
            if let Err(e) = write(journal) {
                eprintln!("kplexd: journal append failed: {e}");
            }
        }
    }
}

impl SharedState {
    fn job(&self, id: JobId) -> Option<Arc<Job>> {
        self.jobs.lock().get(&id).cloned()
    }
}

/// The terminal hook installed on every job of a journaled server: writes
/// the `END` record the instant the job's terminal transition is performed
/// — under the job's lock, *before* any `STATUS`/`STREAM` reader can
/// observe it. Write-ahead matters: once a client has seen a job terminal
/// (and consumed its results), a restart must not resurrect it. The state
/// handle is weak so the jobs map and the state do not form an `Arc` cycle.
fn terminal_journal_hook(state: std::sync::Weak<SharedState>) -> crate::job::TerminalHook {
    Arc::new(move |id, label| {
        if let Some(state) = state.upgrade() {
            state.journal_record(|j| j.record_end(id, label));
        }
    })
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
    runners: usize,
}

/// Handle to a server whose accept loop runs in a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<SharedState>,
    accept: Option<std::thread::JoinHandle<()>>,
    runners: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and prepares the shared state. With
    /// [`ServerConfig::journal`] set, this replays the journal first:
    /// queued and orphaned-running jobs from the previous lifetime re-enter
    /// the queue under their original ids (flagged `recovered=true` in
    /// `STATUS`), the id counter resumes past every id ever issued, and a
    /// corrupt journal fails the bind loudly.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let default_threads = cfg.default_threads.max(1);
        let default_store = cfg.default_store;
        let (journal, replayed) = match &cfg.journal {
            Some(path) => {
                let (journal, replay) = Journal::open(path)?;
                (Some(journal), Some(replay))
            }
            None => (None, None),
        };
        let next_id = replayed.as_ref().map_or(1, |r| r.next_id);
        // `new_cyclic`: replayed jobs need the terminal hook, and the hook
        // needs a (weak — jobs must not keep the state alive in a cycle)
        // handle to the state being built.
        let state = Arc::new_cyclic(|weak: &std::sync::Weak<SharedState>| {
            let mut jobs = BTreeMap::new();
            let mut queue = VecDeque::new();
            for recovered in replayed.into_iter().flat_map(|r| r.jobs) {
                // Re-validate against *this* lifetime's registry: a journal
                // may outlive a dataset or an algorithm preset. An invalid
                // replayed job is failed in the journal (not resurrected
                // forever), not silently dropped.
                match validate(default_threads, default_store, &recovered.args) {
                    Ok(spec) => {
                        // The journaled delivery floor travels with the job:
                        // a client consumed results below it in the previous
                        // lifetime, so streams of the replayed job skip them.
                        let job = Job::new_recovered(recovered.id, spec)
                            .with_delivered_floor(recovered.delivered)
                            .with_terminal_hook(terminal_journal_hook(weak.clone()));
                        jobs.insert(recovered.id, Arc::new(job));
                        queue.push_back(recovered.id);
                    }
                    Err(reason) => {
                        eprintln!(
                            "kplexd: journal replay: job {} no longer valid ({reason}), failing it",
                            recovered.id
                        );
                        if let Some(journal) = &journal {
                            let _ = journal.record_end(recovered.id, "failed");
                        }
                    }
                }
            }
            let recovered = queue.len();
            SharedState {
                jobs: OrderedMutex::new(Rank::ServerJobs, "server-jobs", jobs),
                next_id: AtomicU64::new(next_id),
                queue: OrderedMutex::new(
                    Rank::ServerQueue,
                    "server-queue",
                    JobQueue {
                        deque: queue,
                        reserved: 0,
                    },
                ),
                queue_cond: OrderedCondvar::new(),
                queue_cap: cfg.queue_cap.max(1),
                cache: GraphCache::new(cfg.cache_cap),
                shutdown: AtomicBool::new(false),
                default_threads,
                default_store,
                retain_terminal: cfg.retain_terminal,
                delivery_batch: cfg.delivery_batch.max(1),
                journal,
                recovered,
                conns: OrderedMutex::new(Rank::ServerConns, "server-conns", BTreeMap::new()),
                next_conn: AtomicU64::new(0),
                cold_load_hook: cfg.cold_load_hook.clone(),
            }
        });
        Ok(Server {
            listener,
            runners: cfg.runners.max(1),
            state,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn spawn_runners(&self) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.runners)
            .map(|_| {
                let state = self.state.clone();
                std::thread::spawn(move || runner_loop(&state))
            })
            .collect()
    }

    /// Runs the accept loop on the current thread (the `kplexd` entry),
    /// with the runner pool sized by [`ServerConfig::runners`].
    pub fn run(self) -> std::io::Result<()> {
        let _runners = self.spawn_runners();
        accept_loop(&self.listener, &self.state);
        Ok(())
    }

    /// Runs the accept loop in a background thread and returns a handle
    /// (used by tests and the CLI smoke).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let runner_handles = self.spawn_runners();
        let state = self.state.clone();
        let listener = self.listener;
        let accept_state = state.clone();
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
            runners: runner_handles,
        })
    }
}

impl ServerHandle {
    /// Where clients connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels every live job, and joins the accept loop
    /// and runner pool. Connection handler threads are detached; they exit
    /// as their clients disconnect or their streams observe the shutdown.
    pub fn shutdown(self) {
        self.teardown(false);
    }

    /// Crash-equivalent teardown for tests and smoke suites: severs every
    /// open client connection mid-line — in-flight streams break with a
    /// transport error on the peer, with no graceful `ERR`/`END` — then
    /// stops like [`ServerHandle::shutdown`]. Journal-wise the two are
    /// already identical (nothing is written once shutdown begins), so the
    /// only observable difference is how abruptly clients are cut off:
    /// exactly what failover and resume paths need to exercise.
    pub fn kill(self) {
        self.teardown(true);
    }

    fn teardown(mut self, sever: bool) {
        self.state.shutdown.store(true, Ordering::Release);
        if sever {
            let conns = self.state.conns.lock();
            for conn in conns.values() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        // Cancel live jobs so runners and streamers unblock quickly.
        let jobs: Vec<Arc<Job>> = self.state.jobs.lock().values().cloned().collect();
        for job in jobs {
            if !job.state().is_terminal() {
                job.request_cancel();
            }
        }
        self.state.queue_cond.notify_all();
        // Poke the accept loop out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<SharedState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Register the connection so `kill()` can sever it; the
                // handler thread deregisters itself on exit, keeping the
                // registry bounded by *open* connections.
                // ordering: connection ids only need uniqueness, nothing
                // else is published through this counter.
                let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    state.conns.lock().insert(conn_id, clone);
                }
                let state = state.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &state);
                    state.conns.lock().remove(&conn_id);
                });
            }
            Err(_) if state.shutdown.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

// --- connection handling ----------------------------------------------------

fn write_line<W: Write>(stream: &mut W, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn handle_connection(stream: TcpStream, state: &Arc<SharedState>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => write_line(&mut writer, &format!("ERR {e}"))?,
            Ok(Request::Quit) => {
                write_line(&mut writer, "OK bye")?;
                return Ok(());
            }
            Ok(Request::Ping) => write_line(&mut writer, "OK pong")?,
            Ok(Request::Submit(args)) => {
                let resp = match submit(state, &args) {
                    Ok(id) => format!("OK id={id} state=queued"),
                    Err(e) => format!("ERR {e}"),
                };
                write_line(&mut writer, &resp)?;
            }
            Ok(Request::Status(id)) => {
                let resp = match state.job(id) {
                    Some(job) => status_line(&job),
                    None => format!("ERR no such job {id}"),
                };
                write_line(&mut writer, &resp)?;
            }
            Ok(Request::Cancel(id)) => {
                let resp = match state.job(id) {
                    Some(job) => {
                        job.request_cancel();
                        // A job cancelled while queued must also free its
                        // bounded-queue slot, or dead jobs hold capacity
                        // against new submissions until a runner pops them.
                        state.queue.lock().deque.retain(|&qid| qid != id);
                        // A queued job dies inside `request_cancel`, which
                        // fires the terminal hook — the journal END record
                        // is already written by the time we reply.
                        let snap = job.snapshot();
                        format!("OK id={id} state={}", snap.state.label())
                    }
                    None => format!("ERR no such job {id}"),
                };
                write_line(&mut writer, &resp)?;
            }
            Ok(Request::List) => {
                let jobs: Vec<Arc<Job>> = state.jobs.lock().values().cloned().collect();
                for job in &jobs {
                    let s = job.snapshot();
                    write_line(
                        &mut writer,
                        &format!(
                            "JOB id={} state={} source={} k={} q={} results={}",
                            s.id,
                            s.state.label(),
                            s.source,
                            s.params.k,
                            s.params.q,
                            s.results
                        ),
                    )?;
                }
                write_line(&mut writer, &format!("END count={}", jobs.len()))?;
            }
            Ok(Request::Stats) => {
                let CacheStats {
                    hits,
                    coalesced,
                    misses,
                    entries,
                    pending,
                    waiting,
                } = state.cache.stats();
                let jobs = state.jobs.lock().len();
                let depth = state.queue.lock().deque.len();
                let recovered = state.recovered;
                // Per-backend cache residency: total bytes plus a
                // `label:entries:bytes` breakdown ("-" when the cache is
                // empty — the grammar rejects empty values).
                let agg = state.cache.store_stats();
                let graph_bytes: u64 = agg.iter().map(|&(_, _, b)| b).sum();
                let store = if agg.is_empty() {
                    "-".to_string()
                } else {
                    agg.iter()
                        .map(|&(l, c, b)| format!("{l}:{c}:{b}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                write_line(
                    &mut writer,
                    &format!(
                        "OK jobs={jobs} queue-depth={depth} recovered={recovered} \
                         cache-hits={hits} cache-coalesced={coalesced} \
                         cache-misses={misses} cache-entries={entries} \
                         cache-pending={pending} cache-waiting={waiting} \
                         graph-bytes={graph_bytes} store={store}"
                    ),
                )?;
            }
            Ok(
                Request::AddNode(_) | Request::DropNode(_) | Request::Nodes | Request::Rebalance,
            ) => {
                write_line(
                    &mut writer,
                    "ERR router-only verb (this is a kplexd backend, not a kplexr router)",
                )?;
            }
            Ok(Request::Stream(id, from)) => match state.job(id) {
                Some(job) => stream_job(&mut writer, state, &job, from)?,
                None => write_line(&mut writer, &format!("ERR no such job {id}"))?,
            },
        }
    }
    Ok(())
}

fn status_line(job: &Job) -> String {
    let s = job.snapshot();
    let mut line = format!(
        "OK id={} state={} source={} k={} q={} results={} elapsed-ms={}",
        s.id,
        s.state.label(),
        s.source,
        s.params.k,
        s.params.q,
        s.results,
        s.elapsed_ms
    );
    match s.cache_hit {
        Some(true) => line.push_str(" cache=hit"),
        Some(false) => line.push_str(" cache=miss"),
        None => line.push_str(" cache=-"),
    }
    if s.recovered {
        line.push_str(" recovered=true");
    }
    if let Some(stats) = &s.stats {
        line.push_str(&format!(
            " branches={} outputs={}",
            stats.branch_calls, stats.outputs
        ));
    }
    if let Some(err) = &s.error {
        // Full sanitization, not just spaces: an io::Error message can
        // carry tabs or newlines, which would corrupt the line protocol.
        line.push_str(&format!(" error={}", protocol::sanitize_value(err)));
    }
    line
}

/// Streams buffered results (NDJSON) from `from` — raised to the job's
/// journaled delivery floor — and follows the job until it is terminal,
/// then writes the `END` line.
///
/// The `END` line reports the **actually-sent** high-water position
/// (`results=` is the next undelivered seq), not the job's buffered total:
/// if the two ever disagree — a short delivery, or a `FROM` past the end —
/// a `truncated=true total=<buffered>` marker surfaces the gap instead of
/// silently claiming completeness.
fn stream_job(
    writer: &mut TcpStream,
    state: &SharedState,
    job: &Arc<Job>,
    from: u64,
) -> std::io::Result<()> {
    // Result lines go through a buffer (one syscall per ~8 KiB instead of
    // two per plex — this is the 10^6-results path). The buffer is flushed
    // whenever the job has nothing new (Idle) and at the end, so a live
    // follower still sees results promptly.
    let mut out = std::io::BufWriter::new(writer);
    // `sent` is the next seq to deliver: it starts at the client's resume
    // point, never below the journaled floor (results under it were
    // consumed in a previous server lifetime — re-delivering them would
    // break exactly-once across the restart).
    let mut sent = from.max(job.delivered_floor) as usize;
    // Offset journaling is batched (every `delivery_batch` results) and
    // flushed at idle points — never one fsync per result.
    let mut journaled = sent;
    let note_delivered = |sent: usize, journaled: &mut usize| {
        if sent > *journaled {
            state.journal_record(|j| j.record_delivered(job.id, sent as u64));
            *journaled = sent;
        }
    };
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match job.next_results(sent, &mut buf, WAIT_TICK) {
            StreamStep::Items => {
                for plex in &buf {
                    write_line(
                        &mut out,
                        &protocol::render_plex_line(job.id, sent as u64, plex),
                    )?;
                    sent += 1;
                    if sent - journaled >= state.delivery_batch {
                        note_delivered(sent, &mut journaled);
                    }
                }
            }
            StreamStep::Ended(job_state, total) => {
                // No floor record here: the job is terminal, its journal
                // END is already on disk (write-ahead), and replay never
                // resurrects it — a floor would be dead weight.
                let mut end = format!(
                    "END id={} state={} results={sent}",
                    job.id,
                    job_state.label()
                );
                if sent as u64 != total {
                    end.push_str(&format!(" truncated=true total={total}"));
                }
                write_line(&mut out, &end)?;
                return out.flush();
            }
            StreamStep::Idle => {
                note_delivered(sent, &mut journaled);
                out.flush()?;
                if state.shutdown.load(Ordering::Acquire) {
                    return write_line(&mut out, "ERR server shutting down")
                        .and_then(|()| out.flush());
                }
            }
        }
    }
}

// --- submission -------------------------------------------------------------

fn submit(state: &Arc<SharedState>, args: &SubmitArgs) -> Result<JobId, String> {
    if state.shutdown.load(Ordering::Acquire) {
        // The runner pool is gone; accepting would queue the job forever.
        return Err("server shutting down".into());
    }
    let spec = validate(state.default_threads, state.default_store, args)?;
    // ordering: id allocation only needs uniqueness; publication of the job
    // itself happens under the queue/jobs locks in phase 2.
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(
        Job::new(id, spec).with_terminal_hook(terminal_journal_hook(Arc::downgrade(state))),
    );
    // Phase 1: reserve a queue slot. The capacity check counts slots held
    // by submissions whose journal fsync is still in flight, so the cap
    // cannot be oversubscribed while the lock is released below.
    {
        let mut queue = state.queue.lock();
        if queue.deque.len() + queue.reserved >= state.queue_cap {
            return Err(format!(
                "queue full ({} jobs waiting), retry later",
                queue.deque.len() + queue.reserved
            ));
        }
        queue.reserved += 1;
    }
    // Journal-before-ack, with the fsync OUTSIDE the queue lock —
    // submissions must not serialize runner pops behind disk latency. A
    // journal failure rejects the submission (the job would not survive a
    // restart); a crash right after the fsync replays a job no client was
    // ever promised — the at-least-once side of the contract. Ordering per
    // id still holds: the job is invisible to runners until phase 2.
    let journaled = match &state.journal {
        Some(journal) => journal
            .record_submit(id, args)
            .map_err(|e| format!("journal write failed: {e}")),
        None => Ok(()),
    };
    // Phase 2: publish (always releasing the reservation first).
    {
        let mut queue = state.queue.lock();
        queue.reserved -= 1;
        journaled?;
        let mut jobs = state.jobs.lock();
        jobs.insert(id, job);
        // Evict the oldest terminal jobs beyond the retention backlog
        // (BTreeMap iterates in id = submission order).
        let stale: Vec<JobId> = jobs
            .iter()
            .filter(|(_, j)| j.state().is_terminal())
            .map(|(&jid, _)| jid)
            .collect();
        if stale.len() > state.retain_terminal {
            for jid in &stale[..stale.len() - state.retain_terminal] {
                jobs.remove(jid);
            }
        }
        queue.deque.push_back(id);
    }
    state.queue_cond.notify_one();
    Ok(id)
}

fn validate(
    default_threads: usize,
    default_store: kplex_graph::StoreKind,
    args: &SubmitArgs,
) -> Result<JobSpec, String> {
    let params = Params::new(args.k, args.q).map_err(|e| e.to_string())?;
    let store = match &args.store {
        None => default_store,
        Some(s) => kplex_graph::StoreKind::parse(s)
            .ok_or_else(|| format!("unknown store {s:?} (expected csr, compressed or mmap)"))?,
    };
    let source = match (&args.dataset, &args.path) {
        (Some(name), None) => {
            kplex_datasets::by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
            GraphSource::Dataset(name.clone())
        }
        (None, Some(path)) => GraphSource::Path(path.clone()),
        _ => return Err("exactly one of dataset= or path= required".into()),
    };
    let algo = args.algo.clone().unwrap_or_else(|| "ours".to_string());
    kplex_core::AlgoConfig::by_name(&algo).ok_or_else(|| format!("unknown algo {algo:?}"))?;
    Ok(JobSpec {
        source,
        params,
        threads: args.threads.unwrap_or(default_threads).clamp(1, 128),
        algo,
        limit: args.limit.unwrap_or(1_000_000).max(1),
        timeout: args
            .timeout_ms
            .filter(|&t| t > 0)
            .map(Duration::from_millis),
        throttle: Duration::from_micros(args.throttle_us.unwrap_or(0)),
        tau: Some(Duration::from_micros(args.tau_us.unwrap_or(100))),
        store,
    })
}

// --- job execution ----------------------------------------------------------

fn runner_loop(state: &Arc<SharedState>) {
    loop {
        let id = {
            let mut queue = state.queue.lock();
            loop {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = queue.deque.pop_front() {
                    break id;
                }
                let (q, _timed_out) = state.queue_cond.wait_timeout(queue, WAIT_TICK);
                queue = q;
            }
        };
        if let Some(job) = state.job(id) {
            execute(state, &job);
        }
    }
}

/// Per-worker engine sink: paces reports (the ops throttle knob) and feeds
/// the job's streaming channel.
struct JobSink {
    inner: ChannelSink,
    throttle: Duration,
}

impl PlexSink for JobSink {
    fn report(&mut self, vertices: &[u32]) -> SinkFlow {
        if !self.throttle.is_zero() {
            std::thread::sleep(self.throttle);
        }
        self.inner.report(vertices)
    }
}

fn load_graph(source: &GraphSource) -> Result<kplex_graph::CsrGraph, String> {
    match source {
        GraphSource::Dataset(name) => kplex_datasets::by_name(name)
            .map(|d| d.load())
            .ok_or_else(|| format!("unknown dataset {name:?}")),
        GraphSource::Path(path) => io::read_edge_list(path)
            .map(|(g, _)| g)
            .map_err(|e| format!("loading {path:?}: {e}")),
    }
}

/// Resolves the `.kpx` file backing an `mmap` job: datasets convert into
/// the data cache once ([`kplex_datasets::Dataset::ensure_kpx`]); a path
/// already ending in `.kpx` opens as-is; any other path converts to a
/// sibling `<path>.kpx`, refreshed whenever the source file is newer.
fn kpx_path_for(source: &GraphSource) -> Result<std::path::PathBuf, String> {
    match source {
        GraphSource::Dataset(name) => kplex_datasets::by_name(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?
            .ensure_kpx()
            .map_err(|e| format!("converting dataset {name:?} to .kpx: {e}")),
        GraphSource::Path(path) => {
            let src = std::path::Path::new(path);
            if src.extension().is_some_and(|e| e == "kpx") {
                return Ok(src.to_path_buf());
            }
            let out = std::path::PathBuf::from(format!("{path}.kpx"));
            let fresh = match (std::fs::metadata(&out), std::fs::metadata(src)) {
                (Ok(o), Ok(s)) => match (o.modified(), s.modified()) {
                    (Ok(om), Ok(sm)) => om >= sm,
                    _ => false,
                },
                _ => false,
            };
            if !fresh {
                let (g, _) =
                    io::read_edge_list(src).map_err(|e| format!("loading {path:?}: {e}"))?;
                kplex_graph::write_kpx(&g, &out)
                    .map_err(|e| format!("converting {path:?} to .kpx: {e}"))?;
            }
            Ok(out)
        }
    }
}

/// Loads `source` as the requested backend and runs [`prepare`] on it.
/// `prepare` keeps the reduced working set resident in the backend the
/// input's [`kplex_graph::StoreKind::resident`] rule selects, so an `mmap`
/// job never materialises the full graph uncompressed in RAM.
fn build_prepared(
    source: &GraphSource,
    kind: kplex_graph::StoreKind,
    params: Params,
) -> Result<kplex_core::Prepared, String> {
    use kplex_graph::{CompressedStore, StoreBackend, StoreKind};
    match kind {
        StoreKind::Csr => Ok(prepare(&load_graph(source)?, params)),
        StoreKind::Compressed => {
            let g = load_graph(source)?;
            Ok(prepare(&CompressedStore::from_graph(&g), params))
        }
        StoreKind::Mmap => {
            let path = kpx_path_for(source)?;
            let backend = StoreBackend::open_mmap(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            Ok(prepare(&backend, params))
        }
    }
}

/// Runs one popped job end to end. The journal's `START` record is written
/// here; the terminal `END` record is written by the job's terminal hook
/// (inside the transition itself, so it is on disk before any client can
/// observe the job terminal). Both are suppressed during shutdown (see
/// [`SharedState::journal_record`]) so interrupted jobs replay on restart
/// instead of being recorded as cancelled.
fn execute(state: &Arc<SharedState>, job: &Arc<Job>) {
    if !job.mark_running() {
        return; // cancelled while queued; the terminal hook journaled it
    }
    state.journal_record(|j| j.record_start(job.id));
    run_job(state, job);
}

fn run_job(state: &Arc<SharedState>, job: &Arc<Job>) {
    let spec = job.spec.clone();
    // The wall-clock deadline covers the whole running phase, including a
    // cold graph load/prepare (which may also wait on the cache's
    // single-flight lock) — not just the enumeration.
    let deadline = spec.timeout.map(|t| Instant::now() + t);
    let Some(cfg) = spec.config() else {
        job.fail(format!("unknown algo {:?}", spec.algo));
        return;
    };
    // Load + (q−k)-core reduce through the LRU, keyed by graph content and
    // the shrink threshold — a warm resubmit skips this phase entirely.
    // The build runs outside the cache's map lock (per-entry single-flight):
    // a slow cold load here blocks only jobs for the *same* key, while warm
    // jobs and `STATS` proceed.
    let shrink = spec.params.q - spec.params.k;
    // The storage backend is part of the cache identity: the same graph
    // held as CSR and as compressed rows are different resident objects.
    let key = format!("{}!{}", spec.source.cache_key(), spec.store.label());
    let hook = state.cold_load_hook.clone();
    let prep = state.cache.get_or_build(&key, shrink, || {
        if let Some(hook) = &hook {
            hook.0(&key);
        }
        build_prepared(&spec.source, spec.store, spec.params)
    });
    let prep = match prep {
        Ok((prep, fetched)) => {
            job.set_cache_hit(fetched.is_warm());
            prep
        }
        Err(e) => {
            job.fail(e);
            return;
        }
    };

    let stop = job.cancel.clone();
    // A deadline that expired during load/prepare pre-raises the flag: the
    // engine then skips construction and the job finishes `failed`.
    if deadline.is_some_and(|dl| Instant::now() > dl) {
        job.note_stop_cause(StopCause::Deadline);
        stop.store(true, Ordering::Release);
    }
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u32>>();
    // The drainer pumps the channel into the job buffer and enforces the
    // result cap and the wall-clock deadline by raising the stop flag.
    let drainer = {
        let job = job.clone();
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            if let Some(dl) = deadline {
                if Instant::now() > dl && !stop.load(Ordering::Acquire) {
                    job.note_stop_cause(StopCause::Deadline);
                    stop.store(true, Ordering::Release);
                }
            }
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(plex) => {
                    if job.append_result(plex) >= job.spec.limit && !stop.load(Ordering::Acquire) {
                        job.note_stop_cause(StopCause::Cap);
                        stop.store(true, Ordering::Release);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        })
    };

    let mut opts = EngineOptions::with_threads(spec.threads);
    opts.timeout = spec.tau;
    opts.stop_flag = Some(stop.clone());
    // `mpsc::Sender` is `Sync` (channels are lock-free internally), so the
    // per-worker sink factory clones it directly from the shared reference.
    let (sinks, stats) = run_parallel_prepared(&prep, spec.params, &cfg, &opts, || JobSink {
        inner: ChannelSink::new(tx.clone(), stop.clone()),
        throttle: spec.throttle,
    });
    // Every sender must die — the factory's and each worker sink's clone —
    // before the channel disconnects and the drainer exits.
    drop(sinks);
    drop(tx);
    let _ = drainer.join();
    job.finish(stats);
}
