//! The `kplexd` server: accept loop, bounded job queue, runner pool.
//!
//! Thread layout (no async runtime — the offline build has std only):
//!
//! * the **accept loop** spawns one handler thread per client connection;
//! * handlers parse line requests; `SUBMIT` pushes onto a **bounded queue**
//!   (full queue → immediate `ERR`, the back-pressure signal);
//! * a fixed pool of **runner** threads pops jobs and executes them on the
//!   parallel engine ([`kplex_parallel::run_parallel_prepared`]), each with
//!   its own per-job thread count;
//! * per running job, one **drainer** thread pumps the engine's channel
//!   sink into the job's result buffer, enforcing the result cap and the
//!   wall-clock deadline by raising the job's stop flag.
//!
//! Cancellation (`CANCEL`, cap, deadline) is cooperative end to end: one
//! `Arc<AtomicBool>` per job is observed by the engine's workers inside the
//! branch recursion, so a cancelled job's workers stop mid-task while other
//! jobs keep running undisturbed.
//!
//! ## Tenancy
//!
//! With [`ServerConfig::principals`] set the server is **multi-tenant**:
//! clients must `AUTH <token>` before any other verb, submissions are
//! attributed to the authenticated principal, per-tenant quotas
//! (max-queued, max-running) are enforced at admission and dispatch, and
//! the admission queue becomes per-tenant lanes drained by deficit-weighted
//! round-robin (see `JobQueue`) — a flooding tenant keeps its throughput
//! share but can never starve another tenant's submit. `STATUS` / `STREAM`
//! / `CANCEL` / `LIST` are scoped to the owning principal (admin sees all),
//! and every reply line is scrubbed of registered tokens
//! ([`protocol::redact_secrets`]). Without `--principals` none of this
//! exists: one anonymous FIFO lane, no `AUTH`, byte-for-byte the previous
//! behavior.

use crate::cache::{CacheStats, GraphCache};
use crate::job::{GraphSource, Job, JobSpec, StopCause, StreamStep};
use crate::journal::Journal;
use crate::protocol::{self, JobId, Request, SubmitArgs};
use crate::sync::{OrderedCondvar, OrderedMutex, Rank};
use crate::LoadHook;
use kplex_core::{prepare, ChannelSink, Params, PlexSink, SinkFlow};
use kplex_graph::io;
use kplex_parallel::{run_parallel_prepared, EngineOptions, SchedMetrics};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long blocking waits (queue pop, stream follow) sleep between
/// shutdown-flag checks.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// Default for [`ServerConfig::retain_terminal`]: terminal jobs retained
/// for `STATUS`/`STREAM` replay. Beyond this, the oldest finished jobs —
/// and their result buffers — are evicted at submission time, so a
/// long-lived server's memory is bounded by live jobs + this backlog, not
/// by its lifetime. Retention is also the resume window: `STREAM <id>
/// FROM <seq>` of a terminal job works until the job is evicted, after
/// which a resuming client gets `ERR no such job`.
const RETAIN_TERMINAL_JOBS: usize = 64;

/// Default for [`ServerConfig::delivery_batch`]: streamed results per
/// journaled `DELIVERED` offset record. The floor is also flushed whenever
/// a stream goes idle (caught up with the producer), so a live follower's
/// floor tracks closely; the batch bounds the fsync rate on the
/// catch-up/burst path.
const DELIVERY_BATCH: usize = 4096;

/// Server construction knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7711` (port 0 for ephemeral).
    pub addr: String,
    /// Concurrent jobs (runner threads).
    pub runners: usize,
    /// Bounded queue capacity; a full queue rejects `SUBMIT`.
    pub queue_cap: usize,
    /// Prepared-graph LRU capacity.
    pub cache_cap: usize,
    /// Default per-job engine threads when `SUBMIT` omits `threads=`.
    pub default_threads: usize,
    /// Default graph storage backend when `SUBMIT` omits `store=`
    /// (`kplexd --store`): how prepared graphs are held in the cache.
    pub default_store: kplex_graph::StoreKind,
    /// Terminal jobs retained for `STATUS`/`STREAM` replay before eviction.
    pub retain_terminal: usize,
    /// Append-only job journal path (`kplexd --journal`). When set, every
    /// accepted job is fsync'd to this file before its `SUBMIT` is
    /// acknowledged, and a restarted server replays queued and
    /// orphaned-running jobs back into the queue (see [`crate::journal`]
    /// for the recovery semantics). `None` disables persistence.
    pub journal: Option<std::path::PathBuf>,
    /// Streamed results between journaled `DELIVERED` offset records
    /// (`kplexd --delivery-batch`). Smaller = tighter exactly-once window
    /// across a crash, more fsyncs; the offset is never journaled per
    /// result. Ignored without a journal.
    pub delivery_batch: usize,
    /// Principal store (`kplexd --principals`): enables tenancy — `AUTH`,
    /// per-tenant quotas, fair-share lanes, scoped verbs, token redaction.
    /// `None` preserves the anonymous single-queue behavior exactly.
    pub principals: Option<crate::auth::PrincipalStore>,
    /// Test-only: called with the cache key at the start of every cold
    /// load, *outside* the cache's map lock. Tests install a hook that
    /// blocks on a channel to hold a cold load open deterministically (no
    /// sleeps) while asserting warm jobs and `STATS` still complete.
    pub cold_load_hook: Option<LoadHook>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("runners", &self.runners)
            .field("queue_cap", &self.queue_cap)
            .field("cache_cap", &self.cache_cap)
            .field("default_threads", &self.default_threads)
            .field("default_store", &self.default_store)
            .field("retain_terminal", &self.retain_terminal)
            .field("journal", &self.journal)
            .field("delivery_batch", &self.delivery_batch)
            .field("principals", &self.principals.as_ref().map(|s| s.len()))
            .field("cold_load_hook", &self.cold_load_hook.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        Self {
            addr: "127.0.0.1:7711".to_string(),
            runners: 2,
            queue_cap: 64,
            cache_cap: 4,
            default_threads: hw.clamp(1, 8),
            default_store: kplex_graph::StoreKind::Csr,
            retain_terminal: RETAIN_TERMINAL_JOBS,
            journal: None,
            delivery_batch: DELIVERY_BATCH,
            principals: None,
            cold_load_hook: None,
        }
    }
}

/// One tenant's sub-queue inside the fair-share admission queue.
struct TenantLane {
    /// Queued job ids, FIFO within the lane.
    deque: VecDeque<JobId>,
    /// Remaining dispatches in this lane's current scheduler turn. Refilled
    /// to `weight` when the lane's turn starts; the lane rotates to the
    /// back of the order when it hits 0.
    deficit: u64,
    /// Fair-share weight (dispatches per rotation), from the principal
    /// store; 1 for the anonymous lane.
    weight: u64,
    /// Max concurrently running jobs (0 = unlimited): a lane at its limit
    /// is skipped by the scheduler until a job finishes.
    max_running: usize,
    /// Jobs of this lane currently held by runners.
    running: usize,
    /// Slots held by submissions whose journal fsync is in flight (the
    /// fsync runs outside the queue lock); counted against both the global
    /// capacity and the lane's max-queued quota so neither can be
    /// oversubscribed while the lock is released.
    reserved: usize,
}

/// The admission queue: per-tenant lanes drained by **deficit-weighted
/// round-robin**, one mutex-protected unit (including the reservation
/// counts — see [`TenantLane::reserved`]).
///
/// Lanes are keyed by principal name; the anonymous lane (servers without
/// `--principals`, and pre-tenancy journal replays) is keyed `""` — not a
/// legal principal name, so it can never collide. With a single lane of
/// weight 1 the scheduler degenerates to exactly the previous FIFO.
///
/// Anti-starvation: a lane with queued work is visited once per rotation
/// and a lane's turn spends at most `weight` dispatches, so a job at the
/// head of its lane starts within `Σ other lanes' weights` dispatches of
/// its lane's turn — however deep any other lane's backlog is. The
/// fairness integration test pins this bound.
#[derive(Default)]
struct JobQueue {
    /// Lane per tenant, created on first use and kept for the server's
    /// lifetime (bounded by the principal count + 1).
    lanes: BTreeMap<String, TenantLane>,
    /// Round-robin rotation order of lane keys. The lane whose turn is in
    /// progress sits at the front.
    order: VecDeque<String>,
}

impl JobQueue {
    /// The lane for `key`, created with the given scheduling parameters if
    /// absent (parameters of an existing lane are left untouched).
    fn lane_mut(&mut self, key: &str, weight: u64, max_running: usize) -> &mut TenantLane {
        if !self.lanes.contains_key(key) {
            self.order.push_back(key.to_string());
        }
        self.lanes
            .entry(key.to_string())
            .or_insert_with(|| TenantLane {
                deque: VecDeque::new(),
                deficit: 0,
                weight: weight.max(1),
                max_running,
                running: 0,
                reserved: 0,
            })
    }

    /// Total queued jobs across all lanes (`STATS queue-depth=`).
    fn depth(&self) -> usize {
        self.lanes.values().map(|l| l.deque.len()).sum()
    }

    /// Total in-flight reservations across all lanes.
    fn reserved_total(&self) -> usize {
        self.lanes.values().map(|l| l.reserved).sum()
    }

    /// Removes a queued job wherever it sits (the `CANCEL` path: a dead job
    /// must not hold queue capacity until a runner pops it).
    fn remove_queued(&mut self, id: JobId) {
        for lane in self.lanes.values_mut() {
            lane.deque.retain(|&qid| qid != id);
        }
    }

    /// Pops the next job to run under deficit-weighted round-robin, or
    /// `None` when every lane is empty or blocked at its max-running limit.
    /// The caller owns the returned lane's running slot and must release it
    /// (decrement `running`, then notify) when the job leaves the runner.
    fn pop_next(&mut self) -> Option<(JobId, String)> {
        // One full rotation suffices: with unit job cost a refilled deficit
        // (weight >= 1) always covers a dispatch, so any lane that is
        // non-empty and under its running limit dispatches when visited.
        for _ in 0..self.order.len() {
            let Some(key) = self.order.pop_front() else {
                break;
            };
            let Some(lane) = self.lanes.get_mut(&key) else {
                continue;
            };
            if lane.max_running != 0 && lane.running >= lane.max_running {
                // At quota: skip without spending deficit; a finishing job
                // notifies the condvar so this lane is revisited.
                self.order.push_back(key);
                continue;
            }
            let Some(&id) = lane.deque.front() else {
                // Empty lane forfeits its turn — deficits must not be
                // hoarded while idle, or a returning flood would burst.
                lane.deficit = 0;
                self.order.push_back(key);
                continue;
            };
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            lane.deficit -= 1;
            lane.deque.pop_front();
            lane.running += 1;
            if lane.deficit == 0 {
                self.order.push_back(key.clone());
            } else {
                // Turn still in progress: stay at the front for the next pop.
                self.order.push_front(key.clone());
            }
            return Some((id, key));
        }
        None
    }

    /// Returns a lane's running slot after its job left the runner.
    fn release_running(&mut self, key: &str) {
        if let Some(lane) = self.lanes.get_mut(key) {
            lane.running = lane.running.saturating_sub(1);
        }
    }
}

struct SharedState {
    jobs: OrderedMutex<BTreeMap<JobId, Arc<Job>>>,
    next_id: AtomicU64,
    queue: OrderedMutex<JobQueue>,
    queue_cond: OrderedCondvar,
    queue_cap: usize,
    cache: GraphCache,
    shutdown: AtomicBool,
    default_threads: usize,
    default_store: kplex_graph::StoreKind,
    retain_terminal: usize,
    /// Streamed results per journaled `DELIVERED` record (see
    /// [`ServerConfig::delivery_batch`]).
    delivery_batch: usize,
    /// Crash-recovery journal; `None` when the server is ephemeral.
    journal: Option<Journal>,
    /// Jobs replayed from the journal at startup (`STATS recovered=`).
    recovered: usize,
    /// Live client connections, keyed by an accept-order id. Each handler
    /// thread removes its own entry on exit, so the map tracks only open
    /// connections. Exists so [`ServerHandle::kill`] can sever them
    /// abruptly (crash simulation); the graceful shutdown ignores it.
    conns: OrderedMutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Principal store; `None` = tenancy disabled (anonymous server).
    principals: Option<crate::auth::PrincipalStore>,
    /// Every registered token — scrubbed from every reply line
    /// ([`protocol::redact_secrets`]). Empty when tenancy is disabled.
    secrets: Vec<String>,
    /// Cumulative result bytes per principal name (the anonymous key is
    /// `""`). Atomics with a key set **fixed at bind** (principals file ∪
    /// journal replay ∪ anonymous), because the job-terminal hook that
    /// updates them runs under the `JobProgress` lock — below the rank of
    /// the jobs/queue mutexes, which therefore must not be taken there.
    tenant_bytes: BTreeMap<String, AtomicU64>,
    cold_load_hook: Option<LoadHook>,
    /// Scheduler counters aggregated across every job this server has
    /// run (`STATS sched-*=`). One shared instance: the engine's workers
    /// bump it with relaxed atomics, so cross-job sharing costs nothing.
    sched_metrics: Arc<SchedMetrics>,
}

impl SharedState {
    /// Appends a journal record unless the server is shutting down. A
    /// shutdown is deliberately crash-equivalent for the journal: nothing
    /// written after it begins, so jobs interrupted by it (queued or
    /// running) replay on the next start instead of being recorded as
    /// cancelled. Append failures on a live server are logged, not fatal —
    /// the job still runs; only its restart durability degrades.
    fn journal_record(&self, write: impl FnOnce(&Journal) -> std::io::Result<()>) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(journal) = &self.journal {
            if let Err(e) = write(journal) {
                eprintln!("kplexd: journal append failed: {e}");
            }
        }
    }
}

/// One connection's authentication state: which principal (if any) has
/// presented a valid token on this connection.
#[derive(Clone, Debug, Default)]
struct ConnAuth {
    /// `None` before a successful `AUTH` — and always, on a server without
    /// a principal store (where nothing is gated on it).
    principal: Option<crate::auth::Principal>,
}

impl ConnAuth {
    /// May this connection observe a job owned by `owner`? Only meaningful
    /// after the auth gate: on a tenancy-enabled server an unauthenticated
    /// connection never reaches a job-reading verb.
    fn may_see(&self, owner: Option<&str>) -> bool {
        match &self.principal {
            None => true, // tenancy disabled: every job is visible
            Some(p) => p.admin || owner == Some(p.name.as_str()),
        }
    }
}

impl SharedState {
    /// Principal-scoped job lookup — the only jobs-map read path handlers
    /// may use (enforced by the `tenant-scoped` lint rule). A job outside
    /// the caller's scope is indistinguishable from a missing one, so
    /// cross-tenant probes cannot enumerate ids.
    fn job_for(&self, id: JobId, auth: &ConnAuth) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .get(&id)
            .filter(|job| auth.may_see(job.spec.principal.as_deref()))
            .cloned()
    }

    /// Principal-scoped job listing (see [`SharedState::job_for`]).
    fn jobs_for(&self, auth: &ConnAuth) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .values()
            .filter(|job| auth.may_see(job.spec.principal.as_deref()))
            .cloned()
            .collect()
    }

    /// Unscoped lookup for the runner pool, which dispatches every
    /// tenant's jobs and is not a client handler.
    fn job_unscoped(&self, id: JobId) -> Option<Arc<Job>> {
        // tenant: runner-internal dispatch path, not reachable from a
        // client verb — handlers must go through job_for/jobs_for.
        self.jobs.lock().get(&id).cloned()
    }
}

/// The deficit-round-robin parameters for a lane key: the principal's
/// weight and max-running quota, or `(1, unlimited)` for the anonymous
/// lane and for principals no longer in the store (a journal can outlive a
/// provisioning change).
fn lane_params(store: &Option<crate::auth::PrincipalStore>, key: &str) -> (u64, usize) {
    store
        .as_ref()
        .and_then(|s| s.by_name(key))
        .map(|p| (p.weight, p.max_running))
        .unwrap_or((1, 0))
}

/// The terminal hook installed on every job: writes the journal `END`
/// record the instant the job's terminal transition is performed — under
/// the job's lock, *before* any `STATUS`/`STREAM` reader can observe it.
/// Write-ahead matters: once a client has seen a job terminal (and
/// consumed its results), a restart must not resurrect it. It then folds
/// the job's accounted result bytes into the owning tenant's cumulative
/// counter and journals the new total (`TENANT` record, named principals
/// only — an anonymous server's journal stays byte-identical to before
/// tenancy existed). The hook runs under the `JobProgress` lock, so it may
/// only touch atomics and journal-ranked locks — see the field doc on
/// `SharedState::tenant_bytes`. The state handle is weak so the jobs map
/// and the state do not form an `Arc` cycle.
fn terminal_journal_hook(
    state: std::sync::Weak<SharedState>,
    principal: Option<String>,
) -> crate::job::TerminalHook {
    Arc::new(move |id, label, bytes| {
        if let Some(state) = state.upgrade() {
            state.journal_record(|j| j.record_end(id, label));
            if bytes == 0 {
                return;
            }
            let key = principal.as_deref().unwrap_or("");
            let Some(counter) = state.tenant_bytes.get(key) else {
                return;
            };
            // ordering: AcqRel/Acquire publish the advanced total before the
            // journal write below reads it; the counter is a monotone
            // statistic with no other data hanging off it.
            let prev = match counter.fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                Some(crate::auth::add_bytes(t, bytes))
            }) {
                Ok(prev) | Err(prev) => prev,
            };
            let total = crate::auth::add_bytes(prev, bytes);
            if let Some(name) = &principal {
                // Coalesced in the journal: racing terminals can only
                // advance the on-disk total (max wins on replay anyway).
                state.journal_record(|j| j.record_tenant(name, total));
            }
        }
    })
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
    runners: usize,
}

/// Handle to a server whose accept loop runs in a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<SharedState>,
    accept: Option<std::thread::JoinHandle<()>>,
    runners: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and prepares the shared state. With
    /// [`ServerConfig::journal`] set, this replays the journal first:
    /// queued and orphaned-running jobs from the previous lifetime re-enter
    /// the queue under their original ids (flagged `recovered=true` in
    /// `STATUS`), the id counter resumes past every id ever issued, and a
    /// corrupt journal fails the bind loudly.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let default_threads = cfg.default_threads.max(1);
        let default_store = cfg.default_store;
        let (journal, replayed) = match &cfg.journal {
            Some(path) => {
                let (journal, replay) = Journal::open(path)?;
                (Some(journal), Some(replay))
            }
            None => (None, None),
        };
        let next_id = replayed.as_ref().map_or(1, |r| r.next_id);
        let principals = cfg.principals.clone();
        let secrets = principals.as_ref().map(|s| s.tokens()).unwrap_or_default();
        // Per-tenant byte counters: the key set is fixed here — principals
        // file ∪ journaled totals ∪ the anonymous key — because the
        // terminal hook that updates them may not allocate map entries
        // under its lock rank. Journaled totals seed the counters, so
        // cumulative accounting survives restarts.
        let mut tenant_bytes: BTreeMap<String, AtomicU64> = BTreeMap::new();
        tenant_bytes.insert(String::new(), AtomicU64::new(0));
        if let Some(store) = &principals {
            for p in store.principals() {
                tenant_bytes.entry(p.name.clone()).or_default();
            }
        }
        for (name, &bytes) in replayed.iter().flat_map(|r| &r.tenant_bytes) {
            tenant_bytes.insert(name.clone(), AtomicU64::new(bytes));
        }
        // `new_cyclic`: replayed jobs need the terminal hook, and the hook
        // needs a (weak — jobs must not keep the state alive in a cycle)
        // handle to the state being built.
        let state = Arc::new_cyclic(|weak: &std::sync::Weak<SharedState>| {
            let mut jobs = BTreeMap::new();
            let mut queue = JobQueue::default();
            for recovered in replayed.into_iter().flat_map(|r| r.jobs) {
                // Re-validate against *this* lifetime's registry: a journal
                // may outlive a dataset or an algorithm preset. An invalid
                // replayed job is failed in the journal (not resurrected
                // forever), not silently dropped.
                match validate(default_threads, default_store, &recovered.args) {
                    Ok(spec) => {
                        // The journaled delivery floor travels with the job:
                        // a client consumed results below it in the previous
                        // lifetime, so streams of the replayed job skip them.
                        // The journaled principal tag travels with it too —
                        // back into its owner's fair-share lane and byte
                        // accounting.
                        let principal = spec.principal.clone();
                        let job = Job::new_recovered(recovered.id, spec)
                            .with_delivered_floor(recovered.delivered)
                            .with_terminal_hook(terminal_journal_hook(
                                weak.clone(),
                                principal.clone(),
                            ));
                        jobs.insert(recovered.id, Arc::new(job));
                        let key = principal.unwrap_or_default();
                        let (weight, max_running) = lane_params(&principals, &key);
                        queue
                            .lane_mut(&key, weight, max_running)
                            .deque
                            .push_back(recovered.id);
                    }
                    Err(reason) => {
                        eprintln!(
                            "kplexd: journal replay: job {} no longer valid ({reason}), failing it",
                            recovered.id
                        );
                        if let Some(journal) = &journal {
                            let _ = journal.record_end(recovered.id, "failed");
                        }
                    }
                }
            }
            let recovered = queue.depth();
            SharedState {
                jobs: OrderedMutex::new(Rank::ServerJobs, "server-jobs", jobs),
                next_id: AtomicU64::new(next_id),
                queue: OrderedMutex::new(Rank::ServerQueue, "server-queue", queue),
                queue_cond: OrderedCondvar::new(),
                queue_cap: cfg.queue_cap.max(1),
                cache: GraphCache::new(cfg.cache_cap),
                shutdown: AtomicBool::new(false),
                default_threads,
                default_store,
                retain_terminal: cfg.retain_terminal,
                delivery_batch: cfg.delivery_batch.max(1),
                journal,
                recovered,
                conns: OrderedMutex::new(Rank::ServerConns, "server-conns", BTreeMap::new()),
                next_conn: AtomicU64::new(0),
                principals,
                secrets,
                tenant_bytes,
                cold_load_hook: cfg.cold_load_hook.clone(),
                sched_metrics: Arc::new(SchedMetrics::default()),
            }
        });
        Ok(Server {
            listener,
            runners: cfg.runners.max(1),
            state,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn spawn_runners(&self) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.runners)
            .map(|_| {
                let state = self.state.clone();
                std::thread::spawn(move || runner_loop(&state))
            })
            .collect()
    }

    /// Runs the accept loop on the current thread (the `kplexd` entry),
    /// with the runner pool sized by [`ServerConfig::runners`].
    pub fn run(self) -> std::io::Result<()> {
        let _runners = self.spawn_runners();
        accept_loop(&self.listener, &self.state);
        Ok(())
    }

    /// Runs the accept loop in a background thread and returns a handle
    /// (used by tests and the CLI smoke).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let runner_handles = self.spawn_runners();
        let state = self.state.clone();
        let listener = self.listener;
        let accept_state = state.clone();
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
            runners: runner_handles,
        })
    }
}

impl ServerHandle {
    /// Where clients connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels every live job, and joins the accept loop
    /// and runner pool. Connection handler threads are detached; they exit
    /// as their clients disconnect or their streams observe the shutdown.
    pub fn shutdown(self) {
        self.teardown(false);
    }

    /// Crash-equivalent teardown for tests and smoke suites: severs every
    /// open client connection mid-line — in-flight streams break with a
    /// transport error on the peer, with no graceful `ERR`/`END` — then
    /// stops like [`ServerHandle::shutdown`]. Journal-wise the two are
    /// already identical (nothing is written once shutdown begins), so the
    /// only observable difference is how abruptly clients are cut off:
    /// exactly what failover and resume paths need to exercise.
    pub fn kill(self) {
        self.teardown(true);
    }

    fn teardown(mut self, sever: bool) {
        self.state.shutdown.store(true, Ordering::Release);
        if sever {
            let conns = self.state.conns.lock();
            for conn in conns.values() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        // Cancel live jobs so runners and streamers unblock quickly.
        // tenant: teardown spans every tenant by design.
        let jobs: Vec<Arc<Job>> = self.state.jobs.lock().values().cloned().collect();
        for job in jobs {
            if !job.state().is_terminal() {
                job.request_cancel();
            }
        }
        self.state.queue_cond.notify_all();
        // Poke the accept loop out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<SharedState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Register the connection so `kill()` can sever it; the
                // handler thread deregisters itself on exit, keeping the
                // registry bounded by *open* connections.
                // ordering: connection ids only need uniqueness, nothing
                // else is published through this counter.
                let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    state.conns.lock().insert(conn_id, clone);
                }
                let state = state.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &state);
                    state.conns.lock().remove(&conn_id);
                });
            }
            Err(_) if state.shutdown.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

// --- connection handling ----------------------------------------------------

fn write_line<W: Write>(stream: &mut W, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn handle_connection(stream: TcpStream, state: &Arc<SharedState>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut auth = ConnAuth::default();
    // Every reply line leaves through this chokepoint, scrubbed of every
    // registered token — the no-token-ever-echoed guarantee does not rely
    // on each handler remembering to redact. (Result NDJSON lines stream
    // through `stream_job`'s buffered fast path instead; they are vertex
    // id arrays and framing, with no client- or operator-supplied text.)
    let reply = |writer: &mut TcpStream, line: &str| -> std::io::Result<()> {
        if state.secrets.is_empty() {
            write_line(writer, line)
        } else {
            write_line(writer, &protocol::redact_secrets(line, &state.secrets))
        }
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match protocol::parse_request(&line) {
            Ok(req) => req,
            Err(e) => {
                reply(&mut writer, &format!("ERR {e}"))?;
                continue;
            }
        };
        // The auth gate: with tenancy enabled, every verb except
        // PING/QUIT/AUTH requires a successful AUTH on this connection.
        if state.principals.is_some()
            && auth.principal.is_none()
            && !matches!(req, Request::Ping | Request::Quit | Request::Auth(_))
        {
            reply(&mut writer, "ERR authentication required (AUTH <token>)")?;
            continue;
        }
        match req {
            Request::Quit => {
                reply(&mut writer, "OK bye")?;
                return Ok(());
            }
            Request::Ping => reply(&mut writer, "OK pong")?,
            Request::Auth(token) => {
                let resp = match &state.principals {
                    None => {
                        "ERR authentication disabled (start kplexd with --principals)".to_string()
                    }
                    Some(store) => match store.authenticate(&token) {
                        Some(p) => {
                            auth.principal = Some(p.clone());
                            format!(
                                "OK principal={} weight={} admin={}",
                                p.name, p.weight, p.admin
                            )
                        }
                        // Deliberately does not echo the presented token.
                        None => "ERR unknown token".to_string(),
                    },
                };
                reply(&mut writer, &resp)?;
            }
            Request::Submit(args) => {
                let resp = match submit(state, &args, &auth) {
                    Ok(id) => format!("OK id={id} state=queued"),
                    Err(e) => format!("ERR {e}"),
                };
                reply(&mut writer, &resp)?;
            }
            Request::Status(id) => {
                let resp = match state.job_for(id, &auth) {
                    Some(job) => status_line(&job, &state.secrets),
                    None => format!("ERR no such job {id}"),
                };
                reply(&mut writer, &resp)?;
            }
            Request::Cancel(id) => {
                let resp = match state.job_for(id, &auth) {
                    Some(job) => {
                        job.request_cancel();
                        // A job cancelled while queued must also free its
                        // bounded-queue slot, or dead jobs hold capacity
                        // against new submissions until a runner pops them.
                        state.queue.lock().remove_queued(id);
                        // A queued job dies inside `request_cancel`, which
                        // fires the terminal hook — the journal END record
                        // is already written by the time we reply.
                        let snap = job.snapshot();
                        format!("OK id={id} state={}", snap.state.label())
                    }
                    None => format!("ERR no such job {id}"),
                };
                reply(&mut writer, &resp)?;
            }
            Request::List => {
                let jobs = state.jobs_for(&auth);
                for job in &jobs {
                    let s = job.snapshot();
                    let mut line = format!(
                        "JOB id={} state={} source={} k={} q={} results={}",
                        s.id,
                        s.state.label(),
                        s.source,
                        s.params.k,
                        s.params.q,
                        s.results
                    );
                    if let Some(owner) = &job.spec.principal {
                        line.push_str(&format!(" principal={owner}"));
                    }
                    reply(&mut writer, &line)?;
                }
                reply(&mut writer, &format!("END count={}", jobs.len()))?;
            }
            Request::Stats => {
                let CacheStats {
                    hits,
                    coalesced,
                    misses,
                    entries,
                    pending,
                    waiting,
                } = state.cache.stats();
                // tenant: STATS is an aggregate view; it exposes counts and
                // principal *names* (public), never job details or tokens.
                let jobs = state.jobs.lock().len();
                let depth = state.queue.lock().depth();
                let recovered = state.recovered;
                // Per-backend cache residency: total bytes plus a
                // `label:entries:bytes` breakdown ("-" when the cache is
                // empty — the grammar rejects empty values).
                let agg = state.cache.store_stats();
                let graph_bytes: u64 = agg.iter().map(|&(_, _, b)| b).sum();
                let store = if agg.is_empty() {
                    "-".to_string()
                } else {
                    agg.iter()
                        .map(|&(l, c, b)| format!("{l}:{c}:{b}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                // Work-stealing engine counters, cumulative over every job
                // this server lifetime has run (they do not survive
                // restarts — unlike tenant bytes they are not journaled).
                let sm = &state.sched_metrics;
                let mut line = format!(
                    "OK jobs={jobs} queue-depth={depth} recovered={recovered} \
                     cache-hits={hits} cache-coalesced={coalesced} \
                     cache-misses={misses} cache-entries={entries} \
                     cache-pending={pending} cache-waiting={waiting} \
                     graph-bytes={graph_bytes} store={store} \
                     sched-steals={} sched-injector-steals={} \
                     sched-parks={} sched-unparks={}",
                    sm.steals(),
                    sm.injector_steals(),
                    sm.parks(),
                    sm.unparks()
                );
                // Tenant accounting block, present only with a principal
                // store (an anonymous server's STATS stays byte-identical).
                if let Some(store) = &state.principals {
                    line.push_str(&format!(" tenants={}", store.len()));
                    let queue = state.queue.lock();
                    for (i, p) in store.principals().iter().enumerate() {
                        let (queued, running) = queue
                            .lanes
                            .get(&p.name)
                            .map(|l| (l.deque.len() + l.reserved, l.running))
                            .unwrap_or((0, 0));
                        // ordering: the counter is a standalone monotone
                        // statistic; Acquire pairs with the hook's AcqRel.
                        let bytes = state
                            .tenant_bytes
                            .get(&p.name)
                            .map(|c| c.load(Ordering::Acquire))
                            .unwrap_or(0);
                        line.push_str(&format!(
                            " tenant{i}-name={} tenant{i}-queued={queued} \
                             tenant{i}-running={running} tenant{i}-bytes={bytes}",
                            p.name
                        ));
                    }
                }
                reply(&mut writer, &line)?;
            }
            Request::AddNode(_) | Request::DropNode(_) | Request::Nodes | Request::Rebalance => {
                reply(
                    &mut writer,
                    "ERR router-only verb (this is a kplexd backend, not a kplexr router)",
                )?;
            }
            Request::Stream(id, from) => match state.job_for(id, &auth) {
                Some(job) => stream_job(&mut writer, state, &job, from)?,
                None => reply(&mut writer, &format!("ERR no such job {id}"))?,
            },
        }
    }
    Ok(())
}

fn status_line(job: &Job, secrets: &[String]) -> String {
    let s = job.snapshot();
    let mut line = format!(
        "OK id={} state={} source={} k={} q={} results={} elapsed-ms={}",
        s.id,
        s.state.label(),
        s.source,
        s.params.k,
        s.params.q,
        s.results,
        s.elapsed_ms
    );
    match s.cache_hit {
        Some(true) => line.push_str(" cache=hit"),
        Some(false) => line.push_str(" cache=miss"),
        None => line.push_str(" cache=-"),
    }
    if s.recovered {
        line.push_str(" recovered=true");
    }
    if let Some(owner) = &job.spec.principal {
        line.push_str(&format!(" principal={owner}"));
    }
    if let Some(stats) = &s.stats {
        line.push_str(&format!(
            " branches={} outputs={}",
            stats.branch_calls, stats.outputs
        ));
    }
    if let Some(err) = &s.error {
        // Full sanitization, not just spaces: an io::Error message can
        // carry tabs or newlines, which would corrupt the line protocol —
        // and redaction, because an error can embed operator- or
        // client-supplied text (a path, say) that contains a token.
        line.push_str(&format!(
            " error={}",
            protocol::sanitize_value_redacted(err, secrets)
        ));
    }
    line
}

/// Streams buffered results (NDJSON) from `from` — raised to the job's
/// journaled delivery floor — and follows the job until it is terminal,
/// then writes the `END` line.
///
/// The `END` line reports the **actually-sent** high-water position
/// (`results=` is the next undelivered seq), not the job's buffered total:
/// if the two ever disagree — a short delivery, or a `FROM` past the end —
/// a `truncated=true total=<buffered>` marker surfaces the gap instead of
/// silently claiming completeness.
fn stream_job(
    writer: &mut TcpStream,
    state: &SharedState,
    job: &Arc<Job>,
    from: u64,
) -> std::io::Result<()> {
    // Result lines go through a buffer (one syscall per ~8 KiB instead of
    // two per plex — this is the 10^6-results path). The buffer is flushed
    // whenever the job has nothing new (Idle) and at the end, so a live
    // follower still sees results promptly.
    let mut out = std::io::BufWriter::new(writer);
    // `sent` is the next seq to deliver: it starts at the client's resume
    // point, never below the journaled floor (results under it were
    // consumed in a previous server lifetime — re-delivering them would
    // break exactly-once across the restart).
    let mut sent = from.max(job.delivered_floor) as usize;
    // Offset journaling is batched (every `delivery_batch` results) and
    // flushed at idle points — never one fsync per result.
    let mut journaled = sent;
    let note_delivered = |sent: usize, journaled: &mut usize| {
        if sent > *journaled {
            state.journal_record(|j| j.record_delivered(job.id, sent as u64));
            *journaled = sent;
        }
    };
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match job.next_results(sent, &mut buf, WAIT_TICK) {
            StreamStep::Items => {
                for plex in &buf {
                    write_line(
                        &mut out,
                        &protocol::render_plex_line(job.id, sent as u64, plex),
                    )?;
                    sent += 1;
                    if sent - journaled >= state.delivery_batch {
                        note_delivered(sent, &mut journaled);
                    }
                }
            }
            StreamStep::Ended(job_state, total) => {
                // No floor record here: the job is terminal, its journal
                // END is already on disk (write-ahead), and replay never
                // resurrects it — a floor would be dead weight.
                let mut end = format!(
                    "END id={} state={} results={sent}",
                    job.id,
                    job_state.label()
                );
                if let Some(owner) = &job.spec.principal {
                    // Tenant-tagged terminal frame, same as `STATUS`.
                    end.push_str(&format!(" principal={owner}"));
                }
                if sent as u64 != total {
                    end.push_str(&format!(" truncated=true total={total}"));
                }
                write_line(&mut out, &end)?;
                return out.flush();
            }
            StreamStep::Idle => {
                note_delivered(sent, &mut journaled);
                out.flush()?;
                if state.shutdown.load(Ordering::Acquire) {
                    return write_line(&mut out, "ERR server shutting down")
                        .and_then(|()| out.flush());
                }
            }
        }
    }
}

// --- submission -------------------------------------------------------------

/// Resolves the principal a submission runs **as**: the authenticated one,
/// unless an admin tags another principal's name (the router's proxy
/// path). Returns the effective principal, or `None` for the anonymous
/// server.
fn effective_principal(
    state: &SharedState,
    args: &SubmitArgs,
    auth: &ConnAuth,
) -> Result<Option<crate::auth::Principal>, String> {
    let Some(store) = &state.principals else {
        if args.principal.is_some() {
            return Err("principal= requires a server started with --principals".into());
        }
        return Ok(None);
    };
    let Some(me) = &auth.principal else {
        // Unreachable past the connection's auth gate; kept as defense.
        return Err("authentication required (AUTH <token>)".into());
    };
    match &args.principal {
        None => Ok(Some(me.clone())),
        Some(tag) if *tag == me.name => Ok(Some(me.clone())),
        Some(tag) => {
            if !me.admin {
                return Err(
                    "only an admin principal may submit on another principal's behalf".into(),
                );
            }
            store
                .by_name(tag)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("unknown principal {tag:?}"))
        }
    }
}

fn submit(state: &Arc<SharedState>, args: &SubmitArgs, auth: &ConnAuth) -> Result<JobId, String> {
    if state.shutdown.load(Ordering::Acquire) {
        // The runner pool is gone; accepting would queue the job forever.
        return Err("server shutting down".into());
    }
    let principal = effective_principal(state, args, auth)?;
    let mut spec = validate(state.default_threads, state.default_store, args)?;
    spec.principal = principal.as_ref().map(|p| p.name.clone());
    // What the journal must remember is the *effective* principal — an
    // untagged submit by an authenticated tenant replays into that
    // tenant's lane, not the anonymous one.
    let journal_args = {
        let mut a = args.clone();
        a.principal = spec.principal.clone();
        a
    };
    let lane_key = spec.principal.clone().unwrap_or_default();
    let (weight, max_running) = principal
        .as_ref()
        .map(|p| (p.weight, p.max_running))
        .unwrap_or((1, 0));
    let max_queued = principal.as_ref().map_or(0, |p| p.max_queued);
    // ordering: id allocation only needs uniqueness; publication of the job
    // itself happens under the queue/jobs locks in phase 2.
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let hook = terminal_journal_hook(Arc::downgrade(state), spec.principal.clone());
    let job = Arc::new(Job::new(id, spec).with_terminal_hook(hook));
    // Phase 1: reserve a queue slot, checking the global capacity *and*
    // the tenant's max-queued quota. Both checks count slots held by
    // submissions whose journal fsync is still in flight, so neither limit
    // can be oversubscribed while the lock is released below.
    {
        let mut queue = state.queue.lock();
        let waiting = queue.depth() + queue.reserved_total();
        if waiting >= state.queue_cap {
            return Err(format!("queue full ({waiting} jobs waiting), retry later"));
        }
        let lane = queue.lane_mut(&lane_key, weight, max_running);
        let lane_waiting = lane.deque.len() + lane.reserved;
        if max_queued != 0 && lane_waiting >= max_queued {
            return Err(format!(
                "quota exceeded: principal {lane_key} has {lane_waiting} jobs \
                 queued (max-queued={max_queued})"
            ));
        }
        lane.reserved += 1;
    }
    // Journal-before-ack, with the fsync OUTSIDE the queue lock —
    // submissions must not serialize runner pops behind disk latency. A
    // journal failure rejects the submission (the job would not survive a
    // restart); a crash right after the fsync replays a job no client was
    // ever promised — the at-least-once side of the contract. Ordering per
    // id still holds: the job is invisible to runners until phase 2.
    let journaled = match &state.journal {
        Some(journal) => journal
            .record_submit(id, &journal_args)
            .map_err(|e| format!("journal write failed: {e}")),
        None => Ok(()),
    };
    // Phase 2: publish (always releasing the reservation first).
    {
        let mut queue = state.queue.lock();
        queue.lane_mut(&lane_key, weight, max_running).reserved -= 1;
        journaled?;
        {
            // tenant: terminal-job eviction walks every tenant's jobs —
            // retention is a global memory bound, not a per-tenant view.
            let mut jobs = state.jobs.lock();
            jobs.insert(id, job);
            // Evict the oldest terminal jobs beyond the retention backlog
            // (BTreeMap iterates in id = submission order).
            let stale: Vec<JobId> = jobs
                .iter()
                .filter(|(_, j)| j.state().is_terminal())
                .map(|(&jid, _)| jid)
                .collect();
            if stale.len() > state.retain_terminal {
                for jid in &stale[..stale.len() - state.retain_terminal] {
                    jobs.remove(jid);
                }
            }
        }
        queue
            .lane_mut(&lane_key, weight, max_running)
            .deque
            .push_back(id);
    }
    state.queue_cond.notify_one();
    Ok(id)
}

fn validate(
    default_threads: usize,
    default_store: kplex_graph::StoreKind,
    args: &SubmitArgs,
) -> Result<JobSpec, String> {
    let params = Params::new(args.k, args.q).map_err(|e| e.to_string())?;
    let store = match &args.store {
        None => default_store,
        Some(s) => kplex_graph::StoreKind::parse(s)
            .ok_or_else(|| format!("unknown store {s:?} (expected csr, compressed or mmap)"))?,
    };
    let source = match (&args.dataset, &args.path) {
        (Some(name), None) => {
            kplex_datasets::by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
            GraphSource::Dataset(name.clone())
        }
        (None, Some(path)) => GraphSource::Path(path.clone()),
        _ => return Err("exactly one of dataset= or path= required".into()),
    };
    let algo = args.algo.clone().unwrap_or_else(|| "ours".to_string());
    kplex_core::AlgoConfig::by_name(&algo).ok_or_else(|| format!("unknown algo {algo:?}"))?;
    Ok(JobSpec {
        source,
        params,
        threads: args.threads.unwrap_or(default_threads).clamp(1, 128),
        algo,
        limit: args.limit.unwrap_or(1_000_000).max(1),
        timeout: args
            .timeout_ms
            .filter(|&t| t > 0)
            .map(Duration::from_millis),
        throttle: Duration::from_micros(args.throttle_us.unwrap_or(0)),
        tau: Some(Duration::from_micros(args.tau_us.unwrap_or(100))),
        store,
        // The tag as submitted (journal replay path); the live submit path
        // overwrites this with the connection's effective principal.
        principal: args.principal.clone(),
    })
}

// --- job execution ----------------------------------------------------------

fn runner_loop(state: &Arc<SharedState>) {
    loop {
        let (id, lane_key) = {
            let mut queue = state.queue.lock();
            loop {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Deficit-round-robin pop; `None` also covers the
                // jobs-queued-but-every-lane-at-max-running case, where
                // this runner waits for a finishing job's notify.
                if let Some(popped) = queue.pop_next() {
                    break popped;
                }
                let (q, _timed_out) = state.queue_cond.wait_timeout(queue, WAIT_TICK);
                queue = q;
            }
        };
        if let Some(job) = state.job_unscoped(id) {
            execute(state, &job);
        }
        // Release the lane's running slot and wake every waiter: a lane
        // blocked at its max-running quota may just have become eligible,
        // and which runner sleeps on the condvar is arbitrary.
        state.queue.lock().release_running(&lane_key);
        state.queue_cond.notify_all();
    }
}

/// Per-worker engine sink: paces reports (the ops throttle knob) and feeds
/// the job's streaming channel.
struct JobSink {
    inner: ChannelSink,
    throttle: Duration,
}

impl PlexSink for JobSink {
    fn report(&mut self, vertices: &[u32]) -> SinkFlow {
        if !self.throttle.is_zero() {
            std::thread::sleep(self.throttle);
        }
        self.inner.report(vertices)
    }
}

fn load_graph(source: &GraphSource) -> Result<kplex_graph::CsrGraph, String> {
    match source {
        GraphSource::Dataset(name) => kplex_datasets::by_name(name)
            .map(|d| d.load())
            .ok_or_else(|| format!("unknown dataset {name:?}")),
        GraphSource::Path(path) => io::read_edge_list(path)
            .map(|(g, _)| g)
            .map_err(|e| format!("loading {path:?}: {e}")),
    }
}

/// Resolves the `.kpx` file backing an `mmap` job: datasets convert into
/// the data cache once ([`kplex_datasets::Dataset::ensure_kpx`]); a path
/// already ending in `.kpx` opens as-is; any other path converts to a
/// sibling `<path>.kpx`, refreshed whenever the source file is newer.
fn kpx_path_for(source: &GraphSource) -> Result<std::path::PathBuf, String> {
    match source {
        GraphSource::Dataset(name) => kplex_datasets::by_name(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?
            .ensure_kpx()
            .map_err(|e| format!("converting dataset {name:?} to .kpx: {e}")),
        GraphSource::Path(path) => {
            let src = std::path::Path::new(path);
            if src.extension().is_some_and(|e| e == "kpx") {
                return Ok(src.to_path_buf());
            }
            let out = std::path::PathBuf::from(format!("{path}.kpx"));
            let fresh = match (std::fs::metadata(&out), std::fs::metadata(src)) {
                (Ok(o), Ok(s)) => match (o.modified(), s.modified()) {
                    (Ok(om), Ok(sm)) => om >= sm,
                    _ => false,
                },
                _ => false,
            };
            if !fresh {
                let (g, _) =
                    io::read_edge_list(src).map_err(|e| format!("loading {path:?}: {e}"))?;
                kplex_graph::write_kpx(&g, &out)
                    .map_err(|e| format!("converting {path:?} to .kpx: {e}"))?;
            }
            Ok(out)
        }
    }
}

/// Loads `source` as the requested backend and runs [`prepare`] on it.
/// `prepare` keeps the reduced working set resident in the backend the
/// input's [`kplex_graph::StoreKind::resident`] rule selects, so an `mmap`
/// job never materialises the full graph uncompressed in RAM.
fn build_prepared(
    source: &GraphSource,
    kind: kplex_graph::StoreKind,
    params: Params,
) -> Result<kplex_core::Prepared, String> {
    use kplex_graph::{CompressedStore, StoreBackend, StoreKind};
    match kind {
        StoreKind::Csr => Ok(prepare(&load_graph(source)?, params)),
        StoreKind::Compressed => {
            let g = load_graph(source)?;
            Ok(prepare(&CompressedStore::from_graph(&g), params))
        }
        StoreKind::Mmap => {
            let path = kpx_path_for(source)?;
            let backend = StoreBackend::open_mmap(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            Ok(prepare(&backend, params))
        }
    }
}

/// Runs one popped job end to end. The journal's `START` record is written
/// here; the terminal `END` record is written by the job's terminal hook
/// (inside the transition itself, so it is on disk before any client can
/// observe the job terminal). Both are suppressed during shutdown (see
/// [`SharedState::journal_record`]) so interrupted jobs replay on restart
/// instead of being recorded as cancelled.
fn execute(state: &Arc<SharedState>, job: &Arc<Job>) {
    if !job.mark_running() {
        return; // cancelled while queued; the terminal hook journaled it
    }
    state.journal_record(|j| j.record_start(job.id));
    run_job(state, job);
}

fn run_job(state: &Arc<SharedState>, job: &Arc<Job>) {
    let spec = job.spec.clone();
    // The wall-clock deadline covers the whole running phase, including a
    // cold graph load/prepare (which may also wait on the cache's
    // single-flight lock) — not just the enumeration.
    let deadline = spec.timeout.map(|t| Instant::now() + t);
    let Some(cfg) = spec.config() else {
        job.fail(format!("unknown algo {:?}", spec.algo));
        return;
    };
    // Load + (q−k)-core reduce through the LRU, keyed by graph content and
    // the shrink threshold — a warm resubmit skips this phase entirely.
    // The build runs outside the cache's map lock (per-entry single-flight):
    // a slow cold load here blocks only jobs for the *same* key, while warm
    // jobs and `STATS` proceed.
    let shrink = spec.params.q - spec.params.k;
    // The storage backend is part of the cache identity: the same graph
    // held as CSR and as compressed rows are different resident objects.
    let key = format!("{}!{}", spec.source.cache_key(), spec.store.label());
    let hook = state.cold_load_hook.clone();
    let prep = state.cache.get_or_build(&key, shrink, || {
        if let Some(hook) = &hook {
            hook.0(&key);
        }
        build_prepared(&spec.source, spec.store, spec.params)
    });
    let prep = match prep {
        Ok((prep, fetched)) => {
            job.set_cache_hit(fetched.is_warm());
            prep
        }
        Err(e) => {
            job.fail(e);
            return;
        }
    };

    let stop = job.cancel.clone();
    // A deadline that expired during load/prepare pre-raises the flag: the
    // engine then skips construction and the job finishes `failed`.
    if deadline.is_some_and(|dl| Instant::now() > dl) {
        job.note_stop_cause(StopCause::Deadline);
        stop.store(true, Ordering::Release);
    }
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u32>>();
    // The drainer pumps the channel into the job buffer and enforces the
    // result cap and the wall-clock deadline by raising the stop flag.
    let drainer = {
        let job = job.clone();
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            if let Some(dl) = deadline {
                if Instant::now() > dl && !stop.load(Ordering::Acquire) {
                    job.note_stop_cause(StopCause::Deadline);
                    stop.store(true, Ordering::Release);
                }
            }
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(plex) => {
                    if job.append_result(plex) >= job.spec.limit && !stop.load(Ordering::Acquire) {
                        job.note_stop_cause(StopCause::Cap);
                        stop.store(true, Ordering::Release);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        })
    };

    let mut opts = EngineOptions::with_threads(spec.threads);
    opts.timeout = spec.tau;
    opts.stop_flag = Some(stop.clone());
    opts.metrics = Some(state.sched_metrics.clone());
    // `mpsc::Sender` is `Sync` (channels are lock-free internally), so the
    // per-worker sink factory clones it directly from the shared reference.
    let (sinks, stats) = run_parallel_prepared(&prep, spec.params, &cfg, &opts, || JobSink {
        inner: ChannelSink::new(tx.clone(), stop.clone()),
        throttle: spec.throttle,
    });
    // Every sender must die — the factory's and each worker sink's clone —
    // before the channel disconnects and the drainer exits.
    drop(sinks);
    drop(tx);
    let _ = drainer.join();
    job.finish(stats);
}
