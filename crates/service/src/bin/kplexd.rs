//! `kplexd` — the k-plex enumeration server.
//!
//! ```text
//! kplexd [--addr HOST:PORT] [--runners N] [--queue-cap N] [--cache-cap N]
//!        [--threads N] [--store csr|compressed|mmap] [--journal PATH]
//!        [--delivery-batch N] [--principals FILE]
//! kplexd smoke    # self-test: submit jazz, stream, cancel, verify
//! kplexd help
//! ```

use kplex_service::{Client, Server, ServerConfig, SubmitArgs};
use std::process::ExitCode;

const USAGE: &str = "\
kplexd — k-plex enumeration server (see crates/service/PROTOCOL.md)

USAGE:
  kplexd [OPTIONS]        run the server (Ctrl-C to stop)
  kplexd smoke            end-to-end self-test on an ephemeral port
  kplexd help

OPTIONS:
  --addr HOST:PORT   listen address           (default 127.0.0.1:7711)
  --runners N        concurrent jobs          (default 2)
  --queue-cap N      bounded job queue size   (default 64)
  --cache-cap N      prepared-graph LRU size  (default 4)
  --threads N        default per-job engine threads
  --store KIND       default graph storage backend when SUBMIT omits store=:
                     csr (in-RAM, fastest), compressed (varint rows, ~half
                     the bytes) or mmap (out-of-core .kpx file; graphs
                     larger than RAM)        (default csr)
  --retain N         terminal jobs kept for STATUS/STREAM replay (default 64)
  --journal PATH     append-only job journal: accepted jobs are fsync'd
                     before the SUBMIT is acknowledged, and a restart with
                     the same path replays queued + interrupted jobs and
                     remembers delivered-stream offsets so a restart does
                     not re-deliver consumed results (see PROTOCOL.md
                     \"Job persistence\")
  --delivery-batch N journal the delivery offset every N streamed results
                     (default 4096; smaller = tighter exactly-once window
                     across crashes, more fsyncs — never one per result)
  --principals FILE  enable multi-tenancy: a passwd-style file of
                     token:name:weight:max-queued:max-running:flags lines
                     (see PROTOCOL.md \"Authentication & quotas\"). Clients
                     must AUTH, per-tenant quotas are enforced, and the
                     runner pool drains tenants by weighted fair share.
                     Omitted = anonymous single-queue behavior, unchanged.
";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} requires a value", args[i]))
        };
        match args[i].as_str() {
            "--addr" => cfg.addr = value(i)?.clone(),
            "--runners" => {
                cfg.runners = value(i)?
                    .parse()
                    .map_err(|_| "invalid --runners".to_string())?
            }
            "--queue-cap" => {
                cfg.queue_cap = value(i)?
                    .parse()
                    .map_err(|_| "invalid --queue-cap".to_string())?
            }
            "--cache-cap" => {
                cfg.cache_cap = value(i)?
                    .parse()
                    .map_err(|_| "invalid --cache-cap".to_string())?
            }
            "--threads" => {
                cfg.default_threads = value(i)?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?
            }
            "--store" => {
                let v = value(i)?;
                cfg.default_store = kplex_graph::StoreKind::parse(v)
                    .ok_or_else(|| format!("invalid --store {v:?} (csr, compressed or mmap)"))?
            }
            "--retain" => {
                cfg.retain_terminal = value(i)?
                    .parse()
                    .map_err(|_| "invalid --retain".to_string())?
            }
            "--journal" => cfg.journal = Some(std::path::PathBuf::from(value(i)?)),
            "--principals" => {
                let path = std::path::PathBuf::from(value(i)?);
                cfg.principals = Some(
                    kplex_service::PrincipalStore::load(&path)
                        .map_err(|e| format!("--principals: {e}"))?,
                );
            }
            "--delivery-batch" => {
                cfg.delivery_batch = value(i)?
                    .parse()
                    .map_err(|_| "invalid --delivery-batch".to_string())?
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("smoke") => match smoke() {
            Ok(()) => {
                println!("kplexd smoke: PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("kplexd smoke: FAIL: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            let cfg = match parse_config(&args) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            match Server::bind(&cfg) {
                Ok(server) => {
                    let addr = server.local_addr().expect("bound listener has an address");
                    eprintln!(
                        "kplexd listening on {addr} ({} runners, queue {}, cache {}, journal {})",
                        cfg.runners,
                        cfg.queue_cap,
                        cfg.cache_cap,
                        cfg.journal
                            .as_ref()
                            .map_or("off".to_string(), |p| p.display().to_string())
                    );
                    match server.run() {
                        Ok(()) => ExitCode::SUCCESS,
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: cannot bind {}: {e}", cfg.addr);
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// End-to-end self-test against a real server on an ephemeral port:
/// submit jazz, stream and cross-check the count, then cancel a throttled
/// job mid-stream. This is what CI's bench-smoke job runs.
fn smoke() -> Result<(), String> {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        runners: 2,
        ..ServerConfig::default()
    };
    let handle = Server::bind(&cfg)
        .and_then(|s| s.spawn())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr();
    let result = smoke_scenarios(addr);
    handle.shutdown();
    result
}

fn smoke_scenarios(addr: std::net::SocketAddr) -> Result<(), String> {
    let err = |e: kplex_service::ClientError| e.to_string();
    // Ground truth, computed in-process.
    let params = kplex_core::Params::new(2, 9).map_err(|e| e.to_string())?;
    let jazz = kplex_datasets::by_name("jazz")
        .ok_or("jazz missing")?
        .load();
    let (expected, _) = kplex_core::enumerate_count(&jazz, params, &kplex_core::AlgoConfig::ours());

    // 1. Submit and stream a full job; the streamed count must match.
    let mut c = Client::connect(addr).map_err(err)?;
    c.ping().map_err(err)?;
    let mut args = SubmitArgs::dataset("jazz", 2, 9);
    args.threads = Some(2);
    let id = c.submit(&args).map_err(err)?;
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") {
        return Err(format!("job {id} ended {:?}, want done", end.get("state")));
    }
    if streamed != expected {
        return Err(format!("streamed {streamed} plexes, expected {expected}"));
    }
    println!("kplexd smoke: streamed {streamed} plexes of jazz (2, 9)");

    // 2. Cancel a throttled job mid-stream from a second connection.
    let mut args = SubmitArgs::dataset("jazz", 2, 7);
    args.threads = Some(2);
    args.throttle_us = Some(3000);
    let id = c.submit(&args).map_err(err)?;
    let mut canceller = Client::connect(addr).map_err(err)?;
    let mut seen = 0u64;
    let mut cancel_err = None;
    let end = c
        .stream(id, |_, _| {
            seen += 1;
            if seen == 2 {
                if let Err(e) = canceller.cancel(id) {
                    cancel_err = Some(e.to_string());
                }
            }
        })
        .map_err(err)?;
    if let Some(e) = cancel_err {
        return Err(format!("cancel failed: {e}"));
    }
    if end.get("state").map(String::as_str) != Some("cancelled") {
        return Err(format!(
            "job {id} ended {:?}, want cancelled",
            end.get("state")
        ));
    }
    let status = canceller.status(id).map_err(err)?;
    println!(
        "kplexd smoke: cancelled job after {} results (status: state={} results={})",
        seen,
        status.get("state").cloned().unwrap_or_default(),
        status.get("results").cloned().unwrap_or_default(),
    );

    // 3. Warm-cache resubmit of scenario 1 must report a cache hit.
    let id = c.submit(&SubmitArgs::dataset("jazz", 2, 9)).map_err(err)?;
    let end = c.stream(id, |_, _| ()).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") {
        return Err(format!("resubmit ended {:?}", end.get("state")));
    }
    let status = c.status(id).map_err(err)?;
    if status.get("cache").map(String::as_str) != Some("hit") {
        return Err(format!(
            "resubmit was not served from the cache: {status:?}"
        ));
    }
    println!("kplexd smoke: warm resubmit served from the prepared-graph cache");

    // 4. The same job through the out-of-core mmap backend: the dataset is
    // converted to a `.kpx` file once, served memory-mapped, and the
    // streamed count must not change. STATS then carries the per-backend
    // cache residency fields.
    let mut args = SubmitArgs::dataset("jazz", 2, 9);
    args.threads = Some(2);
    args.store = Some("mmap".into());
    let id = c.submit(&args).map_err(err)?;
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") {
        return Err(format!(
            "mmap job {id} ended {:?}, want done",
            end.get("state")
        ));
    }
    if streamed != expected {
        return Err(format!(
            "mmap backend streamed {streamed} plexes, expected {expected}"
        ));
    }
    let stats = c.stats().map_err(err)?;
    let store = stats.get("store").map(String::as_str).unwrap_or("-");
    if store == "-" {
        return Err(format!("STATS store= is empty after jobs ran: {stats:?}"));
    }
    let bytes: u64 = stats
        .get("graph-bytes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if bytes == 0 {
        return Err(format!(
            "STATS graph-bytes= must be positive with resident cache entries: {stats:?}"
        ));
    }
    println!(
        "kplexd smoke: mmap-backed job streamed {streamed} plexes \
         (store={store} graph-bytes={bytes})"
    );
    Ok(())
}
