//! `kplexr` — the k-plex shard router.
//!
//! ```text
//! kplexr [--addr HOST:PORT] --backend HOST:PORT [--backend HOST:PORT ...]
//!        [--probe-ms N] [--probe-timeout-ms N] [--probe-fails N] [--probe-rises N]
//!        [--replicas N] [--principals FILE]
//! kplexr smoke    # self-test: routing, failover, journal replay, mid-stream
//!                 # resume, multi-tenant quotas and scoping
//! kplexr help
//! ```

use kplex_service::{Client, ProbeConfig, Router, RouterConfig, Server, ServerConfig, SubmitArgs};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
kplexr — shard router for kplexd backends (see crates/service/PROTOCOL.md)

USAGE:
  kplexr [OPTIONS]        run the router (Ctrl-C to stop)
  kplexr smoke            end-to-end self-test with in-process backends
  kplexr help

OPTIONS:
  --addr HOST:PORT      listen address                (default 127.0.0.1:7710)
  --backend HOST:PORT   a kplexd backend (repeatable; ADDNODE/DROPNODE at runtime)
  --probe-ms N          health-probe interval in ms; 0 disables (default 1000)
  --probe-timeout-ms N  per-probe connect+reply budget (default 500)
  --probe-fails N       consecutive failures before a backend is marked dead
                        (default 3)
  --probe-rises N       consecutive successes before a dead backend rejoins
                        (default 2)
  --replicas N          copies of each job placed across distinct backends
                        (rendezvous top-N per key); the extras serve STATUS/
                        STREAM reads and stand by for mid-stream promotion
                        when the primary dies (default 1 = off)
  --principals FILE     enable edge tenancy: the same passwd-style principal
                        file the backends run with. Clients AUTH to the
                        router, over-quota submits are rejected at the edge,
                        proxied jobs are tagged with their principal, and
                        LIST/STATUS/STREAM/CANCEL are tenant-scoped. The
                        file must contain an admin principal — the router
                        authenticates its backend connections with it.
";

fn parse_config(args: &[String]) -> Result<RouterConfig, String> {
    let mut cfg = RouterConfig::default();
    let mut probe = ProbeConfig::default();
    let mut probe_ms: u64 = probe.interval.as_millis() as u64;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} requires a value", args[i]))
        };
        let parse_u64 = |i: usize| -> Result<u64, String> {
            value(i)?
                .parse()
                .map_err(|_| format!("invalid value for {}", args[i]))
        };
        match args[i].as_str() {
            "--addr" => cfg.addr = value(i)?.clone(),
            "--backend" => cfg.backends.push(value(i)?.clone()),
            "--probe-ms" => probe_ms = parse_u64(i)?,
            "--probe-timeout-ms" => probe.timeout = Duration::from_millis(parse_u64(i)?.max(1)),
            "--probe-fails" => probe.fall = parse_u64(i)?.max(1) as u32,
            "--probe-rises" => probe.rise = parse_u64(i)?.max(1) as u32,
            "--replicas" => cfg.replicas = parse_u64(i)?.max(1) as usize,
            "--principals" => {
                let path = std::path::PathBuf::from(value(i)?);
                cfg.principals = Some(
                    kplex_service::PrincipalStore::load(&path)
                        .map_err(|e| format!("--principals: {e}"))?,
                );
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if probe_ms > 0 {
        probe.interval = Duration::from_millis(probe_ms);
        cfg.probe = Some(probe);
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("smoke") => match smoke() {
            Ok(()) => {
                println!("kplexr smoke: PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("kplexr smoke: FAIL: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            let cfg = match parse_config(&args) {
                Ok(cfg) if !cfg.backends.is_empty() => cfg,
                Ok(_) => {
                    eprintln!("error: at least one --backend is required\n\n{USAGE}");
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            match Router::bind(&cfg) {
                Ok(router) => {
                    let addr = router.local_addr().expect("bound listener has an address");
                    eprintln!(
                        "kplexr listening on {addr}, routing over {} backend(s): {} (probe {})",
                        cfg.backends.len(),
                        cfg.backends.join(", "),
                        cfg.probe.as_ref().map_or("off".to_string(), |p| format!(
                            "every {}ms",
                            p.interval.as_millis()
                        ))
                    );
                    match router.run() {
                        Ok(()) => ExitCode::SUCCESS,
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: cannot bind {}: {e}", cfg.addr);
                    ExitCode::FAILURE
                }
            }
        }
    }
}

fn ground_truth(dataset: &str, k: usize, q: usize) -> Result<u64, String> {
    let g = kplex_datasets::by_name(dataset)
        .ok_or_else(|| format!("{dataset} missing"))?
        .load();
    let params = kplex_core::Params::new(k, q).map_err(|e| e.to_string())?;
    Ok(kplex_core::enumerate_count(&g, params, &kplex_core::AlgoConfig::ours()).0)
}

fn start_backend(journal: &std::path::Path) -> Result<kplex_service::ServerHandle, String> {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(), // port 0: parallel runs cannot collide
        runners: 1,
        journal: Some(journal.to_path_buf()),
        ..ServerConfig::default()
    };
    Server::bind(&cfg)
        .and_then(|s| s.spawn())
        .map_err(|e| format!("bind backend: {e}"))
}

/// One in-process backend of the smoke fleet: its router-visible address,
/// its journal path (reused when the smoke restarts it), and its handle
/// (`None` once the failover scenario has killed it).
struct BackendSlot {
    addr: String,
    journal: std::path::PathBuf,
    handle: Option<kplex_service::ServerHandle>,
}

type BackendSlots = [BackendSlot; 2];

/// End-to-end self-test (what CI's bench-smoke job runs): two in-process
/// journal-backed backends behind a router on ephemeral ports. Verifies
/// ADDNODE, routed streaming with count cross-check, rendezvous-stable
/// warm resubmission (via STATS of the owning backend), queued- and
/// running-job failover when a backend dies, the self-healing half — a
/// restart of the killed backend with the same journal replaying its
/// interrupted jobs to completion — and, on a separate `--replicas 2`
/// fleet, exactly-once transparent resume of a stream whose primary
/// backend is killed mid-delivery ([`smoke_resume`]).
fn smoke() -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let journal_a = tmp.join(format!("kplexr-smoke-{}-a.journal", std::process::id()));
    let journal_b = tmp.join(format!("kplexr-smoke-{}-b.journal", std::process::id()));
    for p in [&journal_a, &journal_b] {
        let _ = std::fs::remove_file(p);
    }
    let backend_a = start_backend(&journal_a)?;
    let backend_b = start_backend(&journal_b)?;
    let addr_a = backend_a.addr().to_string();
    let addr_b = backend_b.addr().to_string();

    // Start with one registered backend and ADDNODE the second.
    let router = Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: vec![addr_a.clone()],
        probe: None, // failover is exercised reactively here; probes have their own tests
        replicas: 1,
        principals: None,
    })
    .and_then(|r| r.spawn())
    .map_err(|e| format!("bind router: {e}"))?;
    let mut backends = [
        BackendSlot {
            addr: addr_a,
            journal: journal_a.clone(),
            handle: Some(backend_a),
        },
        BackendSlot {
            addr: addr_b.clone(),
            journal: journal_b.clone(),
            handle: Some(backend_b),
        },
    ];
    let result = smoke_scenarios(router.addr(), &addr_b, &mut backends)
        .and_then(|()| smoke_restart(router.addr(), &mut backends))
        .and_then(|()| smoke_resume())
        .and_then(|()| smoke_tenants());
    router.shutdown();
    for slot in backends.iter_mut() {
        if let Some(h) = slot.handle.take() {
            h.shutdown();
        }
    }
    for p in [&journal_a, &journal_b] {
        let _ = std::fs::remove_file(p);
    }
    result
}

/// Scenario 5: the backend killed by the failover scenario restarts with
/// the **same journal** (on a fresh port — the old one may linger in
/// TIME_WAIT). Its interrupted jobs — one orphaned mid-run, one queued —
/// must replay into the queue under their original ids and complete with
/// the correct counts, and the healed node rejoins the fleet via ADDNODE.
fn smoke_restart(router: std::net::SocketAddr, backends: &mut BackendSlots) -> Result<(), String> {
    let err = |e: kplex_service::ClientError| e.to_string();
    let victim = backends
        .iter_mut()
        .find(|s| s.handle.is_none())
        .ok_or("no backend was killed by the failover scenario")?;
    let restarted = start_backend(&victim.journal)?;
    let new_addr = restarted.addr().to_string();

    let mut direct = Client::connect(restarted.addr()).map_err(err)?;
    let stats = direct.stats().map_err(err)?;
    if stats.get("recovered").map(String::as_str) != Some("2") {
        return Err(format!(
            "restart must replay the orphaned-running and the queued job, STATS: {stats:?}"
        ));
    }
    // Both replayed jobs are jazz(2,7); the lower id is the throttled one
    // (submitted first). Cancel it — an operator pruning stale replays —
    // and check the other completes with the full result set.
    let jobs = direct.list().map_err(err)?;
    let mut ids: Vec<u64> = jobs
        .iter()
        .map(|j| j["id"].parse().map_err(|_| "non-numeric id in LIST"))
        .collect::<Result<_, _>>()?;
    ids.sort_unstable();
    let [throttled, plain] = ids[..] else {
        return Err(format!("expected exactly 2 replayed jobs, got {jobs:?}"));
    };
    direct.cancel(throttled).map_err(err)?;
    let status = direct.status(plain).map_err(err)?;
    if status.get("recovered").map(String::as_str) != Some("true") {
        return Err(format!(
            "replayed job must carry recovered=true: {status:?}"
        ));
    }
    let expected = ground_truth("jazz", 2, 7)?;
    let mut streamed = 0u64;
    let end = direct.stream(plain, |_, _| streamed += 1).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") || streamed != expected {
        return Err(format!(
            "replayed job: state={:?} streamed={streamed}, want done/{expected}",
            end.get("state")
        ));
    }
    // The healed backend rejoins the routing set.
    let mut c = Client::connect(router).map_err(err)?;
    c.add_node(&new_addr).map_err(err)?;
    victim.handle = Some(restarted);
    println!(
        "kplexr smoke: restarted backend replayed 2 journaled jobs \
         ({streamed} plexes re-streamed) and rejoined as {new_addr}"
    );
    Ok(())
}

fn smoke_scenarios(
    router: std::net::SocketAddr,
    addr_b: &str,
    backends: &mut BackendSlots,
) -> Result<(), String> {
    let err = |e: kplex_service::ClientError| e.to_string();
    let mut c = Client::connect(router).map_err(err)?;
    c.ping().map_err(err)?;

    // 1. Grow the registry at runtime.
    c.add_node(addr_b).map_err(err)?;
    let nodes = c.nodes().map_err(err)?;
    if nodes.len() != 2 {
        return Err(format!("expected 2 nodes after ADDNODE, got {nodes:?}"));
    }
    println!("kplexr smoke: registry has {} backends", nodes.len());

    // 2. Routed streaming: counts must match the in-process ground truth.
    let expected = ground_truth("jazz", 2, 9)?;
    let mut args = SubmitArgs::dataset("jazz", 2, 9);
    args.threads = Some(2);
    let fields = c.submit_fields(&args).map_err(err)?;
    let id: u64 = fields
        .get("id")
        .and_then(|s| s.parse().ok())
        .ok_or("submit reply without id")?;
    let owner = fields.get("backend").cloned().ok_or("no backend= field")?;
    let mut streamed = 0u64;
    let end = c.stream(id, |_, _| streamed += 1).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") || streamed != expected {
        return Err(format!(
            "routed job: state={:?} streamed={streamed}, want done/{expected}",
            end.get("state")
        ));
    }
    println!("kplexr smoke: routed {streamed} plexes of jazz (2, 9) via {owner}");

    // 3. Rendezvous stability: the resubmit must land on the same backend
    //    and be served from its warm prepared-graph cache, observable both
    //    per-job (cache=hit) and in the owning backend's STATS counters.
    let fields = c.submit_fields(&args).map_err(err)?;
    let id2: u64 = fields.get("id").and_then(|s| s.parse().ok()).unwrap_or(0);
    let owner2 = fields.get("backend").cloned().unwrap_or_default();
    if owner2 != owner {
        return Err(format!(
            "resubmit routed to {owner2}, expected the warm backend {owner}"
        ));
    }
    let end = c.stream(id2, |_, _| ()).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") {
        return Err(format!("resubmit ended {:?}", end.get("state")));
    }
    let status = c.status(id2).map_err(err)?;
    if status.get("cache").map(String::as_str) != Some("hit") {
        return Err(format!("resubmit missed the warm cache: {status:?}"));
    }
    let stats = c.stats().map_err(err)?;
    let hits = (0..2)
        .find(|i| stats.get(&format!("node{i}-addr")) == Some(&owner))
        .and_then(|i| stats.get(&format!("node{i}-cache-hits")))
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("no cache-hits for {owner} in STATS: {stats:?}"))?;
    if hits == 0 {
        return Err("warm backend shows 0 cache hits after resubmit".to_string());
    }
    println!("kplexr smoke: resubmit hit {owner}'s warm cache ({hits} hits via STATS)");

    // 4. Queued-job failover: occupy one backend's single runner with a
    //    throttled job, queue a second job behind it (same routing key, so
    //    same backend), kill that backend, and check the queued job is
    //    transparently resubmitted to the survivor and completes.
    let expected27 = ground_truth("jazz", 2, 7)?;
    let mut slow = SubmitArgs::dataset("jazz", 2, 7);
    slow.throttle_us = Some(3000);
    let fields = c.submit_fields(&slow).map_err(err)?;
    let slow_id: u64 = fields.get("id").and_then(|s| s.parse().ok()).unwrap_or(0);
    let target = fields.get("backend").cloned().ok_or("no backend= field")?;
    // Wait until it occupies the runner (leaves the backend's queue).
    loop {
        let st = c.status(slow_id).map_err(err)?;
        match st.get("state").map(String::as_str) {
            Some("queued") => std::thread::sleep(std::time::Duration::from_millis(5)),
            Some("running") => break,
            other => return Err(format!("slow job in state {other:?} before kill")),
        }
    }
    let fields = c
        .submit_fields(&SubmitArgs::dataset("jazz", 2, 7))
        .map_err(err)?;
    let queued_id: u64 = fields.get("id").and_then(|s| s.parse().ok()).unwrap_or(0);
    if fields.get("backend") != Some(&target) {
        return Err("same routing key landed on a different backend".to_string());
    }
    // Kill the owning backend (the other one survives).
    let victim = backends
        .iter_mut()
        .find(|slot| slot.addr == target)
        .and_then(|slot| slot.handle.take())
        .ok_or("victim backend handle missing")?;
    victim.shutdown();
    // STATUS forces the router to notice the outage and fail over.
    let status = c.status(queued_id).map_err(err)?;
    let new_backend = status.get("backend").cloned().unwrap_or_default();
    if new_backend == target {
        return Err(format!("queued job still on the dead backend: {status:?}"));
    }
    // The job that was RUNNING on the dead backend is requeued to the
    // survivor too — resumable streams make re-running safe — instead of
    // being failed with backend_lost. Cancel it (it is throttled) so the
    // survivor's single runner is free for the queued job below.
    let status = c.status(slow_id).map_err(err)?;
    let slow_state = status.get("state").cloned().unwrap_or_default();
    if !matches!(slow_state.as_str(), "queued" | "running") {
        return Err(format!(
            "running job on dead backend: {status:?}, want requeued to the survivor"
        ));
    }
    if status.get("backend") == Some(&target) {
        return Err(format!(
            "requeued running job still on the corpse: {status:?}"
        ));
    }
    c.cancel(slow_id).map_err(err)?;
    let mut streamed = 0u64;
    let end = c.stream(queued_id, |_, _| streamed += 1).map_err(err)?;
    if end.get("state").map(String::as_str) != Some("done") || streamed != expected27 {
        return Err(format!(
            "failover job: state={:?} streamed={streamed}, want done/{expected27}",
            end.get("state")
        ));
    }
    println!(
        "kplexr smoke: queued + running jobs failed over {target} -> {new_backend}, \
         queued one streamed {streamed} plexes"
    );
    Ok(())
}

/// Scenario 6: exactly-once resumable streaming. A fresh two-backend fleet
/// behind a `--replicas 2` router; a single-threaded throttled job
/// (deterministic result order — the precondition for cross-backend
/// resume, see PROTOCOL.md) is streamed through the router and its primary
/// backend is **killed mid-stream** (sockets severed, no graceful
/// goodbye). The router must promote the replica and transparently resume
/// with `STREAM … FROM <first undelivered seq>`: the client sees every
/// result exactly once and a terminal `END state=done`, never
/// `ERR … lost mid-stream`.
fn smoke_resume() -> Result<(), String> {
    let err = |e: kplex_service::ClientError| e.to_string();
    let expected = ground_truth("jazz", 2, 8)?;
    let start = || {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            runners: 1,
            ..ServerConfig::default()
        };
        Server::bind(&cfg)
            .and_then(|s| s.spawn())
            .map_err(|e| format!("bind backend: {e}"))
    };
    let backend_a = start()?;
    let backend_b = start()?;
    let mut handles = std::collections::BTreeMap::new();
    handles.insert(backend_a.addr().to_string(), backend_a);
    handles.insert(backend_b.addr().to_string(), backend_b);
    let router = Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: handles.keys().cloned().collect(),
        probe: None,
        replicas: 2,
        principals: None,
    })
    .and_then(|r| r.spawn())
    .map_err(|e| format!("bind router: {e}"))?;

    let result = (|| {
        let mut c = Client::connect(router.addr()).map_err(err)?;
        let mut args = SubmitArgs::dataset("jazz", 2, 8);
        args.threads = Some(1); // deterministic result order
        args.throttle_us = Some(1000); // slow enough to kill mid-stream
        let fields = c.submit_fields(&args).map_err(err)?;
        if fields.get("replicas").map(String::as_str) != Some("1") {
            return Err(format!("submit placed no replica: {fields:?}"));
        }
        let id: u64 = fields
            .get("id")
            .and_then(|s| s.parse().ok())
            .ok_or("submit reply without id")?;
        let owner = fields.get("backend").cloned().ok_or("no backend= field")?;
        let mut victim = handles.remove(&owner);
        let mut seqs: Vec<u64> = Vec::new();
        let end = c
            .stream(id, |seq, _| {
                seqs.push(seq);
                if seqs.len() == 3 {
                    if let Some(h) = victim.take() {
                        h.kill(); // sever mid-stream, crash-style
                    }
                }
            })
            .map_err(err)?;
        if victim.is_some() {
            return Err(format!(
                "stream ended after {} results, before the kill could happen",
                seqs.len()
            ));
        }
        if end.get("state").map(String::as_str) != Some("done") {
            return Err(format!(
                "resumed stream ended {:?}, want done",
                end.get("state")
            ));
        }
        // Exactly once: every seq 0..expected, in order, no gap, no dupe.
        if seqs.len() as u64 != expected || seqs.iter().enumerate().any(|(i, &s)| s != i as u64) {
            return Err(format!(
                "resumed stream delivered {} results (expected {expected}), \
                 first disorder at {:?}",
                seqs.len(),
                seqs.iter()
                    .enumerate()
                    .find(|(i, &s)| s != *i as u64)
                    .map(|(i, &s)| (i, s)),
            ));
        }
        println!(
            "kplexr smoke: killed primary {owner} mid-stream; replica resumed \
             transparently, {expected} results delivered exactly once"
        );
        Ok(())
    })();
    router.shutdown();
    for (_, h) in handles {
        h.shutdown();
    }
    result
}

/// Scenario 7: multi-tenant routing. A fresh two-backend fleet where every
/// process shares one principal file (`alice` max-queued 2, `batch`, and
/// the `root` admin the router authenticates to backends with). Verifies
/// the auth gate and bad-token rejection, **edge quota rejection** (alice's
/// third concurrent submit bounces off the router before any backend sees
/// it), cross-tenant `STATUS`/`STREAM` denial (indistinguishable from "no
/// such job"), tenant-scoped vs. admin `LIST`, and per-tenant `STATS`
/// aggregation across backends (cluster `tenant*-bytes` summed from the
/// backends' journaled counters).
fn smoke_tenants() -> Result<(), String> {
    let err = |e: kplex_service::ClientError| e.to_string();
    let tmp = std::env::temp_dir();
    let pfile = tmp.join(format!("kplexr-smoke-{}-principals", std::process::id()));
    std::fs::write(
        &pfile,
        "tok-alice:alice:4:2:1:-\ntok-batch:batch:1:64:8:-\ntok-root:root:1:0:0:admin\n",
    )
    .map_err(|e| format!("write principals: {e}"))?;
    let store = kplex_service::PrincipalStore::load(&pfile).map_err(|e| e.to_string())?;
    let start = || {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            runners: 1,
            principals: Some(store.clone()),
            ..ServerConfig::default()
        };
        Server::bind(&cfg)
            .and_then(|s| s.spawn())
            .map_err(|e| format!("bind backend: {e}"))
    };
    let backend_a = start()?;
    let backend_b = start()?;
    let router = Router::bind(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        probe: None,
        replicas: 1,
        principals: Some(store.clone()),
    })
    .and_then(|r| r.spawn())
    .map_err(|e| format!("bind router: {e}"))?;

    let result = (|| {
        use kplex_service::ClientError;
        let mut alice = Client::connect(router.addr()).map_err(err)?;
        alice.ping().map_err(err)?; // liveness is exempt from the auth gate
        match alice.stats() {
            Err(ClientError::Remote(msg)) if msg.contains("authentication required") => {}
            other => return Err(format!("unauthenticated STATS must bounce, got {other:?}")),
        }
        match alice.auth("tok-nobody") {
            Err(ClientError::Remote(msg)) if msg == "unknown token" => {}
            other => return Err(format!("bad token must be rejected, got {other:?}")),
        }
        let fields = alice.auth("tok-alice").map_err(err)?;
        if fields.get("principal").map(String::as_str) != Some("alice") {
            return Err(format!("AUTH reply names the wrong principal: {fields:?}"));
        }

        // Edge quota: alice's max-queued is 2, so her third concurrent
        // submit is rejected by the router itself — no backend sees it.
        let mut slow = SubmitArgs::dataset("jazz", 2, 7);
        slow.threads = Some(1);
        slow.throttle_us = Some(3000);
        let id1 = alice.submit(&slow).map_err(err)?;
        let id2 = alice.submit(&slow).map_err(err)?;
        match alice.submit(&slow) {
            Err(ClientError::Remote(msg)) if msg.contains("quota exceeded") => {
                println!("kplexr smoke: edge rejected alice's over-quota submit ({msg})");
            }
            other => return Err(format!("over-quota submit must bounce, got {other:?}")),
        }

        // A second tenant cannot see — or even probe for — alice's jobs.
        let mut batch = Client::connect(router.addr()).map_err(err)?;
        batch.auth("tok-batch").map_err(err)?;
        match batch.status(id1) {
            Err(ClientError::Remote(msg)) if msg.starts_with("no such job") => {}
            other => return Err(format!("cross-tenant STATUS must be hidden, got {other:?}")),
        }
        match batch.stream_while(id1, |_, _| true) {
            Err(ClientError::Remote(msg)) if msg.starts_with("no such job") => {}
            other => return Err(format!("cross-tenant STREAM must be denied, got {other:?}")),
        }
        println!("kplexr smoke: cross-tenant STATUS/STREAM denied as no-such-job");

        // Alice drains her own backlog (CANCEL is owner-scoped too), then
        // batch's job runs to completion and accrues result bytes.
        alice.cancel(id1).map_err(err)?;
        alice.cancel(id2).map_err(err)?;
        let expected = ground_truth("jazz", 2, 9)?;
        let mut args = SubmitArgs::dataset("jazz", 2, 9);
        args.threads = Some(1);
        let bid = batch.submit(&args).map_err(err)?;
        let mut streamed = 0u64;
        let end = batch.stream(bid, |_, _| streamed += 1).map_err(err)?;
        if end.get("state").map(String::as_str) != Some("done") || streamed != expected {
            return Err(format!(
                "batch job: state={:?} streamed={streamed}, want done/{expected}",
                end.get("state")
            ));
        }

        // Tenant-scoped LIST: batch sees only its own job; the admin sees
        // every tenant's.
        let mine = batch.list().map_err(err)?;
        if mine.is_empty()
            || !mine
                .iter()
                .all(|j| j.get("principal").map(String::as_str) == Some("batch"))
        {
            return Err(format!("batch's LIST leaked foreign jobs: {mine:?}"));
        }
        let mut root = Client::connect(router.addr()).map_err(err)?;
        root.auth("tok-root").map_err(err)?;
        let all = root.list().map_err(err)?;
        if all.len() <= mine.len() {
            return Err(format!(
                "admin LIST must include alice's jobs too ({} vs {})",
                all.len(),
                mine.len()
            ));
        }

        // Per-tenant STATS aggregation: the router sums the backends'
        // journaled per-tenant byte counters into cluster tenant*-bytes.
        let stats = root.stats().map_err(err)?;
        if stats.get("tenants").map(String::as_str) != Some("3") {
            return Err(format!("STATS must report tenants=3: {stats:?}"));
        }
        let bytes = (0..3)
            .find(|i| stats.get(&format!("tenant{i}-name")).map(String::as_str) == Some("batch"))
            .and_then(|i| stats.get(&format!("tenant{i}-bytes")))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("no tenant entry for batch in STATS: {stats:?}"))?;
        if bytes == 0 {
            return Err(format!(
                "batch streamed {streamed} results but cluster bytes are 0: {stats:?}"
            ));
        }
        println!(
            "kplexr smoke: per-tenant STATS aggregated across backends \
             (batch bytes={bytes}, admin LIST {} jobs, tenant LIST {})",
            all.len(),
            mine.len()
        );
        Ok(())
    })();
    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
    let _ = std::fs::remove_file(&pfile);
    result
}
